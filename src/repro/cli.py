"""Command-line interface: run flows, sweeps and reports from a shell.

Subcommands::

    python -m repro flow  --circuit s38417 --scale 0.06 --tp 2
    python -m repro sweep --circuit p26909 --scale 0.05
    python -m repro sweep --circuit s38417 --jobs 4 --cache-dir .sweeps
    python -m repro lint  s38417 --scale 0.05 --tp-percents 0,2,5
    python -m repro lbist --circuit s38417 --scale 0.05 --patterns 4096
    python -m repro render --circuit s38417 --scale 0.05 --out gallery/

    python -m repro serve  --port 8737 --cache-dir .sweep-service
    python -m repro submit --circuit s38417 --scale 0.05 --wait
    python -m repro status j0123abcd4567
    python -m repro result j0123abcd4567
    python -m repro cancel j0123abcd4567

    python -m repro trace merge --out merged.json traces/
    python -m repro trace summarize merged.json

Every subcommand prints the corresponding paper quantities (Table 1/2/3
rows, coverage curves, or Figure 3 files).  Scales are fractions of the
published circuit sizes; 1.0 reproduces the paper's dimensions.

The second block talks to the sweep-serving daemon (``serve`` runs it;
the other four are thin :class:`repro.service.client.ServiceClient`
wrappers).  ``submit --wait`` and ``result`` print the same tables as
``sweep`` — the daemon's results are byte-identical to in-process ones.

Exit codes: 0 success, 2 usage error, 3 degraded sweep (failed cells;
also from ``result``/``submit --wait``), 4 lint findings (``lint``
subcommand, or a ``--lint`` flow gate).
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys

from repro import api, obs
from repro.api import CIRCUITS
from repro.chaos import FaultPlan
from repro.core import (
    PAPER_TP_PERCENTS,
    format_failures,
    format_stage_seconds,
    format_table1,
    format_table2,
    format_table3,
    render_svg,
)
from repro.lbist import LbistConfig, coverage_at, run_lbist
from repro.library import cmos130
from repro.lint import LintError
from repro.scan import insert_scan
from repro.service.client import ServiceError
from repro.tpi import TpiConfig, insert_test_points

#: Exit code for lint findings — matches ``python -m repro.lint.self``.
EXIT_LINT = 4


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--circuit", default="s38417",
                        metavar="NAME",
                        help="registered benchmark circuit "
                             f"({', '.join(sorted(CIRCUITS))})")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the published circuit size")


def _validate_circuit(parser: argparse.ArgumentParser, args) -> None:
    """Reject an unknown circuit with a did-you-mean, exit code 2.

    Centralised (instead of argparse ``choices=``) so the message can
    suggest the closest registered name, mirroring
    :meth:`FlowConfig.from_dict`'s behaviour for unknown keys, and so
    the failure is a clean usage error rather than a ``KeyError``
    traceback from deep inside the API.
    """
    name = getattr(args, "circuit", None)
    if name is None or name in CIRCUITS:
        return
    choices = sorted(CIRCUITS)
    close = difflib.get_close_matches(name, choices, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    parser.error(f"unknown circuit {name!r}{hint}; choose from "
                 + ", ".join(choices))


def _tp_percents(text: str) -> tuple:
    """argparse type: '0,1,2.5' -> (0.0, 1.0, 2.5).

    Negative and duplicate levels are rejected up front: a negative
    percentage would ask TPI for a negative test-point count, and a
    duplicate level would silently run (and cache) the same layout
    twice.
    """
    try:
        values = tuple(float(p) for p in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        )
    negative = [v for v in values if v < 0]
    if negative:
        raise argparse.ArgumentTypeError(
            "TP percentages must be non-negative, got "
            + ", ".join(f"{v:g}" for v in negative)
        )
    seen = set()
    for value in values:
        if value in seen:
            raise argparse.ArgumentTypeError(
                f"duplicate TP percentage: {value:g}"
            )
        seen.add(value)
    return values


def _flow_overrides(args) -> dict:
    """FlowConfig overrides shared by the flow/sweep subcommands."""
    overrides = {}
    if getattr(args, "no_incremental", False):
        overrides["incremental_eco"] = False
    if getattr(args, "lint", False):
        overrides["lint"] = True
    if getattr(args, "placer", None):
        overrides["placer"] = args.placer
    return overrides


def _placer_name(text: str) -> str:
    """argparse type for --placer: registry-validated engine name."""
    from repro.layout.placer import require_placer

    try:
        require_placer(text)
    except ValueError as err:
        raise argparse.ArgumentTypeError(str(err))
    return text


def _print_tables(result) -> None:
    """Print one circuit's Tables 1-3 and stage runtimes.

    Shared by the in-process ``sweep`` subcommand and the service-side
    ``result``/``submit --wait`` ones, so a sweep's rendering is the
    same no matter which path computed it.
    """
    print("Table 1: Impact of TPI on test data")
    print(format_table1(result.table1_rows()))
    print("\nTable 2: Impact of TPI on silicon area")
    print(format_table2(result.table2_rows()))
    print("\nTable 3: Impact of TPI on timing")
    print(format_table3(result.table3_rows()))
    print("\nStage runtimes (seconds)")
    print(format_stage_seconds(result))


def _report_lint_abort(err: LintError) -> int:
    """Print a lint-gate failure's full report; exit code 4."""
    print(err.report.format_text())
    print(f"\naborted: {err}")
    return EXIT_LINT


def cmd_flow(args) -> int:
    """One full Figure 2 flow at a single TP percentage."""
    options = _flow_overrides(args)
    try:
        if args.trace:
            with obs.tracing(label=f"{args.circuit}@{args.tp:g}%"):
                result = api.run(args.circuit, scale=args.scale,
                                 tp_percent=args.tp, **options)
        else:
            result = api.run(args.circuit, scale=args.scale,
                             tp_percent=args.tp, **options)
    except LintError as err:
        return _report_lint_abort(err)
    m = result.test_metrics()
    print(f"circuit {args.circuit} scale {args.scale} "
          f"TP {args.tp}% ({m.n_test_points} TSFFs)")
    print(f"  patterns {m.n_patterns}, FC {100 * m.fault_coverage:.2f}%, "
          f"FE {100 * m.fault_efficiency:.2f}%, TDV {m.tdv_bits} bits, "
          f"TAT {m.tat_cycles} cycles")
    a = result.area_metrics()
    print(f"  core {a['core_area_um2']:.0f} um2, "
          f"chip {a['chip_area_um2']:.0f} um2, "
          f"wires {a['wirelength_um']:.0f} um, "
          f"filler {100 * a['filler_fraction']:.1f}%")
    for domain in sorted(result.sta.paths):
        p = result.sta.critical(domain)
        if p:
            print(f"  {domain}: T_cp {p.total_ps:.0f} ps "
                  f"(F_max {p.fmax_mhz:.1f} MHz), TPs on path "
                  f"{p.n_test_points}")
    if args.trace and result.trace is not None:
        obs.write_chrome_trace(args.trace, [result.trace])
        print(f"\nwrote trace to {args.trace}")
        print(obs.format_trace_summary(result.trace))
    return 0


def cmd_sweep(args) -> int:
    """The paper's six-layout sweep; prints Tables 1-3.

    The serial path (``--jobs 1``, no cache) is the reference
    semantics; ``--jobs N`` and ``--cache-dir`` route the sweep
    through the fault-tolerant executor, which is bit-identical to it.
    A degraded sweep (some cells permanently failed) still prints the
    tables — with holes — plus a failure report, and exits 3.
    """
    sweep_kwargs = dict(
        scale=args.scale,
        tp_percents=args.tp_percents,
        **_flow_overrides(args),
    )
    cache_dir = None if args.no_cache else args.cache_dir
    chaos_plan = FaultPlan.load(args.chaos) if args.chaos else None
    resilient = (args.retries != 2 or args.task_timeout is not None
                 or args.resume or args.fail_fast
                 or chaos_plan is not None)
    want_trace = bool(args.trace or args.trace_dir)
    traces = []
    report = None
    if args.jobs > 1 or cache_dir or resilient:
        sweep_kwargs.update(jobs=args.jobs, cache_dir=cache_dir,
                            use_cache=not args.no_cache,
                            cache_max_bytes=args.cache_max_bytes,
                            trace=want_trace,
                            retries=args.retries,
                            task_timeout_s=args.task_timeout,
                            resume=args.resume,
                            fail_fast=args.fail_fast,
                            chaos=chaos_plan)
        print(f"[executor] jobs={args.jobs} "
              f"cache={cache_dir or 'off'} retries={args.retries}"
              + (f" timeout={args.task_timeout:g}s"
                 if args.task_timeout else "")
              + (" resume" if args.resume else "")
              + (" fail-fast" if args.fail_fast else "")
              + (f" chaos={args.chaos}" if args.chaos else ""))
        if want_trace:
            with obs.tracing(label=f"sweep:{args.circuit}") as tracer:
                report = api.sweep_report(args.circuit, **sweep_kwargs)
            result = report.results[args.circuit]
            # Worker flow traces plus the parent's scheduling trace
            # (queue waits, cache counters) merge into one timeline.
            traces = [run.trace for run in result.runs.values()
                      if run.trace is not None]
            traces.append(tracer.trace())
        else:
            report = api.sweep_report(args.circuit, **sweep_kwargs)
            result = report.results[args.circuit]
        cached = sorted(
            pct for pct, run in result.runs.items() if run.from_cache
        )
        if cached:
            print("[executor] served from cache: "
                  + ", ".join(f"{pct:g}%" for pct in cached))
        if report.retries or report.timeouts or report.worker_crashes:
            print(f"[executor] retries={report.retries} "
                  f"timeouts={report.timeouts} "
                  f"worker-crashes={report.worker_crashes}")
        if report.journal_path:
            print(f"[executor] journal: {report.journal_path}")
    elif want_trace:
        # Serial path: one tracer spans the whole sweep, so its trace
        # already holds every level's stage spans.
        try:
            with obs.tracing(label=f"sweep:{args.circuit}") as tracer:
                result = api.sweep(args.circuit, **sweep_kwargs)
        except LintError as err:
            return _report_lint_abort(err)
        traces = [tracer.trace()]
    else:
        try:
            result = api.sweep(args.circuit, **sweep_kwargs)
        except LintError as err:
            return _report_lint_abort(err)
    _print_tables(result)
    if args.trace:
        obs.write_chrome_trace(args.trace, traces)
        print(f"\nwrote trace to {args.trace}")
    if args.trace_dir and traces:
        os.makedirs(args.trace_dir, exist_ok=True)
        for i, trace in enumerate(traces):
            label = "".join(c if c.isalnum() else "_"
                            for c in (trace.label or "trace"))
            path = os.path.join(args.trace_dir,
                                f"{i:03d}_{label}.trace.json")
            obs.write_trace_file(path, [trace])
        print(f"\nwrote {len(traces)} raw trace file(s) to "
              f"{args.trace_dir}")
        print(f"  merge: python -m repro trace merge "
              f"--out merged.json {args.trace_dir}")
    if report is not None and report.failures:
        print(f"\nFAILED cells ({len(report.failures)}; tables above "
              "have holes at these levels)")
        print(format_failures(report.failures))
        return 3
    return 0


def cmd_lint(args) -> int:
    """Static netlist/DFT audit of a benchmark across TP levels.

    Builds the circuit at each requested TP percentage, runs the
    flow's stage-0 DFT prep, then the full netlist rule pack.  Errors
    print with their rule IDs and exit 4; warnings print (with
    ``--verbose``) but do not fail the audit.
    """
    levels = args.tp_percents or PAPER_TP_PERCENTS
    by_level = {}
    failed = False
    for tp in levels:
        report = api.lint_netlist(args.circuit, scale=args.scale,
                                  tp_percent=tp)
        by_level[f"{tp:g}"] = report.to_json()
        counts = report.counts()
        status = "ok" if report.ok else "FAIL"
        print(f"tp {tp:g}%: {counts['error']} error(s), "
              f"{counts['warning']} warning(s) [{status}]")
        shown = (report.diagnostics if args.verbose
                 else report.error_diagnostics)
        for diag in shown:
            print(f"  {diag.format()}")
        failed = failed or not report.ok
    if args.json:
        payload = {
            "version": 1,
            "circuit": args.circuit,
            "scale": args.scale,
            "levels": by_level,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return EXIT_LINT if failed else 0


def cmd_selflint(args) -> int:
    """Static analysis over the ``repro`` sources themselves.

    Runs the determinism (SELF), concurrency (CONC) and resource
    (RES) rule packs — the same gate CI applies — against the
    committed baseline.  Exit 0 when clean, 4 on new findings.
    """
    from repro.lint.self import main as selflint_main

    forwarded = []
    if args.src:
        forwarded.extend(["--src", args.src])
    if args.baseline:
        forwarded.extend(["--baseline", args.baseline])
    if args.json:
        forwarded.extend(["--json", args.json])
    if args.packs:
        forwarded.extend(["--packs", args.packs])
    if args.update_baseline:
        forwarded.append("--update-baseline")
    return selflint_main(forwarded)


def cmd_lbist(args) -> int:
    """Pseudo-random LBIST coverage with/without test points."""
    results = {}
    for tp in (0.0, args.tp):
        circuit = api.load_circuit(args.circuit, scale=args.scale)
        if tp:
            insert_test_points(circuit, cmos130(), TpiConfig(
                n_test_points=round(tp / 100 * circuit.num_flip_flops)
            ))
        insert_scan(circuit, cmos130(), max_chain_length=100)
        results[tp] = run_lbist(circuit, LbistConfig(
            n_patterns=args.patterns,
        ))
    base, boosted = results[0.0], results[args.tp]
    print(f"{'patterns':>9}  {'FC no TPs':>10}  {'FC with TPs':>12}")
    n = 64
    while n <= args.patterns:
        print(f"{n:>9}  {100 * coverage_at(base, n):>9.2f}%"
              f"  {100 * coverage_at(boosted, n):>11.2f}%")
        n *= 4
    return 0


def cmd_render(args) -> int:
    """Write the Figure 3 SVG views of one layout."""
    result = api.run(args.circuit, scale=args.scale,
                     tp_percent=args.tp, run_atpg_phase=False)
    circuit = result.circuit
    os.makedirs(args.out, exist_ok=True)
    views = {
        "floorplan": (None, None),
        "placement": (result.placement, None),
        "routed": (result.placement, result.routed),
    }
    for stage, (placement, routed) in views.items():
        svg = render_svg(circuit, result.plan, placement, routed, stage)
        path = os.path.join(args.out, f"{args.circuit}_{stage}.svg")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"wrote {path}")
    return 0


def _service_progress_line(progress: dict) -> str:
    """One-line cell progress, e.g. ``cells 3/6 (1 running, 0 failed)``."""
    return (f"cells {progress['done']}/{progress['total']} "
            f"({progress['running']} running, "
            f"{progress['failed']} failed)")


def _print_service_report(report) -> int:
    """Print a daemon report's tables (all circuits) and failures.

    Returns the subcommand's exit code: 3 for a degraded sweep,
    matching the in-process ``sweep`` contract, else 0.
    """
    for name in sorted(report.results):
        result = report.results[name]
        if len(report.results) > 1:
            print(f"== {name} ==")
        _print_tables(result)
    if report.cache_hits or report.cache_misses:
        print(f"\n[service] cache hits={report.cache_hits} "
              f"misses={report.cache_misses} "
              f"evictions={report.cache_evictions}")
    if report.failures:
        print(f"\nFAILED cells ({len(report.failures)}; tables above "
              "have holes at these levels)")
        print(format_failures(report.failures))
        return 3
    return 0


def cmd_serve(args) -> int:
    """Run the sweep-serving daemon in the foreground."""
    from repro.service import ServiceConfig, run_daemon

    run_daemon(ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        job_workers=args.job_workers,
        cache_max_bytes=args.cache_max_bytes,
        use_cache=not args.no_cache,
        max_pending=args.max_pending,
        drain_timeout_s=args.drain_timeout,
    ))
    return 0


def cmd_submit(args) -> int:
    """Submit a sweep to a running daemon (optionally wait for it)."""
    from repro.service import ServiceClient, SweepRequest

    chaos_plan = FaultPlan.load(args.chaos) if args.chaos else None
    client = ServiceClient(args.url)
    record = client.submit(SweepRequest(
        circuit=args.circuit,
        scale=args.scale,
        tp_percents=args.tp_percents,
        options=_flow_overrides(args),
        jobs=args.jobs,
        retries=args.retries,
        task_timeout_s=args.task_timeout,
        name=args.name,
        chaos=chaos_plan,
        trace=args.trace,
        deadline_s=args.deadline,
    ))
    print(f"job {record.id} {record.state} on {client.base_url}")
    if record.coalesced_with:
        print(f"  coalesced with identical in-flight job "
              f"{record.coalesced_with} (shared artifact cache)")
    if not args.wait:
        print(f"  poll:  python -m repro status {record.id} "
              f"--url {client.base_url}")
        print(f"  fetch: python -m repro result {record.id} "
              f"--url {client.base_url}")
        return 0
    final = client.wait(record.id, timeout_s=args.timeout)
    state = final["state"]
    print(f"job {record.id} {state} — "
          + _service_progress_line(final["progress"]))
    if state == "failed":
        print(f"error: {final.get('error')}")
        return 1
    if state == "cancelled":
        return 3
    code = _print_service_report(client.result(record.id))
    if args.trace:
        merged = client.trace(record.id)
        out = args.trace_out or f"{record.id}.trace.json"
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=1)
        print(f"\nwrote merged job trace to {out}")
    return code


def cmd_status(args) -> int:
    """Show one job's lifecycle state and per-cell progress."""
    from repro.service import ServiceClient

    payload = ServiceClient(args.url).status(args.job_id)
    progress = payload["progress"]
    print(f"job {payload['id']}: {payload['state']} — "
          + _service_progress_line(progress))
    if payload.get("error"):
        print(f"error: {payload['error']}")
    for cell in progress["cells"]:
        attempts = (f" (attempt {cell['attempts']})"
                    if cell["attempts"] > 1 else "")
        print(f"  {cell['name']} @ {cell['tp_percent']:g}%: "
              f"{cell['state']}{attempts}")
    return 0


def cmd_result(args) -> int:
    """Fetch a finished job's tables; exit 3 on a degraded sweep."""
    from repro.service import ServiceClient

    return _print_service_report(
        ServiceClient(args.url).result(args.job_id))


def cmd_cancel(args) -> int:
    """Cancel a queued or running job."""
    from repro.service import ServiceClient

    record = ServiceClient(args.url).cancel(args.job_id)
    print(f"job {record.id}: {record.state}")
    if record.state == "running":
        print("  cancellation is cooperative: no new cells will "
              "start; in-flight cells finish into the shared cache")
    return 0


def cmd_trace(args) -> int:
    """Merge raw trace files or summarize a merged Chrome trace."""
    if args.trace_command == "merge":
        files = obs.collect_trace_files(args.inputs)
        traces = []
        for path in files:
            try:
                traces.extend(obs.read_trace_file(path))
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"cannot read {path}: {exc}", file=sys.stderr)
                return 1
        if not traces:
            print("no traces found in: " + ", ".join(args.inputs),
                  file=sys.stderr)
            return 1
        merged = obs.merge_traces(traces)
        problems = obs.validate_chrome_trace(merged)
        if problems:
            print("merged trace is invalid:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=1)
        pids = {e["pid"] for e in merged["traceEvents"]}
        print(f"merged {len(traces)} trace(s) from {len(files)} "
              f"file(s) into {args.out} "
              f"({len(pids)} process track(s), "
              f"{merged['otherData']['clock']} clock)")
        return 0
    # summarize: accept merged Chrome objects and raw bundles alike.
    for path in args.inputs:
        if len(args.inputs) > 1:
            print(f"== {path} ==")
        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
        if isinstance(obj, dict) and "traceEvents" in obj:
            print(obs.summarize_merged(obj))
        else:
            for trace in obs.read_trace_file(path):
                print(obs.format_trace_summary(trace))
    return 0


def _add_service_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default="http://127.0.0.1:8737",
                        help="base URL of the sweep daemon "
                             "(default: %(default)s)")


def main(argv=None) -> int:
    """CLI entry point."""
    # REPRO_EVENTS=<path|stderr> turns on the structured event log for
    # any subcommand without new flags (REPRO_EVENTS_LEVEL tunes it).
    obs.install_events_from_env()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE 2004 TPI-impact reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_flow = sub.add_parser("flow", help="run one full flow")
    _add_common(p_flow)
    p_flow.add_argument("--tp", type=float, default=1.0)
    p_flow.add_argument("--no-incremental", action="store_true",
                        help="recompute route/extraction/STA from "
                             "scratch every hold-fix round (escape "
                             "hatch for the incremental ECO engine)")
    p_flow.add_argument("--lint", action="store_true",
                        help="run the netlist/DFT lint pack as flow "
                             "gates (stage 0, pre-route, each ECO "
                             "round); lint errors abort with exit 4")
    p_flow.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the "
                             "flow's stages to PATH")
    p_flow.add_argument("--placer", type=_placer_name, default=None,
                        metavar="ENGINE",
                        help="global-placement engine (quadratic, sa); "
                             "default: quadratic")
    p_flow.set_defaults(func=cmd_flow)

    p_sweep = sub.add_parser("sweep", help="run the 0-5%% sweep")
    _add_common(p_sweep)
    p_sweep.add_argument("--tp-percents", type=_tp_percents, default=None,
                         help="comma-separated TP levels to sweep "
                              "(default: the paper's 0-5%% ladder)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the sweep levels")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="content-addressed result cache directory")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="ignore --cache-dir (force fresh runs)")
    p_sweep.add_argument("--cache-max-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="size cap of the result cache; above it "
                              "least-recently-used entries are evicted "
                              "(default: unbounded)")
    p_sweep.add_argument("--no-incremental", action="store_true",
                         help="recompute route/extraction/STA from "
                              "scratch every hold-fix round")
    p_sweep.add_argument("--lint", action="store_true",
                         help="run the netlist/DFT lint gates inside "
                              "every level's flow; lint errors abort "
                              "the serial sweep with exit 4")
    p_sweep.add_argument("--retries", type=int, default=2,
                         help="retry budget per (circuit, tp%%) task "
                              "for retryable failures (default 2)")
    p_sweep.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="watchdog per-task timeout; a hung task "
                              "is killed (pool replaced) and retried")
    p_sweep.add_argument("--resume", action="store_true",
                         help="continue a previous sweep from its "
                              "cache + journal (needs --cache-dir)")
    p_sweep.add_argument("--fail-fast", action="store_true",
                         help="abort remaining cells after the first "
                              "permanent failure")
    p_sweep.add_argument("--chaos", default=None, metavar="PLAN.json",
                         help="fault-injection plan file (testing/CI)")
    p_sweep.add_argument("--trace", default=None, metavar="PATH",
                         help="write a merged Chrome trace-event JSON "
                              "of all levels (and the executor's "
                              "scheduling) to PATH")
    p_sweep.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="write each recorded trace as a raw "
                              "*.trace.json file in DIR, mergeable "
                              "later with 'repro trace merge'")
    p_sweep.add_argument("--placer", type=_placer_name, default=None,
                         metavar="ENGINE",
                         help="global-placement engine (quadratic, "
                              "sa); default: quadratic")
    p_sweep.set_defaults(func=cmd_sweep)

    p_lint = sub.add_parser(
        "lint", help="static netlist/DFT audit (no layout)"
    )
    p_lint.add_argument("circuit", nargs="?", default="s38417",
                        metavar="CIRCUIT",
                        help="registered benchmark circuit "
                             f"({', '.join(sorted(CIRCUITS))})")
    p_lint.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the published circuit size")
    p_lint.add_argument("--tp-percents", type=_tp_percents, default=None,
                        help="comma-separated TP levels to audit "
                             "(default: the paper's 0-5%% ladder)")
    p_lint.add_argument("--json", default=None, metavar="PATH",
                        help="write the per-level JSON reports to PATH")
    p_lint.add_argument("--verbose", action="store_true",
                        help="also print warning/info findings")
    p_lint.set_defaults(func=cmd_lint)

    p_selflint = sub.add_parser(
        "selflint",
        help="static analysis of the repro sources (determinism, "
             "concurrency, resource safety)"
    )
    p_selflint.add_argument("--src", default=None, metavar="DIR",
                            help="source root to audit (default: the "
                                 "installed repro package)")
    p_selflint.add_argument("--baseline", default=None, metavar="PATH",
                            help="baseline of grandfathered findings "
                                 "(default: lint-baseline.json at the "
                                 "repo root)")
    p_selflint.add_argument("--json", default=None, metavar="PATH",
                            help="write the full JSON report to PATH")
    p_selflint.add_argument("--packs", default=None, metavar="NAMES",
                            help="comma-separated rule packs to run "
                                 "(default: self,conc,res)")
    p_selflint.add_argument("--update-baseline", action="store_true",
                            help="rewrite the baseline from the "
                                 "current findings")
    p_selflint.set_defaults(func=cmd_selflint)

    p_lbist = sub.add_parser("lbist", help="LBIST coverage curves")
    _add_common(p_lbist)
    p_lbist.add_argument("--patterns", type=int, default=4096)
    p_lbist.add_argument("--tp", type=float, default=2.0)
    p_lbist.set_defaults(func=cmd_lbist)

    p_render = sub.add_parser("render", help="Figure 3 SVG views")
    _add_common(p_render)
    p_render.add_argument("--tp", type=float, default=2.0)
    p_render.add_argument("--out", default="layout_views")
    p_render.set_defaults(func=cmd_render)

    p_serve = sub.add_parser(
        "serve", help="run the sweep-serving daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: %(default)s; the "
                              "daemon has no auth — keep it on "
                              "loopback or a trusted network)")
    p_serve.add_argument("--port", type=int, default=8737,
                         help="TCP port; 0 binds an ephemeral port")
    p_serve.add_argument("--cache-dir", default=".sweep-service",
                         help="shared artifact cache directory "
                              "(default: %(default)s)")
    p_serve.add_argument("--job-workers", type=int, default=2,
                         help="jobs run concurrently (default: 2); "
                              "each job's own --jobs knob governs its "
                              "process pool")
    p_serve.add_argument("--cache-max-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="LRU size cap of the shared cache "
                              "(default: unbounded)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the shared artifact cache")
    p_serve.add_argument("--max-pending", type=int, default=None,
                         metavar="N",
                         help="admission cap: reject submits with "
                              "HTTP 429 + Retry-After once N jobs are "
                              "queued (default: unbounded)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="on SIGTERM/SIGINT, wait up to this long "
                              "for in-flight jobs to finish before "
                              "exiting (default: %(default)s; a second "
                              "signal exits immediately)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a sweep to a running daemon"
    )
    _add_common(p_submit)
    _add_service_url(p_submit)
    p_submit.add_argument("--tp-percents", type=_tp_percents,
                          default=None,
                          help="comma-separated TP levels to sweep "
                               "(default: the paper's 0-5%% ladder)")
    p_submit.add_argument("--jobs", type=int, default=1,
                          help="worker processes within the job")
    p_submit.add_argument("--retries", type=int, default=2,
                          help="retry budget per cell (default 2)")
    p_submit.add_argument("--task-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="watchdog per-cell timeout (needs "
                               "--jobs > 1)")
    p_submit.add_argument("--name", default=None,
                          help="experiment label (default: circuit)")
    p_submit.add_argument("--chaos", default=None, metavar="PLAN.json",
                          help="fault-injection plan file (testing/CI; "
                               "kill/hang faults need --jobs > 1)")
    p_submit.add_argument("--no-incremental", action="store_true",
                          help="recompute route/extraction/STA from "
                               "scratch every hold-fix round")
    p_submit.add_argument("--lint", action="store_true",
                          help="run the netlist/DFT lint gates inside "
                               "every level's flow")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes, then "
                               "print its tables (exit 3 if degraded)")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          metavar="SECONDS",
                          help="--wait deadline (default: %(default)s)")
    p_submit.add_argument("--trace", action="store_true",
                          help="have the daemon record per-cell span "
                               "trees; with --wait the merged Chrome "
                               "trace is fetched and written locally")
    p_submit.add_argument("--trace-out", default=None, metavar="PATH",
                          help="where --wait --trace writes the merged "
                               "trace (default: <job_id>.trace.json)")
    p_submit.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="cancel the job if it has not finished "
                               "this many seconds after submission "
                               "(measured by the daemon; survives a "
                               "daemon restart)")
    p_submit.add_argument("--placer", type=_placer_name, default=None,
                          metavar="ENGINE",
                          help="global-placement engine (quadratic, "
                               "sa); a job's engine is part of its "
                               "spec, so jobs differing only in engine "
                               "never coalesce")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="show a daemon job's progress"
    )
    p_status.add_argument("job_id", metavar="JOB_ID")
    _add_service_url(p_status)
    p_status.set_defaults(func=cmd_status)

    p_result = sub.add_parser(
        "result", help="fetch a finished daemon job's tables"
    )
    p_result.add_argument("job_id", metavar="JOB_ID")
    _add_service_url(p_result)
    p_result.set_defaults(func=cmd_result)

    p_cancel = sub.add_parser(
        "cancel", help="cancel a queued or running daemon job"
    )
    p_cancel.add_argument("job_id", metavar="JOB_ID")
    _add_service_url(p_cancel)
    p_cancel.set_defaults(func=cmd_cancel)

    p_trace = sub.add_parser(
        "trace", help="merge or summarize recorded trace files"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)
    p_merge = trace_sub.add_parser(
        "merge", help="stitch raw *.trace.json files (or directories "
                      "of them) into one Chrome trace"
    )
    p_merge.add_argument("inputs", nargs="+", metavar="PATH",
                         help="raw trace files or directories "
                              "containing *.trace.json")
    p_merge.add_argument("--out", required=True, metavar="PATH",
                         help="write the merged Chrome trace here")
    p_merge.set_defaults(func=cmd_trace)
    p_summarize = trace_sub.add_parser(
        "summarize", help="per-track span tables of a merged Chrome "
                          "trace (or raw trace bundle)"
    )
    p_summarize.add_argument("inputs", nargs="+", metavar="PATH",
                             help="merged Chrome traces or raw trace "
                                  "bundles")
    p_summarize.set_defaults(func=cmd_trace)

    args = parser.parse_args(argv)
    _validate_circuit(parser, args)
    if getattr(args, "resume", False) and not (
            args.cache_dir and not args.no_cache):
        parser.error("--resume needs --cache-dir (and not --no-cache): "
                     "resume skips completed cells via the cache and "
                     "its journal")
    try:
        return args.func(args)
    except ServiceError as err:
        print(f"service error: {err}", file=sys.stderr)
        return 1
    except TimeoutError as err:
        print(f"timed out: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
