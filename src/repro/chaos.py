"""Deterministic fault injection for the sweep engine.

Testing a fault-tolerance layer by hoping CI machines misbehave is not
a strategy.  This module scripts failures: a :class:`FaultPlan` is a
plain-data, picklable list of :class:`FaultSpec` entries, each naming a
(circuit, tp%) cell, a flow stage, and a fault kind:

``raise``
    Raise :class:`InjectedFault` (classified retryable) at the stage
    checkpoint.
``hang``
    Sleep ``seconds`` at the stage checkpoint — long enough that the
    executor's watchdog must time the task out and replace the pool.
``kill``
    ``os._exit`` the worker process at the stage checkpoint, breaking
    the process pool exactly like a real crash / OOM kill.
``corrupt_cache``
    Not a stage fault: the executor truncates the cell's result-cache
    entry right after writing it, simulating a torn write that a later
    (resumed) sweep must quarantine and recompute.
``cache_write_error``
    Not a stage fault either: the cell's result-cache ``put`` raises
    ``OSError`` (disk full), which the executor must absorb — the
    result survives uncached and the sweep degrades to a read-only
    cache instead of failing.

Faults gate on the task's **attempt number**: a spec with ``times=1``
fires on the first attempt only (retries then succeed), ``times=-1``
fires on every attempt (the cell stays failed until the plan is
disabled).  Nothing here consults a clock or a live RNG, so a chaos
run replays identically — the whole point.

Plans thread two ways into a sweep: programmatically via
``ExecutorConfig(chaos=plan)``, or through the ``REPRO_CHAOS``
environment variable (a path to a plan JSON, or inline JSON), which is
how the CLI and CI script them.  The flow calls
:func:`checkpoint(stage)` at the top of every stage; with no plan
activated for the current cell this is a single module-global ``None``
check — the harness costs nothing in production.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

#: Environment variable naming a plan file (or holding inline JSON).
ENV_VAR = "REPRO_CHAOS"

#: Supported fault kinds.
KINDS = ("raise", "hang", "kill", "corrupt_cache", "cache_write_error")

#: Exit status a ``kill`` fault dies with (distinctive in CI logs).
KILL_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """A scripted failure raised by a ``raise`` fault.

    Classified retryable (``retryable = True``): injected faults model
    transient infrastructure failures, so the retry path — not the
    fatal path — is what they exercise.
    """

    retryable = True


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    Attributes:
        kind: One of :data:`KINDS`.
        circuit: Circuit (experiment) name to match, or ``"*"``.
        tp_percent: TP level to match; None matches every level.
        stage: Flow stage checkpoint the fault fires at (one of
            :data:`repro.core.flow.STAGE_KEYS`); ignored by
            ``corrupt_cache`` and ``cache_write_error``.
        times: Attempts the fault fires on (``attempt < times``);
            ``-1`` means every attempt.
        seconds: Sleep duration of a ``hang`` fault.
    """

    kind: str
    circuit: str = "*"
    tp_percent: Optional[float] = None
    stage: str = "tpi_scan"
    times: int = 1
    seconds: float = 3600.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                + ", ".join(KINDS)
            )

    def matches_cell(self, circuit: str, tp_percent: float) -> bool:
        """True when this spec targets the given sweep cell."""
        if self.circuit != "*" and self.circuit != circuit:
            return False
        if self.tp_percent is not None and self.tp_percent != tp_percent:
            return False
        return True

    def fires(self, circuit: str, tp_percent: float, stage: str,
              attempt: int) -> bool:
        """True when this spec fires at this stage of this attempt."""
        if self.kind in ("corrupt_cache", "cache_write_error") \
                or not self.matches_cell(circuit, tp_percent):
            return False
        if self.stage != stage:
            return False
        return self.times < 0 or attempt < self.times


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible script of faults for one sweep.

    Attributes:
        faults: The scripted faults, applied in order.
        seed: Identity tag carried into journals and labels so two
            chaos runs can be told apart; the plan itself is fully
            deterministic and never draws randomness.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def stage_faults(self, circuit: str, tp_percent: float, stage: str,
                     attempt: int) -> Tuple[FaultSpec, ...]:
        """Faults that fire at this stage checkpoint, in plan order."""
        return tuple(
            spec for spec in self.faults
            if spec.fires(circuit, tp_percent, stage, attempt)
        )

    def corrupts_cache(self, circuit: str, tp_percent: float) -> bool:
        """True when the cell's cache entry should be torn post-write."""
        return any(
            spec.kind == "corrupt_cache"
            and spec.matches_cell(circuit, tp_percent)
            for spec in self.faults
        )

    def fails_cache_write(self, circuit: str, tp_percent: float) -> bool:
        """True when the cell's cache ``put`` should raise OSError."""
        return any(
            spec.kind == "cache_write_error"
            and spec.matches_cell(circuit, tp_percent)
            for spec in self.faults
        )

    # -- plain-data interchange -----------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "faults": [
                {
                    "kind": spec.kind,
                    "circuit": spec.circuit,
                    "tp_percent": spec.tp_percent,
                    "stage": spec.stage,
                    "times": spec.times,
                    "seconds": spec.seconds,
                }
                for spec in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from parsed JSON."""
        faults = tuple(
            FaultSpec(**entry) for entry in data.get("faults", ())
        )
        return cls(faults=faults, seed=int(data.get("seed", 0)))

    def save(self, path) -> None:
        """Write the plan as JSON (the ``--chaos`` file format)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan written by :meth:`save`."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def plan_from_env() -> Optional[FaultPlan]:
    """The plan named by :data:`ENV_VAR`, or None.

    The variable may hold a path to a plan JSON file or the JSON text
    itself (it starts with ``{``).  Unreadable values raise — silently
    dropping a chaos plan would make a chaos test pass vacuously.
    """
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    if raw.startswith("{"):
        return FaultPlan.from_dict(json.loads(raw))
    return FaultPlan.load(raw)


# ----------------------------------------------------------------------
# Activation context and checkpoints
# ----------------------------------------------------------------------
class _Context:
    """The cell a plan is currently active for (one per process)."""

    __slots__ = ("plan", "circuit", "tp_percent", "attempt")

    def __init__(self, plan: FaultPlan, circuit: str, tp_percent: float,
                 attempt: int):
        self.plan = plan
        self.circuit = circuit
        self.tp_percent = tp_percent
        self.attempt = attempt


#: The active injection context; None means checkpoints are no-ops.
_active: Optional[_Context] = None


@contextmanager
def active(plan: Optional[FaultPlan], circuit: str, tp_percent: float,
           attempt: int = 0) -> Iterator[None]:
    """Activate ``plan`` for one cell for the ``with`` body.

    ``plan=None`` is the common case and costs nothing.  Re-entrant:
    the previous context (normally None) is restored on exit.
    """
    global _active
    if plan is None:
        yield
        return
    previous = _active
    _active = _Context(plan, circuit, tp_percent, attempt)
    try:
        yield
    finally:
        _active = previous


def checkpoint(stage: str) -> None:
    """Fire any scripted faults for ``stage`` in the active context.

    Called by the flow at the top of every stage.  With no active
    context (production) this is one global load and a None check.
    """
    ctx = _active
    if ctx is None:
        return
    for spec in ctx.plan.stage_faults(ctx.circuit, ctx.tp_percent,
                                      stage, ctx.attempt):
        if spec.kind == "raise":
            raise InjectedFault(
                f"chaos: injected failure in {stage} for "
                f"{ctx.circuit}@{ctx.tp_percent:g}% "
                f"(attempt {ctx.attempt})"
            )
        if spec.kind == "hang":
            time.sleep(spec.seconds)
        elif spec.kind == "kill":
            # Flush nothing, die hard: models SIGKILL/OOM, and the
            # parent must see a broken pool, not a tidy exception.
            os._exit(KILL_EXIT_CODE)
