"""Job queue and execution engine of the sweep service.

The daemon's HTTP layer is a thin skin over this module: a
:class:`JobManager` owns a FIFO queue of submitted
:class:`~repro.service.protocol.SweepRequest` jobs and a small pool of
worker *threads*.  Each worker runs one job at a time through the
existing fault-tolerant sweep engine
(:func:`repro.core.executor.run_sweeps_report`) — retries, watchdog,
crash isolation, chaos checkpoints and journalling all apply
unchanged, because the service adds queueing *around* the engine, not
a second engine.

Why threads, not asyncio tasks: a sweep is CPU-bound blocking work
that itself fans out over a ``ProcessPoolExecutor``; the asyncio loop
must stay free to answer health checks while sweeps grind.  Worker
threads spend their lives blocked in the engine, so the GIL is not
the bottleneck — the process pool under each job is.

**Shared artifact cache.**  Every job writes into one
content-addressed :class:`~repro.core.executor.ResultCache`, so
concurrent tenants deduplicate identical (circuit, tp%, config)
cells: the first job to compute a cell pays for it, later jobs hit.
Two protections make the sharing safe:

* *Coalescing* — two in-flight jobs with the same
  :meth:`~repro.service.protocol.SweepRequest.spec_key` are
  serialised (the second waits for the first, then runs against the
  warm cache), so identical concurrent submissions cost one
  computation plus N-1 cache reads instead of N computations.
* *Eviction* — the cache runs size-capped
  (``ServiceConfig.cache_max_bytes``) with LRU eviction, so a
  long-lived daemon cannot fill the disk.

Each job keeps its **own journal** (``ExecutorConfig.journal``), so
per-cell progress streams per tenant even though artifacts are
shared.  Cancellation is cooperative via
``ExecutorConfig.cancel_check``: a cancelled job stops scheduling
cells; completed cells stay cached for the next tenant.

**Durability.**  Every job-state transition is journalled to the
:class:`~repro.service.store.JobStore` under ``<cache_dir>/jobs/``
before it is visible, so the manager itself is a crash domain: a
restarted manager replays the store, re-adopts terminal jobs (reports
included, so ``/result`` survives a restart), marks jobs the crash
caught queued/running as ``interrupted`` and re-queues them through
the executor's ``resume`` path — the sweep journal plus the shared
cache make the resumed result byte-identical to an uninterrupted run.

**Load shedding.**  ``max_pending`` bounds the queue
(:class:`QueueFullError` → HTTP 429), ``begin_drain`` refuses new
work while in-flight jobs finish (:class:`ServiceDrainingError` →
HTTP 503), and per-request ``deadline_s`` cancels jobs their tenant
has stopped waiting for.  A failing disk (cache write errors) flips
the manager into a read-only-cache *degraded* mode instead of
failing jobs.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import obs
from repro.chaos import plan_from_env
from repro.core.executor import ExecutorConfig, run_sweeps_report
from repro.core.resilience import SweepReport, read_journal_stats
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_INTERRUPTED,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_STATES,
    JobRecord,
    SweepRequest,
    WireError,
    progress_from_journal,
    report_from_wire,
    report_to_wire,
)
from repro.service.store import JobStore


class UnknownJobError(KeyError):
    """No job with the requested id exists on this daemon."""


class ServiceDrainingError(RuntimeError):
    """The daemon is shutting down and no longer admits jobs.

    The server maps this to HTTP 503 with a ``Retry-After`` header —
    in a replicated deployment the client's retry lands on a healthy
    peer (or on this daemon's successor after restart).
    """

    def __init__(self, retry_after_s: float):
        self.retry_after_s = retry_after_s
        super().__init__(
            "daemon is draining for shutdown; retry in "
            f"~{retry_after_s:.0f}s"
        )


class QueueFullError(RuntimeError):
    """The bounded pending queue is full (admission control).

    The server maps this to HTTP 429 with a ``Retry-After`` header
    derived from recent job durations — better an honest early
    rejection than an unbounded queue whose tail latency nobody can
    meet.
    """

    def __init__(self, pending: int, max_pending: int,
                 retry_after_s: float):
        self.pending = pending
        self.max_pending = max_pending
        self.retry_after_s = retry_after_s
        super().__init__(
            f"pending queue is full ({pending}/{max_pending}); "
            f"retry in ~{retry_after_s:.0f}s"
        )


class _Job:
    """Mutable server-side job state (JobRecord is its snapshot).

    Wall-clock stamps (``*_at``) are for display and the wire;
    elapsed-time math (queue wait, run duration) always uses the
    ``*_mono`` twins — ``time.monotonic()`` cannot jump when NTP
    steps the wall clock under a long-lived daemon.  The job also
    owns a span tracer from birth, so its trace's timebase starts at
    submission and queue wait is a real span, not a negative offset.
    """

    def __init__(self, job_id: str, request: SweepRequest,
                 journal: Path, coalesced_with: Optional[str]):
        self.id = job_id
        self.request = request
        self.spec = request.spec_key()
        self.journal = journal
        self.state = JOB_QUEUED
        self.submitted_at = time.time()
        self.submitted_mono = time.monotonic()
        self.started_at: Optional[float] = None
        self.started_mono: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.finished_mono: Optional[float] = None
        self.error: Optional[str] = None
        self.coalesced_with = coalesced_with
        self.report: Optional[SweepReport] = None
        self.cancel_event = threading.Event()
        self.tracer = obs.Tracer(label=f"job {job_id}")
        self.trace_path: Optional[Path] = None
        #: True for a job re-adopted after a daemon restart: the
        #: executor runs it with ``resume=True`` (append to its
        #: journal, serve completed cells from the cache).
        self.resume = False
        #: Set when the job's ``deadline_s`` expired (distinguishes a
        #: deadline cancellation from a tenant's explicit one).
        self.deadline_expired = False

    def deadline_exceeded(self) -> bool:
        """True when the request's ``deadline_s`` has passed.

        Measured on the wall clock from the original submission stamp,
        so a deadline keeps meaning "since the tenant submitted" even
        across a daemon restart.
        """
        deadline = self.request.deadline_s
        return (deadline is not None
                and time.time() - self.submitted_at > deadline)

    def record(self) -> JobRecord:
        return JobRecord(
            id=self.id,
            state=self.state,
            request=self.request,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            coalesced_with=self.coalesced_with,
        )


class JobManager:
    """Asynchronous job queue over the fault-tolerant sweep engine.

    Args:
        cache_dir: Shared artifact cache directory (created on
            demand).  Journals live under ``<cache_dir>/journals/``.
        job_workers: Concurrent jobs (worker threads).  Within each
            job the request's own ``jobs`` knob governs its process
            pool.
        cache_max_bytes: LRU size cap of the shared cache (None =
            unbounded).
        use_cache: Master cache switch (tests force fresh runs with
            False).
        build_experiment: Injection point mapping a request to an
            :class:`~repro.core.experiment.ExperimentConfig`; defaults
            to the exact resolution :func:`repro.api.sweep` uses, which
            is what makes daemon results byte-identical to in-process
            ones.
        max_pending: Admission-control bound on the number of jobs
            waiting to start; a submit beyond it raises
            :class:`QueueFullError` (HTTP 429).  None (default) keeps
            the queue unbounded.
    """

    def __init__(self, cache_dir, job_workers: int = 2,
                 cache_max_bytes: Optional[int] = None,
                 use_cache: bool = True,
                 build_experiment=None,
                 max_pending: Optional[int] = None):
        self.cache_dir = Path(cache_dir)
        self.journal_dir = self.cache_dir / "journals"
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.trace_dir = self.cache_dir / "traces"
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        self.store_dir = self.cache_dir / "jobs"
        self.job_workers = max(1, job_workers)
        self.max_pending = max_pending
        # The daemon is the one place telemetry is on by default: a
        # real registry is installed process-wide so the executor's
        # instrumentation (stage/cell histograms, retry/timeout/cache
        # counters) lands here while jobs grind in the worker threads.
        # The previous registry comes back on shutdown, so an embedded
        # manager (tests, notebooks) does not hijack the process for
        # good.
        self.registry = obs.MetricsRegistry()
        self._prev_registry = obs.install_registry(self.registry)
        self._describe_metrics()
        self.cache_max_bytes = cache_max_bytes
        self.use_cache = use_cache
        self._build_experiment = (build_experiment
                                  or _default_build_experiment)
        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}  # lint: shared-under=_lock
        self._order: List[str] = []  # lint: shared-under=_lock
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._spec_locks: Dict[str, List[Any]] = {}  # lint: shared-under=_lock
        self._running: Dict[str, _Job] = {}  # lint: shared-under=_lock
        #: Jobs a worker has dequeued but not yet finished — wider
        #: than ``_running`` (covers the spec-lock wait), so drain
        #: cannot falsely report idle mid-handoff.
        self._inflight = 0  # lint: shared-under=_lock
        self._draining = False  # lint: shared-under=_lock
        self._degraded = False  # lint: shared-under=_lock
        self._degraded_reason: Optional[str] = None  # lint: shared-under=_lock
        #: Recent job run durations, for the ``Retry-After`` hint.
        self._durations: "deque[float]" = deque(maxlen=16)  # lint: shared-under=_lock
        #: Torn-line high-water mark per job journal, so the torn
        #: counter advances by deltas across repeated status polls.
        self._journal_torn: Dict[str, int] = {}  # lint: shared-under=_lock
        self._counters: Dict[str, int] = {  # lint: shared-under=_lock
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_coalesced": 0,
            "jobs_recovered": 0,
            "jobs_interrupted": 0,
            "jobs_rejected": 0,
            "jobs_expired": 0,
            "cells_done": 0,
            "cells_failed": 0,
            "retries": 0,
            "timeouts": 0,
            "worker_crashes": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "cache_write_failures": 0,
            "journal_torn_lines": 0,
            "store_torn_lines": 0,
        }
        # Re-adopt whatever a previous daemon left in the durable job
        # store *before* opening it for append and starting workers:
        # terminal jobs come back report-and-all, interrupted ones are
        # queued for resumption, and only then does the queue go live.
        resumable = self._recover()
        self.store = JobStore(self.store_dir)
        for job in resumable:
            self.store.record_transition(job.record())
            self._queue.put(job)
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"sweep-worker-{i}")
            for i in range(self.job_workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- crash recovery --------------------------------------------------
    def _recover(self) -> List[_Job]:
        """Replay the durable job store into live job objects.

        Terminal jobs are restored as-is (their wire reports decode
        back into servable :class:`SweepReport` objects); jobs a crash
        caught queued or running become ``interrupted`` and are
        returned for re-queueing with ``resume=True`` — their sweep
        journal plus the shared cache make the re-run skip every cell
        that already finished.
        """
        replay = JobStore.replay(self.store_dir)
        resumable: List[_Job] = []
        # _recover runs from __init__ before the worker threads start,
        # but the lock keeps the guarded-state contract uniform.
        with self._lock:
            for record in replay.records:
                job = _Job(record.id, record.request,
                           self.journal_dir / f"{record.id}.jsonl",
                           coalesced_with=record.coalesced_with)
                job.submitted_at = record.submitted_at
                job.started_at = record.started_at
                job.finished_at = record.finished_at
                job.error = record.error
                if record.state in TERMINAL_STATES:
                    job.state = record.state
                    report_wire = replay.reports.get(record.id)
                    if report_wire is not None:
                        try:
                            job.report = report_from_wire(report_wire)
                        except WireError:
                            # A torn report line: the job stays done,
                            # the payload is gone.  /result says so.
                            pass
                    self._counters["jobs_recovered"] += 1
                else:
                    job.state = JOB_INTERRUPTED
                    job.resume = True
                    self._counters["jobs_interrupted"] += 1
                    resumable.append(job)
                self._jobs[job.id] = job
                self._order.append(job.id)
            self._counters["store_torn_lines"] += replay.torn_lines
            recovered = self._counters["jobs_recovered"]
        if replay.records or replay.torn_lines:
            self.registry.inc("repro_store_torn_lines_total",
                              replay.torn_lines)
            self.registry.inc("repro_jobs_total", recovered,
                              event="recovered")
            self.registry.inc("repro_jobs_total", len(resumable),
                              event="interrupted")
            obs.emit("service_recovered",
                     "warn" if resumable or replay.torn_lines
                     else "info",
                     jobs=len(replay.records),
                     interrupted=len(resumable),
                     torn_lines=replay.torn_lines)
        return resumable

    def _describe_metrics(self) -> None:
        """Declare the daemon's metric vocabulary up front, so the
        first ``/metrics?format=prom`` scrape after boot already
        carries HELP/TYPE lines and kind conflicts fail at startup."""
        d = self.registry.describe
        d("repro_jobs_total", "counter",
          "Job lifecycle transitions by event "
          "(submitted/coalesced/completed/failed/cancelled).")
        d("repro_job_seconds", "histogram",
          "Wall seconds a job spent executing (monotonic clock).")
        d("repro_job_queue_wait_seconds", "histogram",
          "Wall seconds a job waited between submit and start.")
        d("repro_stage_seconds", "histogram",
          "Per-flow-stage wall seconds, labelled by stage and circuit.")
        d("repro_cell_seconds", "histogram",
          "End-to-end wall seconds per sweep cell.")
        d("repro_cells_total", "counter",
          "Sweep cells finished, by circuit and outcome "
          "(ok/failed/cached).")
        d("repro_task_retries_total", "counter",
          "Cell attempts that failed and were retried.")
        d("repro_task_timeouts_total", "counter",
          "Cells killed by the watchdog timeout.")
        d("repro_worker_crashes_total", "counter",
          "Process-pool worker crashes observed by the scheduler.")
        d("repro_cache_events_total", "counter",
          "Artifact cache events (hit/miss/corrupt/evict).")
        d("repro_job_queue_depth", "gauge",
          "Jobs waiting in the daemon queue (sampled at scrape).")
        d("repro_running_jobs", "gauge",
          "Jobs currently executing (sampled at scrape).")
        d("repro_job_workers", "gauge",
          "Configured concurrent job worker threads.")
        d("repro_worker_utilization", "gauge",
          "running_jobs / job_workers (sampled at scrape).")
        d("repro_cache_hit_rate", "gauge",
          "cache_hits / (hits + misses) over the daemon lifetime.")
        d("repro_uptime_seconds", "gauge",
          "Daemon uptime on the monotonic clock.")
        d("repro_request_seconds", "histogram",
          "HTTP request handling latency by route.")
        d("repro_journal_torn_lines_total", "counter",
          "Torn sweep-journal lines skipped by the progress reader "
          "(crash damage or corruption).")
        d("repro_store_torn_lines_total", "counter",
          "Torn job-store lines skipped during restart replay.")
        d("repro_cache_write_failures_total", "counter",
          "Artifact-cache writes that failed with an OS error.")
        d("repro_degraded", "gauge",
          "1 when the daemon runs with a read-only cache after a "
          "cache write failure, else 0.")
        d("repro_draining", "gauge",
          "1 while the daemon refuses new submissions pending "
          "shutdown, else 0.")

    # -- submission ------------------------------------------------------
    def _validate(self, request: SweepRequest) -> None:
        from repro.api import CIRCUITS, _unknown_circuit_error

        if request.circuit not in CIRCUITS:
            raise WireError(str(_unknown_circuit_error(request.circuit)))
        plan = (request.chaos if request.chaos is not None
                else plan_from_env())
        if plan is not None and request.jobs <= 1 and any(
                spec.kind in ("kill", "hang") for spec in plan.faults):
            raise WireError(
                "kill/hang chaos faults need jobs > 1: with jobs=1 the "
                "cell runs inline in the daemon's worker thread, so a "
                "kill would take the daemon down and a hang has no "
                "watchdog to rescue it"
            )

    def retry_after_hint(self) -> float:
        """Seconds a rejected client should wait before retrying.

        One recently observed job duration of headroom: with an empty
        history a conservative 5 s.  Clamped to [1 s, 120 s] so the
        hint is always sane to sleep on.
        """
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:  # lint: holds=_lock
        durations = list(self._durations)
        estimate = (sum(durations) / len(durations) if durations
                    else 5.0)
        return min(120.0, max(1.0, estimate))

    def submit(self, request: SweepRequest) -> JobRecord:
        """Accept a sweep job; returns its queued record.

        Raises:
            WireError: The request is invalid (unknown circuit,
                unsafe chaos plan) — the server answers HTTP 400.
            ServiceDrainingError: The daemon is shutting down —
                HTTP 503 + ``Retry-After``.
            QueueFullError: ``max_pending`` jobs are already waiting —
                HTTP 429 + ``Retry-After``.
        """
        self._validate(request)
        job_id = f"j{uuid.uuid4().hex[:12]}"
        journal = self.journal_dir / f"{job_id}.jsonl"
        with self._lock:
            if self._draining:
                self._counters["jobs_rejected"] += 1
                self.registry.inc("repro_jobs_total", 1,
                                  event="rejected")
                raise ServiceDrainingError(self._retry_after_locked())
            pending = self._queue.qsize()
            if self.max_pending is not None \
                    and pending >= self.max_pending:
                self._counters["jobs_rejected"] += 1
                self.registry.inc("repro_jobs_total", 1,
                                  event="rejected")
                raise QueueFullError(pending, self.max_pending,
                                     self._retry_after_locked())
            spec = request.spec_key()
            twin = next(
                (j for jid in self._order
                 for j in [self._jobs[jid]]
                 if j.spec == spec and j.state not in TERMINAL_STATES),
                None,
            )
            job = _Job(job_id, request, journal,
                       coalesced_with=twin.id if twin else None)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._counters["jobs_submitted"] += 1
            if twin is not None:
                self._counters["jobs_coalesced"] += 1
            self.store.record_transition(job.record())
        obs.counter("service.jobs_submitted")
        self.registry.inc("repro_jobs_total", 1, event="submitted")
        if job.coalesced_with:
            self.registry.inc("repro_jobs_total", 1, event="coalesced")
        obs.emit("job_submitted", job_id=job.id, circuit=request.circuit,
                 spec=job.spec[:12], coalesced_with=job.coalesced_with)
        self._queue.put(job)
        return job.record()

    # -- lookup ----------------------------------------------------------
    def _get(self, job_id: str) -> _Job:  # lint: holds=_lock
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def record(self, job_id: str) -> JobRecord:
        """Current lifecycle snapshot of one job."""
        with self._lock:
            return self._get(job_id).record()

    def records(self) -> List[JobRecord]:
        """All jobs, oldest first."""
        with self._lock:
            return [self._jobs[jid].record() for jid in self._order]

    def progress(self, job_id: str) -> Dict[str, Any]:
        """Per-cell progress of one job, streamed from its journal.

        Safe against torn/partial journal frames by construction (the
        journal reader skips and counts bad lines): a cell whose
        completion frame has not landed reads as still in progress,
        and the torn count is surfaced in the payload and the
        ``repro_journal_torn_lines_total`` counter rather than hidden.
        """
        with self._lock:
            job = self._get(job_id)
        events, torn = read_journal_stats(job.journal)
        if torn:
            with self._lock:
                delta = torn - self._journal_torn.get(job_id, 0)
                if delta > 0:
                    self._journal_torn[job_id] = torn
                    self._counters["journal_torn_lines"] += delta
                else:
                    delta = 0
            if delta > 0:
                self.registry.inc("repro_journal_torn_lines_total",
                                  delta)
                obs.emit("journal_torn_lines", "warn", job_id=job_id,
                         torn_lines=torn)
        return progress_from_journal(events, torn_lines=torn)

    def report(self, job_id: str) -> Optional[SweepReport]:
        """The finished job's sweep report, or None while running."""
        with self._lock:
            return self._get(job_id).report

    # -- cancellation ----------------------------------------------------
    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: immediate while queued, cooperative while
        running (no new cells start; in-flight cells finish into the
        shared cache), a no-op once terminal."""
        with self._lock:
            job = self._get(job_id)
            if job.state in (JOB_QUEUED, JOB_INTERRUPTED):
                job.cancel_event.set()
                job.state = JOB_CANCELLED
                job.finished_at = time.time()
                job.finished_mono = time.monotonic()
                self._counters["jobs_cancelled"] += 1
                self.registry.inc("repro_jobs_total", 1,
                                  event="cancelled")
                self.store.record_transition(job.record())
            elif job.state == JOB_RUNNING:
                job.cancel_event.set()
            obs.emit("job_cancel_requested", "warn", job_id=job.id,
                     state=job.state)
            return job.record()
        # The worker notices the event via ExecutorConfig.cancel_check
        # and finalises the running job as cancelled itself.

    # -- execution -------------------------------------------------------
    def _acquire_spec(self, spec: str) -> List[Any]:
        with self._lock:
            entry = self._spec_locks.get(spec)
            if entry is None:
                entry = self._spec_locks[spec] = [threading.Lock(), 0]
            entry[1] += 1
        entry[0].acquire()
        return entry

    def _release_spec(self, spec: str, entry: List[Any]) -> None:
        entry[0].release()
        with self._lock:
            entry[1] -= 1
            if entry[1] <= 0:
                self._spec_locks.pop(spec, None)

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                self._inflight += 1
            try:
                if job.cancel_event.is_set():
                    # Cancelled while queued; already finalised.
                    continue
                # Coalescing: identical specs run one at a time, so
                # the second tenant's job finds every cell warm in
                # the cache.
                entry = self._acquire_spec(job.spec)
                try:
                    self._run_job(job)
                finally:
                    self._release_spec(job.spec, entry)
            finally:
                with self._lock:
                    self._inflight -= 1

    def _cancel_check(self, job: _Job):
        """Cooperative stop condition for the executor: a tenant's
        explicit cancel *or* the job's deadline expiring mid-run."""
        def check() -> bool:
            if job.cancel_event.is_set():
                return True
            if job.deadline_exceeded():
                job.deadline_expired = True
                job.cancel_event.set()
                return True
            return False
        return check

    def _executor_config(self, job: _Job) -> ExecutorConfig:
        request = job.request
        return ExecutorConfig(
            jobs=request.jobs,
            cache_dir=str(self.cache_dir),
            use_cache=self.use_cache,
            cache_max_bytes=self.cache_max_bytes,
            retries=request.retries,
            task_timeout_s=request.task_timeout_s,
            chaos=request.chaos,
            journal=str(job.journal),
            cancel_check=self._cancel_check(job),
            trace=request.trace,
            resume=job.resume,
            cache_read_only=self.degraded,
        )

    def _run_job(self, job: _Job) -> None:
        with self._lock:
            if job.cancel_event.is_set():
                if job.state != JOB_CANCELLED:
                    job.state = JOB_CANCELLED
                    job.finished_at = time.time()
                    job.finished_mono = time.monotonic()
                    self._counters["jobs_cancelled"] += 1
                    self.store.record_transition(job.record())
                return
            if job.deadline_exceeded():
                # The tenant's deadline passed while the job queued:
                # starting it now would burn CPU nobody is waiting on.
                job.deadline_expired = True
                job.cancel_event.set()
                job.state = JOB_CANCELLED
                job.error = (
                    f"deadline_s={job.request.deadline_s:g} expired "
                    "before the job started")
                job.finished_at = time.time()
                job.finished_mono = time.monotonic()
                self._counters["jobs_cancelled"] += 1
                self._counters["jobs_expired"] += 1
                self.registry.inc("repro_jobs_total", 1,
                                  event="expired")
                self.store.record_transition(job.record())
                obs.emit("job_deadline_expired", "warn", job_id=job.id,
                         deadline_s=job.request.deadline_s)
                return
            job.state = JOB_RUNNING
            job.started_at = time.time()
            job.started_mono = time.monotonic()
            self._running[job.id] = job
            self.store.record_transition(job.record())
        obs.counter("service.jobs_started")
        queue_wait = job.started_mono - job.submitted_mono
        self.registry.observe("repro_job_queue_wait_seconds", queue_wait)
        run_from = job.tracer.now()
        job.tracer.record_span("queue_wait", 0.0, run_from)
        with obs.bind(job_id=job.id):
            obs.emit("job_start", circuit=job.request.circuit,
                     jobs=job.request.jobs, queue_wait_s=queue_wait)
            try:
                experiment = self._build_experiment(job.request)
                report = run_sweeps_report([experiment],
                                           self._executor_config(job))
            except Exception as exc:  # engine crash, not a cell hole
                with self._lock:
                    self._running.pop(job.id, None)
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.state = JOB_FAILED
                    job.finished_at = time.time()
                    job.finished_mono = time.monotonic()
                    self._counters["jobs_failed"] += 1
                    self.store.record_transition(job.record())
                obs.counter("service.jobs_failed")
                self.registry.inc("repro_jobs_total", 1, event="failed")
                obs.emit("job_failed", "error", error=job.error)
                self._finish_trace(job, None, run_from)
                return
            with self._lock:
                self._running.pop(job.id, None)
                job.report = report
                job.finished_at = time.time()
                job.finished_mono = time.monotonic()
                if report.cancelled or job.cancel_event.is_set():
                    job.state = JOB_CANCELLED
                    if job.deadline_expired:
                        job.error = (
                            f"deadline_s={job.request.deadline_s:g} "
                            "expired mid-run; the job was cancelled")
                        self._counters["jobs_expired"] += 1
                        self.registry.inc("repro_jobs_total", 1,
                                          event="expired")
                    self._counters["jobs_cancelled"] += 1
                else:
                    job.state = JOB_DONE
                    self._counters["jobs_completed"] += 1
                self._durations.append(
                    job.finished_mono - job.started_mono)
                self._counters["cells_done"] += report.successful_cells()
                self._counters["cells_failed"] += len(report.failures)
                self._counters["retries"] += report.retries
                self._counters["timeouts"] += report.timeouts
                self._counters["worker_crashes"] += report.worker_crashes
                self._counters["cache_hits"] += report.cache_hits
                self._counters["cache_misses"] += report.cache_misses
                self._counters["cache_evictions"] += report.cache_evictions
                self._counters["cache_write_failures"] += (
                    report.cache_write_failures)
                self.store.record_transition(
                    job.record(),
                    report=(report_to_wire(report)
                            if job.state == JOB_DONE else None))
            if report.cache_write_failures:
                self._enter_degraded_mode(
                    f"cache write failed during job {job.id} "
                    f"({report.cache_write_failures} failure(s))")
            obs.counter("service.jobs_finished")
            self.registry.inc(
                "repro_jobs_total", 1,
                event=("cancelled" if job.state == JOB_CANCELLED
                       else "completed"))
            self.registry.observe("repro_job_seconds",
                                  job.finished_mono - job.started_mono)
            obs.emit("job_end", state=job.state,
                     cells_done=report.successful_cells(),
                     cells_failed=len(report.failures),
                     seconds=job.finished_mono - job.started_mono)
            self._finish_trace(job, report, run_from)

    def _enter_degraded_mode(self, reason: str) -> None:
        """Flip the manager into read-only-cache degraded mode.

        The disk failed a write, so every subsequent job runs with
        ``cache_read_only=True``: existing artifacts keep serving,
        nothing new is trusted to the disk, and nothing fails — the
        contract is "slower, not broken", surfaced via ``/healthz``
        and the ``repro_degraded`` gauge so an operator actually sees
        it.  One-way by design: only a restart (with a fixed disk)
        clears it.
        """
        with self._lock:
            if self._degraded:
                return
            self._degraded = True
            self._degraded_reason = reason
        self.registry.inc("repro_cache_write_failures_total", 1)
        self.registry.set("repro_degraded", 1)
        obs.counter("service.degraded")
        obs.emit("service_degraded", "error", reason=reason)

    @property
    def degraded(self) -> bool:
        """True once a cache write failure flipped the daemon into
        read-only-cache mode (see :meth:`_enter_degraded_mode`)."""
        with self._lock:
            return self._degraded

    @property
    def degraded_reason(self) -> Optional[str]:
        """Why the daemon degraded, or None while healthy."""
        with self._lock:
            return self._degraded_reason

    # -- drain -----------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` was called."""
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new jobs (idempotent).

        Submissions from here on raise :class:`ServiceDrainingError`
        (HTTP 503 + ``Retry-After``); queued and running jobs are
        unaffected — :meth:`drain` waits for them.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
        self.registry.set("repro_draining", 1)
        obs.emit("service_draining", "warn")

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait for in-flight and queued jobs to finish.

        Returns True when the queue emptied and every running job
        reached a terminal state within ``timeout_s``; False when the
        timeout expired first (the jobs keep their durable store
        records either way, so a restart re-adopts whatever did not
        finish).
        """
        self.begin_drain()
        deadline = time.monotonic() + max(0.0, timeout_s)
        while True:
            with self._lock:
                idle = self._inflight == 0
            if idle and self._queue.qsize() == 0:
                return True
            if time.monotonic() >= deadline:
                with self._lock:
                    return (self._inflight == 0
                            and self._queue.qsize() == 0)
            time.sleep(0.05)

    def _finish_trace(self, job: _Job, report: Optional[SweepReport],
                      run_from: float) -> None:
        """Close the job's span tree and persist its trace bundle.

        The bundle always holds the job-level spans (queue_wait +
        run); with ``request.trace`` set it also carries every cell's
        worker-side flow trace, so ``merge_traces`` can stitch the
        whole job across processes.  Best-effort: a full disk must
        not fail the job itself.
        """
        job.tracer.record_span("run", run_from, job.tracer.now())
        traces = [job.tracer.trace()]
        if report is not None:
            for result in report.results.values():
                for summary in result.runs.values():
                    if getattr(summary, "trace", None) is not None:
                        traces.append(summary.trace)
        path = self.trace_dir / f"{job.id}.trace.json"
        try:
            obs.write_trace_file(path, traces)
        except OSError:
            return
        job.trace_path = path

    def trace(self, job_id: str) -> Dict[str, Any]:
        """Merged Chrome trace of one job's recorded spans.

        Raises KeyError (via :class:`UnknownJobError`) for unknown
        jobs and FileNotFoundError while the job has not yet written
        its trace bundle — the server maps both to 404.
        """
        with self._lock:
            job = self._get(job_id)
            trace_path = job.trace_path
            state = job.state
        if trace_path is None:
            raise FileNotFoundError(
                f"job {job_id} has no trace yet (state {state})")
        return obs.merge_traces(obs.read_trace_file(trace_path))

    # -- observability ---------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Counters and gauges for the ``/metrics`` endpoint."""
        with self._lock:
            counters = dict(self._counters)
            running = len(self._running)
            draining = self._draining
            degraded = self._degraded
            degraded_reason = self._degraded_reason
            states: Dict[str, int] = {}
            for jid in self._order:
                state = self._jobs[jid].state
                states[state] = states.get(state, 0) + 1
        lookups = counters["cache_hits"] + counters["cache_misses"]
        return {
            **counters,
            "queue_depth": self._queue.qsize(),
            "running_jobs": running,
            "job_workers": self.job_workers,
            "worker_utilization": running / self.job_workers,
            "cache_hit_rate": (counters["cache_hits"] / lookups
                               if lookups else 0.0),
            "jobs_by_state": states,
            "max_pending": self.max_pending,
            "draining": draining,
            "degraded": degraded,
            "degraded_reason": degraded_reason,
        }

    def prom_registry(self) -> obs.MetricsRegistry:
        """The live registry with scrape-time gauges refreshed.

        Counters and histograms accumulate as jobs run; the queue /
        utilization gauges are snapshots, so they are (re)sampled here
        — at scrape time — exactly like a Prometheus collector would.
        """
        snapshot = self.metrics()
        self.registry.set("repro_job_queue_depth",
                          snapshot["queue_depth"])
        self.registry.set("repro_running_jobs", snapshot["running_jobs"])
        self.registry.set("repro_job_workers", snapshot["job_workers"])
        self.registry.set("repro_worker_utilization",
                          snapshot["worker_utilization"])
        self.registry.set("repro_cache_hit_rate",
                          snapshot["cache_hit_rate"])
        self.registry.set("repro_degraded",
                          1 if snapshot["degraded"] else 0)
        self.registry.set("repro_draining",
                          1 if snapshot["draining"] else 0)
        return self.registry

    # -- shutdown --------------------------------------------------------
    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Stop the worker threads (idempotent).

        Queued jobs stay queued after this — but their durable store
        records survive, so the next daemon on this cache dir adopts
        and resumes them.  The daemon calls this only on its way down
        (after :meth:`drain` when shutting down gracefully).
        """
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self.store.close()
        # Give the process its previous (usually null) registry back —
        # but only if ours is still the installed one: a second
        # manager may have been stacked on top in the meantime.
        if obs.get_registry() is self.registry:
            obs.install_registry(self._prev_registry)


def _default_build_experiment(request: SweepRequest):
    """Resolve a request exactly as :func:`repro.api.sweep` would.

    Deliberately routes through the api module's own resolution helper
    so registry defaults, option coercion and did-you-mean rejection
    are *the same code path* — the foundation of the "daemon results
    are byte-identical to ``api.sweep``" guarantee.
    """
    from repro.api import _build_experiment

    return _build_experiment(
        request.circuit,
        None,
        None,
        request.scale,
        request.tp_percents,
        request.name,
        dict(request.options),
    )
