"""The sweep-serving daemon: a stdlib-only asyncio HTTP/1.1 server.

``repro serve`` binds this server in front of a
:class:`~repro.service.jobs.JobManager`.  No web framework — requests
are parsed with ``asyncio`` stream primitives and answered with JSON,
which keeps the daemon importable anywhere the toolkit is (the whole
point of a stdlib-only reproduction).

Endpoints (all JSON; the wire formats live in
:mod:`repro.service.protocol`):

========  =====================  =======================================
method    path                   meaning
========  =====================  =======================================
GET       ``/healthz``           liveness: version, uptime, worker count
GET       ``/metrics``           queue depth, worker utilization, cache
                                 hit rate, eviction/retry/crash counters
GET       ``/metrics?format=prom``  the same registry in Prometheus
                                 text exposition format (also chosen by
                                 an ``Accept: text/plain`` header)
POST      ``/sweeps``            submit a sweep; 202 + job record
GET       ``/sweeps``            list job records, oldest first
GET       ``/sweeps/<id>``       job record + journal-streamed per-cell
                                 progress
GET       ``/sweeps/<id>/result``  the finished job's sweep report;
                                 409 while queued/running
GET       ``/sweeps/<id>/trace``   merged Chrome trace of the job's
                                 spans (404 until the job has run)
DELETE    ``/sweeps/<id>``       cancel (immediate while queued,
                                 cooperative while running)
========  =====================  =======================================

Error contract: 400 malformed/invalid payloads
(:class:`~repro.service.protocol.WireError`), 404 unknown job or
route, 405 wrong method, 409 result requested before the job finished,
500 only for daemon bugs.  Every error body is
``{"error": "<message>"}``.

Connections are handled one request each (``Connection: close``) — a
submit-poll-fetch client opens a handful of sockets per sweep, and the
simplicity keeps the parser honest.  The event loop never blocks on
sweep work: jobs grind in the manager's worker threads while the loop
answers status polls.

:class:`ServiceThread` runs the daemon inside a host process (the e2e
test suite and notebook users); ``repro serve`` runs it in the
foreground.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs

import repro
from repro import obs
from repro.service.jobs import (
    JobManager,
    QueueFullError,
    ServiceDrainingError,
    UnknownJobError,
)
from repro.service.protocol import (
    JOB_FAILED,
    TERMINAL_STATES,
    SweepRequest,
    WireError,
    report_to_wire,
)

#: Default TCP port of ``repro serve`` (0 = ephemeral, tests).
DEFAULT_PORT = 8737

#: Largest accepted request head/body, in bytes.  A submit payload is
#: a few hundred bytes; anything near this limit is not a client.
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class RawBody:
    """A non-JSON response body (the Prometheus exposition text)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str,
                 content_type: str =
                 "text/plain; version=0.0.4; charset=utf-8"):
        self.text = text
        self.content_type = content_type


#: What a handler may return as its payload.
Payload = Union[Dict[str, Any], RawBody]


@dataclass
class ServiceConfig:
    """Daemon configuration.

    Attributes:
        host: Bind address (loopback by default; this daemon has no
            auth story and must not face the open internet as-is).
        port: TCP port; 0 binds an ephemeral port (tests).
        cache_dir: Shared artifact-cache directory; also hosts the
            per-job journals and the durable job store.
        job_workers: Concurrent jobs (see :class:`JobManager`).
        cache_max_bytes: LRU size cap of the shared cache.
        use_cache: Master cache switch.
        max_pending: Bound on queued jobs; submits beyond it get
            HTTP 429 + ``Retry-After``.  None = unbounded.
        drain_timeout_s: On SIGTERM/SIGINT, how long in-flight jobs
            get to finish before the daemon exits anyway (their store
            records survive for the next daemon to resume).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    cache_dir: str = ".sweep-service"
    job_workers: int = 2
    cache_max_bytes: Optional[int] = None
    use_cache: bool = True
    max_pending: Optional[int] = None
    drain_timeout_s: float = 30.0


class SweepService:
    """The daemon: routing plus a :class:`JobManager`."""

    def __init__(self, config: ServiceConfig,
                 manager: Optional[JobManager] = None):
        self.config = config
        self.manager = manager or JobManager(
            config.cache_dir,
            job_workers=config.job_workers,
            cache_max_bytes=config.cache_max_bytes,
            use_cache=config.use_cache,
            max_pending=config.max_pending,
        )
        self.started_at = time.time()
        # Uptime and request latencies use the monotonic clock: a
        # wall-clock step (NTP, DST of the host) must not produce a
        # negative uptime on a long-lived daemon.
        self.started_mono = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (resolves an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (``repro serve`` foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections (worker threads stop via
        ``manager.shutdown`` — the caller owns that, since queued jobs
        may be worth draining first)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def base_url(self) -> str:
        """The root URL clients should talk to."""
        return f"http://{self.config.host}:{self.port}"

    # -- HTTP plumbing ---------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        extra_headers: Dict[str, str] = {}
        try:
            status, payload, extra_headers = await self._respond(reader)
        except Exception as exc:  # daemon bug: surface, don't hang up
            status, payload = 500, {"error":
                                    f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, RawBody):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        header_lines = "".join(
            f"{key}: {value}\r\n"
            for key, value in extra_headers.items()
        )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{header_lines}"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client hung up mid-reply; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, Payload, Dict[str, str]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed HTTP request head"}, {}
        if len(head) > MAX_HEAD_BYTES:
            return 400, {"error": "request head too large"}, {}
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return (400,
                    {"error": f"malformed request line: {lines[0]!r}"},
                    {})
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return 400, {"error": "bad Content-Length"}, {}
        if length < 0 or length > MAX_BODY_BYTES:
            return 400, {"error": "request body too large"}, {}
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return 400, {"error": "request body truncated"}, {}
        path, _, raw_query = target.partition("?")
        query = parse_qs(raw_query)
        obs.counter("service.requests")
        t0 = time.monotonic()
        extra: Dict[str, str] = {}
        try:
            status, payload = self._route(method.upper(), path, query,
                                          headers, body)
        except WireError as exc:
            status, payload = 400, {"error": str(exc)}
        except UnknownJobError as exc:
            status, payload = 404, {"error":
                                    f"unknown job {exc.args[0]!r}"}
        except FileNotFoundError as exc:
            status, payload = 404, {"error": str(exc)}
        except ServiceDrainingError as exc:
            # Shedding load, not failing: the Retry-After header is
            # the machine-readable half of the contract.
            status, payload = 503, {"error": str(exc),
                                    "retry_after_s": exc.retry_after_s}
            extra["Retry-After"] = str(max(1, round(exc.retry_after_s)))
        except QueueFullError as exc:
            status, payload = 429, {"error": str(exc),
                                    "retry_after_s": exc.retry_after_s}
            extra["Retry-After"] = str(max(1, round(exc.retry_after_s)))
        seconds = time.monotonic() - t0
        route = next((p for p in path.split("/") if p), "/")
        obs.observe("repro_request_seconds", seconds, route=route)
        obs.emit("request",
                 "warn" if status >= 400
                 else "debug" if route in ("healthz", "metrics")
                 else "info",
                 method=method.upper(), path=path, status=status,
                 seconds=seconds)
        return status, payload, extra

    # -- routing ---------------------------------------------------------
    def _route(self, method: str, path: str,
               query: Dict[str, Any], headers: Dict[str, str],
               body: bytes) -> Tuple[int, Payload]:
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"]:
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, self._healthz()
        if parts == ["metrics"]:
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}
            if self._wants_prom(query, headers):
                return 200, RawBody(self._prom_text())
            return 200, self._metrics()
        if not parts or parts[0] != "sweeps" or len(parts) > 3:
            return 404, {"error": f"no such route: {path}"}
        if len(parts) == 1:
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return 200, {"jobs": [r.to_wire()
                                      for r in self.manager.records()]}
            return 405, {"error": "sweeps accepts POST and GET"}
        job_id = parts[1]
        if len(parts) == 3:
            if parts[2] == "result":
                if method != "GET":
                    return 405, {"error": "result is GET-only"}
                return self._result(job_id)
            if parts[2] == "trace":
                if method != "GET":
                    return 405, {"error": "trace is GET-only"}
                return 200, self.manager.trace(job_id)
            return 404, {"error": f"no such route: {path}"}
        if method == "GET":
            return self._status(job_id)
        if method == "DELETE":
            return 200, self.manager.cancel(job_id).to_wire()
        return 405, {"error": "job accepts GET and DELETE"}

    @staticmethod
    def _wants_prom(query: Dict[str, Any],
                    headers: Dict[str, str]) -> bool:
        """Content negotiation for ``/metrics``: an explicit
        ``?format=prom`` (or ``?format=json``) wins; otherwise an
        ``Accept`` header asking for ``text/plain`` selects the
        exposition format.  Default stays JSON — existing scripts keep
        working."""
        fmt = (query.get("format") or [""])[0].lower()
        if fmt:
            return fmt == "prom"
        return "text/plain" in headers.get("accept", "").lower()

    # -- handlers --------------------------------------------------------
    def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"request body is not JSON: {exc}") from exc
        record = self.manager.submit(SweepRequest.from_wire(data))
        return 202, record.to_wire()

    def _status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        record = self.manager.record(job_id)
        payload = record.to_wire()
        payload["progress"] = self.manager.progress(job_id)
        return 200, payload

    def _result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        record = self.manager.record(job_id)
        if record.state not in TERMINAL_STATES:
            return 409, {
                "error": f"job {job_id} is {record.state}; the result "
                         "exists only once the job is done",
                "state": record.state,
            }
        if record.state == JOB_FAILED:
            return 500, {"error": record.error
                         or "job failed before producing a report",
                         "state": record.state}
        report = self.manager.report(job_id)
        if report is None:  # cancelled while still queued
            return 409, {"error": f"job {job_id} was cancelled before "
                                  "it ran; no result exists",
                         "state": record.state}
        payload = report_to_wire(report)
        payload["id"] = job_id
        payload["state"] = record.state
        return 200, payload

    def _healthz(self) -> Dict[str, Any]:
        manager = self.manager
        status = ("draining" if manager.draining
                  else "degraded" if manager.degraded
                  else "ok")
        return {
            "status": status,
            "version": repro.__version__,
            "uptime_s": time.monotonic() - self.started_mono,
            "job_workers": manager.job_workers,
            "draining": manager.draining,
            "degraded": manager.degraded,
            "degraded_reason": manager.degraded_reason,
        }

    def _metrics(self) -> Dict[str, Any]:
        metrics = self.manager.metrics()
        metrics["uptime_s"] = time.monotonic() - self.started_mono
        return metrics

    def _prom_text(self) -> str:
        """The manager's registry, gauges freshly sampled, rendered in
        Prometheus text exposition format."""
        registry = self.manager.prom_registry()
        registry.set("repro_uptime_seconds",
                     time.monotonic() - self.started_mono)
        return obs.render_registry(registry)


class ServiceThread:
    """Run a :class:`SweepService` on a background thread.

    The e2e harness (and anything embedding the daemon in a live
    process) uses this: ``start()`` returns once the socket is bound
    and the real port is known; ``stop()`` tears the loop, socket and
    worker threads down.  Usable as a context manager.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.service = SweepService(config or ServiceConfig(port=0))
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return self.service.base_url

    def start(self) -> "ServiceThread":
        """Bind and serve; blocks until the port is live."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="sweep-service")
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("sweep service failed to start in 30 s")
        if self._startup_error is not None:
            raise RuntimeError(
                "sweep service failed to start"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.aclose())
            self._loop.close()

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Drain the embedded daemon: stop admitting (503s), wait for
        in-flight jobs, keep serving status/result polls.  Returns
        True when everything finished in time (see
        :meth:`JobManager.drain`)."""
        if timeout_s is None:
            timeout_s = self.service.config.drain_timeout_s
        return self.service.manager.drain(timeout_s)

    def stop(self) -> None:
        """Stop serving and join the loop and worker threads."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.manager.shutdown()

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def run_daemon(config: ServiceConfig) -> None:
    """Foreground entry point of ``repro serve``.

    Returns after a graceful shutdown: SIGTERM or SIGINT (Ctrl-C)
    puts the daemon in *drain* mode — new submissions get 503 +
    ``Retry-After``, status/result polls keep answering, in-flight
    jobs get up to ``config.drain_timeout_s`` to finish — then the
    socket closes and the worker threads stop.  Jobs that did not
    finish keep their durable store records, so the next daemon on
    this cache dir adopts and resumes them; a second signal mid-drain
    skips straight to exit.
    """
    service = SweepService(config)
    manager = service.manager

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def _on_signal(signame: str) -> None:
            if manager.draining:
                # Second signal: the operator means now.
                stop.set()
                return
            manager.begin_drain()
            print(f"{signame}: draining (new submits get 503; "
                  f"waiting up to {config.drain_timeout_s:g}s for "
                  "in-flight jobs)")
            loop.create_task(_drain_then_stop())

        async def _drain_then_stop() -> None:
            drained = await loop.run_in_executor(
                None, manager.drain, config.drain_timeout_s)
            if not drained:
                print("drain timeout: leaving unfinished jobs to the "
                      "job store (the next daemon resumes them)")
            stop.set()

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, _on_signal, signal.Signals(sig).name)
            except (NotImplementedError, RuntimeError):
                # Platforms without loop signal handlers fall back to
                # the KeyboardInterrupt path below.
                pass

        await service.start()
        print(f"repro sweep service listening on {service.base_url}")
        print(f"  cache: {config.cache_dir}"
              + (f" (cap {config.cache_max_bytes} bytes, LRU)"
                 if config.cache_max_bytes else " (unbounded)"))
        print(f"  job workers: {config.job_workers}"
              + (f", max pending: {config.max_pending}"
                 if config.max_pending is not None else ""))
        serve = asyncio.ensure_future(service.serve_forever())
        await stop.wait()
        serve.cancel()
        try:
            await serve
        except asyncio.CancelledError:
            pass
        await service.aclose()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        # No loop signal handlers on this platform: drain inline.
        manager.drain(config.drain_timeout_s)
    finally:
        manager.shutdown()
        print("sweep service stopped; job store checkpointed at "
              f"{manager.store_dir}")
