"""HTTP client for the sweep service.

:class:`ServiceClient` is the only piece of code (besides the daemon)
that touches sockets — the CLI subcommands and the e2e tests all route
through it.  One ``http.client.HTTPConnection`` per request, matching
the server's ``Connection: close`` discipline; no sessions, no
keep-alive, no dependencies.

The headline API is :meth:`ServiceClient.sweep`: it mirrors the
contract of :func:`repro.api.sweep` — submit, wait, fetch, raise
:class:`~repro.core.executor.SweepExecutionError` if any cell stayed
failed, return the circuit's :class:`~repro.core.experiment.ExperimentResult`
— which is what makes the daemon and the in-process API verifiably
interchangeable (the service test suite asserts their canonical result
bytes are equal).

The transport retries transient failures with the engine's own
deterministic backoff (:class:`~repro.core.resilience.RetryPolicy`):
connection refused/reset (a daemon mid-restart), plus HTTP 429 and
503 — the load-shedding answers — honoring the server's
``Retry-After`` hint.  A 400/404/409/500 never retries: those mean
the *request* (or the job) is wrong, and repeating it cannot help.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.core.executor import SweepExecutionError
from repro.core.experiment import ExperimentResult
from repro.core.resilience import RetryPolicy, SweepReport
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_FAILED,
    TERMINAL_STATES,
    JobRecord,
    SweepRequest,
    report_from_wire,
)

#: HTTP statuses worth an automatic retry: the daemon (or a proxy in
#: front of it) is shedding load or briefly gone, not rejecting the
#: request itself.
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})


class ServiceError(RuntimeError):
    """The daemon answered with an error (HTTP status >= 400).

    Attributes:
        status: The HTTP status code (0 when the connection itself
            failed before a status arrived).
        payload: The decoded JSON error body (``{"error": ...}``).
        retry_after_s: The server's ``Retry-After`` hint in seconds,
            when the response carried one (429/503), else None.
    """

    def __init__(self, status: int, payload: Dict[str, Any],
                 context: str,
                 retry_after_s: Optional[float] = None):
        self.status = status
        self.payload = payload
        self.retry_after_s = retry_after_s
        detail = payload.get("error", payload)
        if status == 0:
            message = f"{context}: {detail}"
        else:
            message = f"{context}: HTTP {status}: {detail}"
        super().__init__(message)


def _connection_error(method: str, url: str,
                      exc: BaseException) -> ServiceError:
    """Wrap a raw socket/OS error into a readable :class:`ServiceError`.

    The raw ``ConnectionRefusedError`` a CLI user hits when the daemon
    is down says ``[Errno 111] Connection refused`` and nothing else;
    this names the exception type, the URL that was attempted, and the
    likely fix, with the original exception chained as the cause.
    """
    detail = f"{type(exc).__name__}: {exc}"
    if isinstance(exc, ConnectionRefusedError):
        detail += " — is the daemon running? (start one: repro serve)"
    elif isinstance(exc, (socket.timeout, TimeoutError)):
        detail += " — the daemon did not answer in time"
    error = ServiceError(0, {"error": detail}, f"{method} {url}")
    error.__cause__ = exc
    return error


class ServiceClient:
    """Talk to a running sweep daemon.

    Args:
        base_url: Root URL, e.g. ``http://127.0.0.1:8737``.
        timeout_s: Per-request socket timeout.
        retries: Transport retries per request (connection failures
            and retryable statuses).  0 disables retrying.
        backoff_base_s: First-retry backoff; doubles per further
            retry, deterministically (no jitter — same schedule every
            run, like the sweep engine's own policy).
        backoff_max_s: Backoff ceiling; also caps how long a server
            ``Retry-After`` hint is honored, so a busy daemon cannot
            park a client for minutes.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0,
                 retries: int = 3, backoff_base_s: float = 0.2,
                 backoff_max_s: float = 5.0):
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got "
                f"{base_url!r}"
            )
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_s = timeout_s
        self.retry_policy = RetryPolicy(
            max_retries=max(0, retries),
            backoff_base_s=backoff_base_s,
            backoff_max_s=backoff_max_s,
        )

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- raw transport ---------------------------------------------------
    def _retry_delay(self, attempt: int,
                     retry_after_s: Optional[float]) -> float:
        """Backoff before retry ``attempt``: the policy's
        deterministic schedule, raised to the server's ``Retry-After``
        hint when one arrived (but never beyond the backoff
        ceiling)."""
        delay = self.retry_policy.delay_s(attempt)
        if retry_after_s is not None:
            delay = max(delay, min(retry_after_s,
                                   self.retry_policy.backoff_max_s))
        return delay

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ) -> Tuple[int, Dict[str, Any]]:
        """One logical request, with transparent transport retries.

        Retrying a submit is safe by construction: if the first
        attempt was actually accepted and only the response was lost,
        the retry coalesces onto the in-flight twin via its
        ``spec_key`` and shares the same computation.
        """
        attempt = 0
        while True:
            retry_after: Optional[float] = None
            try:
                status, payload, retry_after = self._request_once(
                    method, path, body)
            except ServiceError as exc:
                if (exc.status != 0
                        or attempt >= self.retry_policy.max_retries):
                    raise
            else:
                if (status not in RETRYABLE_STATUSES
                        or attempt >= self.retry_policy.max_retries):
                    if status in RETRYABLE_STATUSES:
                        # Out of retries: surface the hint to callers.
                        raise ServiceError(status, payload,
                                           f"{method} {path}",
                                           retry_after_s=retry_after)
                    return status, payload
            attempt += 1
            time.sleep(self._retry_delay(attempt, retry_after))

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None,
                      ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = {"Content-Type": "application/json",
                       "Connection": "close"}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after: Optional[float] = None
            raw_hint = response.getheader("Retry-After")
            if raw_hint is not None:
                try:
                    retry_after = float(raw_hint)
                except ValueError:
                    pass
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceError(
                    response.status,
                    {"error": f"non-JSON response body: {exc}"},
                    f"{method} {path}",
                )
            return response.status, decoded, retry_after
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise _connection_error(method, f"{self.base_url}{path}",
                                    exc)
        finally:
            conn.close()

    def _expect(self, method: str, path: str,
                ok: Tuple[int, ...] = (200,),
                body: Optional[Dict[str, Any]] = None,
                ) -> Dict[str, Any]:
        status, payload = self._request(method, path, body)
        if status not in ok:
            raise ServiceError(status, payload, f"{method} {path}")
        return payload

    # -- endpoints -------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """Daemon liveness payload (version, uptime, workers)."""
        return self._expect("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """Queue/worker/cache metrics snapshot."""
        return self._expect("GET", "/metrics")

    def metrics_prom(self) -> str:
        """The metrics registry as Prometheus exposition text."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request("GET", "/metrics?format=prom",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    payload = {"error": raw[:200].decode("latin-1")}
                raise ServiceError(response.status, payload,
                                   "GET /metrics?format=prom")
            return raw.decode("utf-8")
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                0, {"error": str(exc)},
                f"GET {self.base_url}/metrics?format=prom") from exc
        finally:
            conn.close()

    def trace(self, job_id: str) -> Dict[str, Any]:
        """Merged Chrome trace of one job's recorded spans.

        Raises:
            ServiceError: 404 until the job has run (a queued job has
                not written its trace bundle yet).
        """
        return self._expect("GET", f"/sweeps/{job_id}/trace")

    def submit(self, request: SweepRequest) -> JobRecord:
        """Submit a sweep; returns the queued job's record."""
        payload = self._expect("POST", "/sweeps", ok=(202,),
                               body=request.to_wire())
        return JobRecord.from_wire(payload)

    def jobs(self) -> List[JobRecord]:
        """All jobs the daemon knows, oldest first."""
        payload = self._expect("GET", "/sweeps")
        return [JobRecord.from_wire(r) for r in payload.get("jobs", ())]

    def status(self, job_id: str) -> Dict[str, Any]:
        """Job record plus journal-streamed per-cell progress."""
        return self._expect("GET", f"/sweeps/{job_id}")

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job (immediate while queued, cooperative while
        running)."""
        payload = self._expect("DELETE", f"/sweeps/{job_id}")
        return JobRecord.from_wire(payload)

    def result(self, job_id: str) -> SweepReport:
        """Fetch a finished job's sweep report.

        Raises:
            ServiceError: 409 while the job is still queued/running
                (or was cancelled before producing anything), 500 when
                the job failed at the engine level.
        """
        payload = self._expect("GET", f"/sweeps/{job_id}/result")
        payload.pop("id", None)
        payload.pop("state", None)
        return report_from_wire(payload)

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        Returns the final status payload (record + progress).

        Raises:
            TimeoutError: Still running after ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.status(job_id)
            if payload.get("state") in TERMINAL_STATES:
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload.get('state')!r} "
                    f"after {timeout_s:g} s"
                )
            time.sleep(poll_s)

    # -- api.sweep parity ------------------------------------------------
    def sweep(self, circuit: str, *, scale: float = 0.05,
              tp_percents: Optional[Tuple[float, ...]] = None,
              options: Optional[Dict[str, Any]] = None,
              jobs: int = 1, retries: int = 2,
              task_timeout_s: Optional[float] = None,
              name: Optional[str] = None,
              trace: bool = False,
              timeout_s: float = 600.0,
              poll_s: float = 0.2) -> ExperimentResult:
        """Run a sweep on the daemon with ``api.sweep`` semantics.

        Submits, waits, fetches, and applies the same failure
        contract: any cell that stayed failed raises
        :class:`SweepExecutionError`; otherwise the circuit's
        :class:`ExperimentResult` comes back, table builders intact.
        """
        record = self.submit(SweepRequest(
            circuit=circuit, scale=scale, tp_percents=tp_percents,
            options=dict(options or {}), jobs=jobs, retries=retries,
            task_timeout_s=task_timeout_s, name=name, trace=trace,
        ))
        final = self.wait(record.id, timeout_s=timeout_s, poll_s=poll_s)
        state = final.get("state")
        if state == JOB_FAILED:
            raise ServiceError(500, {"error": final.get("error")},
                               f"job {record.id}")
        if state == JOB_CANCELLED:
            raise ServiceError(409, {"error": "job was cancelled"},
                               f"job {record.id}")
        report = self.result(record.id)
        if report.failures:
            raise SweepExecutionError([
                (f.name, f.tp_percent,
                 f.exception or RuntimeError(f.error_message))
                for f in report.failures
            ])
        key = name if name is not None else circuit
        return report.results[key]
