"""HTTP client for the sweep service.

:class:`ServiceClient` is the only piece of code (besides the daemon)
that touches sockets — the CLI subcommands and the e2e tests all route
through it.  One ``http.client.HTTPConnection`` per request, matching
the server's ``Connection: close`` discipline; no sessions, no
keep-alive, no dependencies.

The headline API is :meth:`ServiceClient.sweep`: it mirrors the
contract of :func:`repro.api.sweep` — submit, wait, fetch, raise
:class:`~repro.core.executor.SweepExecutionError` if any cell stayed
failed, return the circuit's :class:`~repro.core.experiment.ExperimentResult`
— which is what makes the daemon and the in-process API verifiably
interchangeable (the service test suite asserts their canonical result
bytes are equal).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.core.executor import SweepExecutionError
from repro.core.experiment import ExperimentResult
from repro.core.resilience import SweepReport
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_FAILED,
    TERMINAL_STATES,
    JobRecord,
    SweepRequest,
    report_from_wire,
)


class ServiceError(RuntimeError):
    """The daemon answered with an error (HTTP status >= 400).

    Attributes:
        status: The HTTP status code (0 when the connection itself
            failed before a status arrived).
        payload: The decoded JSON error body (``{"error": ...}``).
    """

    def __init__(self, status: int, payload: Dict[str, Any],
                 context: str):
        self.status = status
        self.payload = payload
        detail = payload.get("error", payload)
        super().__init__(f"{context}: HTTP {status}: {detail}")


class ServiceClient:
    """Talk to a running sweep daemon.

    Args:
        base_url: Root URL, e.g. ``http://127.0.0.1:8737``.
        timeout_s: Per-request socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got "
                f"{base_url!r}"
            )
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_s = timeout_s

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- raw transport ---------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ) -> Tuple[int, Dict[str, Any]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = {"Content-Type": "application/json",
                       "Connection": "close"}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceError(
                    response.status,
                    {"error": f"non-JSON response body: {exc}"},
                    f"{method} {path}",
                )
            return response.status, decoded
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                0, {"error": str(exc)},
                f"{method} {self.base_url}{path}") from exc
        finally:
            conn.close()

    def _expect(self, method: str, path: str,
                ok: Tuple[int, ...] = (200,),
                body: Optional[Dict[str, Any]] = None,
                ) -> Dict[str, Any]:
        status, payload = self._request(method, path, body)
        if status not in ok:
            raise ServiceError(status, payload, f"{method} {path}")
        return payload

    # -- endpoints -------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """Daemon liveness payload (version, uptime, workers)."""
        return self._expect("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """Queue/worker/cache metrics snapshot."""
        return self._expect("GET", "/metrics")

    def metrics_prom(self) -> str:
        """The metrics registry as Prometheus exposition text."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request("GET", "/metrics?format=prom",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    payload = {"error": raw[:200].decode("latin-1")}
                raise ServiceError(response.status, payload,
                                   "GET /metrics?format=prom")
            return raw.decode("utf-8")
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                0, {"error": str(exc)},
                f"GET {self.base_url}/metrics?format=prom") from exc
        finally:
            conn.close()

    def trace(self, job_id: str) -> Dict[str, Any]:
        """Merged Chrome trace of one job's recorded spans.

        Raises:
            ServiceError: 404 until the job has run (a queued job has
                not written its trace bundle yet).
        """
        return self._expect("GET", f"/sweeps/{job_id}/trace")

    def submit(self, request: SweepRequest) -> JobRecord:
        """Submit a sweep; returns the queued job's record."""
        payload = self._expect("POST", "/sweeps", ok=(202,),
                               body=request.to_wire())
        return JobRecord.from_wire(payload)

    def jobs(self) -> List[JobRecord]:
        """All jobs the daemon knows, oldest first."""
        payload = self._expect("GET", "/sweeps")
        return [JobRecord.from_wire(r) for r in payload.get("jobs", ())]

    def status(self, job_id: str) -> Dict[str, Any]:
        """Job record plus journal-streamed per-cell progress."""
        return self._expect("GET", f"/sweeps/{job_id}")

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job (immediate while queued, cooperative while
        running)."""
        payload = self._expect("DELETE", f"/sweeps/{job_id}")
        return JobRecord.from_wire(payload)

    def result(self, job_id: str) -> SweepReport:
        """Fetch a finished job's sweep report.

        Raises:
            ServiceError: 409 while the job is still queued/running
                (or was cancelled before producing anything), 500 when
                the job failed at the engine level.
        """
        payload = self._expect("GET", f"/sweeps/{job_id}/result")
        payload.pop("id", None)
        payload.pop("state", None)
        return report_from_wire(payload)

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        Returns the final status payload (record + progress).

        Raises:
            TimeoutError: Still running after ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.status(job_id)
            if payload.get("state") in TERMINAL_STATES:
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload.get('state')!r} "
                    f"after {timeout_s:g} s"
                )
            time.sleep(poll_s)

    # -- api.sweep parity ------------------------------------------------
    def sweep(self, circuit: str, *, scale: float = 0.05,
              tp_percents: Optional[Tuple[float, ...]] = None,
              options: Optional[Dict[str, Any]] = None,
              jobs: int = 1, retries: int = 2,
              task_timeout_s: Optional[float] = None,
              name: Optional[str] = None,
              trace: bool = False,
              timeout_s: float = 600.0,
              poll_s: float = 0.2) -> ExperimentResult:
        """Run a sweep on the daemon with ``api.sweep`` semantics.

        Submits, waits, fetches, and applies the same failure
        contract: any cell that stayed failed raises
        :class:`SweepExecutionError`; otherwise the circuit's
        :class:`ExperimentResult` comes back, table builders intact.
        """
        record = self.submit(SweepRequest(
            circuit=circuit, scale=scale, tp_percents=tp_percents,
            options=dict(options or {}), jobs=jobs, retries=retries,
            task_timeout_s=task_timeout_s, name=name, trace=trace,
        ))
        final = self.wait(record.id, timeout_s=timeout_s, poll_s=poll_s)
        state = final.get("state")
        if state == JOB_FAILED:
            raise ServiceError(500, {"error": final.get("error")},
                               f"job {record.id}")
        if state == JOB_CANCELLED:
            raise ServiceError(409, {"error": "job was cancelled"},
                               f"job {record.id}")
        report = self.result(record.id)
        if report.failures:
            raise SweepExecutionError([
                (f.name, f.tp_percent,
                 f.exception or RuntimeError(f.error_message))
                for f in report.failures
            ])
        key = name if name is not None else circuit
        return report.results[key]
