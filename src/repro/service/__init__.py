"""Sweep-serving daemon: an async job queue over HTTP with a shared
artifact cache.

``repro serve`` turns the fault-tolerant sweep engine into a small
multi-tenant service: tenants POST sweep specs, poll journal-backed
progress, and fetch results that are byte-identical to what
:func:`repro.api.sweep` computes in-process.  Identical concurrent
submissions coalesce onto one computation through the shared
content-addressed :class:`~repro.core.executor.ResultCache`, which
runs size-capped with LRU eviction so the daemon can live forever.

Layering (each module only looks down):

* :mod:`repro.service.protocol` — versioned JSON wire codecs, the
  canonical-result digest, journal-to-progress folding.
* :mod:`repro.service.store` — the durable job store: a fsync'd
  append-only JSONL journal of job-state transitions that lets a
  restarted daemon re-adopt finished jobs and resume interrupted ones.
* :mod:`repro.service.jobs` — the queue: worker threads, coalescing,
  cooperative cancellation, admission control, graceful drain,
  crash recovery, metrics counters.
* :mod:`repro.service.server` — stdlib asyncio HTTP daemon and the
  in-process :class:`~repro.service.server.ServiceThread` harness.
* :mod:`repro.service.client` — the HTTP client the CLI and tests
  use; its :meth:`~repro.service.client.ServiceClient.sweep` mirrors
  ``api.sweep``'s contract over the wire.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JobManager,
    QueueFullError,
    ServiceDrainingError,
    UnknownJobError,
)
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_INTERRUPTED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    JobRecord,
    SweepRequest,
    WireError,
    canonical_result_bytes,
    report_from_wire,
    report_to_wire,
)
from repro.service.server import (
    DEFAULT_PORT,
    ServiceConfig,
    ServiceThread,
    SweepService,
    run_daemon,
)
from repro.service.store import JobStore, StoreReplay

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_INTERRUPTED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "SweepRequest",
    "JobRecord",
    "WireError",
    "JobStore",
    "StoreReplay",
    "JobManager",
    "UnknownJobError",
    "QueueFullError",
    "ServiceDrainingError",
    "ServiceConfig",
    "SweepService",
    "ServiceThread",
    "run_daemon",
    "ServiceClient",
    "ServiceError",
    "canonical_result_bytes",
    "report_to_wire",
    "report_from_wire",
]
