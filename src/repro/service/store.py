"""Durable job store: the daemon's crash-safe job-state journal.

A :class:`~repro.service.jobs.JobManager` keeps its jobs in memory —
fast, but a daemon crash would orphan every queued and running job
even though their sweep journals and cache artifacts survive on disk.
:class:`JobStore` closes that gap with the same discipline the sweep
journal uses one level down: an append-only JSONL file under
``<cache_dir>/jobs/`` where every job-state transition is one fsync'd
line carrying the full :class:`~repro.service.protocol.JobRecord`
wire form (and, for ``done`` jobs, the complete report payload, so
``/result`` works across a restart without recomputing anything).

Replay (:func:`JobStore.replay`) is torn-line tolerant the same way
the journal reader is — skip and *count*, never stop: after a
``kill -9`` the torn frame sits mid-file once the restarted daemon
appends behind it, so stopping at the first tear would discard every
post-restart transition.  Within one job the *last* intact record
wins; jobs come back in first-submission order so a restarted
daemon's ``/sweeps`` listing matches the pre-crash one.

The store is a journal, not a database: it only ever appends, one
line per transition, so replay cost grows with daemon history.  That
is the right trade for a job queue whose records are small and whose
consistency story must survive ``kill -9`` — compaction can ride a
later PR without changing the format.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.service.protocol import JobRecord, WireError

#: Bump on any incompatible change to the record-line layout.
STORE_VERSION = 1

#: File name of the job-state journal inside the store directory.
STORE_FILENAME = "store.jsonl"


@dataclass
class StoreReplay:
    """What a replayed job store says about past jobs.

    Attributes:
        records: The latest intact :class:`JobRecord` per job id, in
            first-submission order (the order the lines first mention
            each id).
        reports: Wire-encoded sweep reports by job id, from the latest
            record line that carried one (``done`` transitions do).
        torn_lines: Lines the replay had to skip — a torn trailing
            frame after a crash, or mid-file damage.  Non-zero is
            expected exactly once per ``kill -9``; anything more is
            real corruption worth alerting on.
    """

    records: List[JobRecord] = field(default_factory=list)
    reports: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    torn_lines: int = 0


class JobStore:
    """Append-only fsync'd journal of job-state transitions.

    One writer (the daemon) appends; :meth:`replay` reads.  Every
    :meth:`record_transition` is durable before it returns, so the
    store never claims less than what actually happened — after a
    crash the worst case is a *final* transition that tore, which
    replay counts and skips, leaving the job in its previous state
    (``running`` → re-adopted as interrupted and resumed; resumption
    is cheap because the sweep's own journal + cache already hold the
    finished cells).
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / STORE_FILENAME
        self._handle = open(self.path, "a", encoding="utf-8")
        self._isolate_torn_tail()

    def _isolate_torn_tail(self) -> None:
        """Terminate a torn trailing line before the first append.

        Without this, the first post-restart transition would glue
        onto the half-line a ``kill -9`` left behind, and replay would
        lose both.  One newline confines the damage to exactly the
        torn frame.
        """
        try:
            size = self.path.stat().st_size
            if size == 0:
                return
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except OSError:  # pragma: no cover - unreadable store
            return
        if last != b"\n":
            self._handle.write("\n")
            self._handle.flush()

    def record_transition(self, record: JobRecord,  # lint: durable
                          report: Optional[Dict[str, Any]] = None
                          ) -> None:
        """Append one job-state transition; durable before return.

        ``report`` is the wire-encoded sweep report
        (:func:`~repro.service.protocol.report_to_wire`) and travels
        on ``done`` transitions so a restarted daemon can serve
        ``/result`` for jobs that finished in a previous life.
        """
        line = {
            "v": STORE_VERSION,
            "ts": time.time(),
            "record": record.to_wire(),
        }
        if report is not None:
            line["report"] = report
        self._handle.write(
            json.dumps(line, sort_keys=True, separators=(",", ":"))
            + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ----------------------------------------------------------
    @classmethod
    def replay(cls, root) -> StoreReplay:
        """Fold the store's history into its latest per-job state.

        Never raises on damaged content: unparseable lines, foreign
        JSON shapes, unknown store versions and undecodable records
        all count as torn and are skipped — a restarting daemon must
        come up with whatever intact history exists, not crash on the
        byte that crashed its predecessor.
        """
        path = Path(root) / STORE_FILENAME
        replay = StoreReplay()
        if not path.exists():
            return replay
        latest: Dict[str, JobRecord] = {}
        order: List[str] = []
        with open(path, "r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except json.JSONDecodeError:
                    replay.torn_lines += 1
                    continue
                if (not isinstance(line, dict)
                        or line.get("v") != STORE_VERSION
                        or not isinstance(line.get("record"), dict)):
                    replay.torn_lines += 1
                    continue
                try:
                    record = JobRecord.from_wire(line["record"])
                except WireError:
                    replay.torn_lines += 1
                    continue
                if record.id not in latest:
                    order.append(record.id)
                latest[record.id] = record
                report = line.get("report")
                if isinstance(report, dict):
                    replay.reports[record.id] = report
        replay.records = [latest[jid] for jid in order]
        return replay
