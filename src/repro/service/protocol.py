"""Wire protocol of the sweep service: versioned JSON codecs.

Everything that crosses the daemon's HTTP boundary is encoded here and
nowhere else — the server, the client and the CLI all speak through
these functions, so the two sides cannot drift apart.  Three groups:

* **Requests** — :class:`SweepRequest` is the submit payload: a
  registered circuit name plus the same knobs :func:`repro.api.sweep`
  takes.  Its :meth:`~SweepRequest.spec_key` is a content hash of the
  canonical encoding; the job manager uses it to coalesce identical
  submissions onto one computation (tenants sharing the artifact
  cache).
* **Results** — :func:`summary_to_wire` / :func:`report_to_wire` (and
  their ``from_wire`` inverses) carry
  :class:`~repro.core.executor.FlowSummary` cells and whole
  :class:`~repro.core.resilience.SweepReport` objects as plain JSON.
  Traces never cross the wire (a span tree is a debugging artifact,
  not a result); everything else round-trips losslessly.
* **Canonical digests** — :func:`canonical_result_bytes` reduces a
  sweep result to its *deterministic* content (Table 1/2/3 quantities;
  no timings, PIDs or cache provenance) as sorted-key JSON bytes.  Two
  results are interchangeable iff their canonical bytes are equal —
  the contract the service's "byte-identical to ``api.sweep``" test
  enforces.  It deliberately reads results through the duck-typed
  accessor surface (``test_metrics()`` / ``area_metrics()`` / ``sta``)
  so a full in-process :class:`~repro.core.flow.FlowResult` and a
  wire-reconstructed :class:`FlowSummary` digest identically.

Progress reporting decodes the PR-4 sweep journal:
:func:`progress_from_journal` folds journal events into per-cell
states.  The journal reader tolerates torn trailing frames (a crashed
or mid-write journal), so a truncated frame surfaces as a cell still
in progress — never as a decode crash.

Decoding is strict: unknown keys and malformed payloads raise
:class:`WireError`, which the server maps to HTTP 400.  ``version``
mismatches raise too — fail loudly, not with silently misread fields.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.chaos import FaultPlan
from repro.core.executor import FlowSummary, PathSummary, StaSummary
from repro.core.experiment import ExperimentResult
from repro.core.metrics import TestDataMetrics
from repro.core.resilience import SweepReport, TaskFailure

#: Bump on any incompatible change to the wire encodings below.
PROTOCOL_VERSION = 1

#: Job lifecycle states, in the order a healthy job visits them.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
#: A daemon death caught this job queued or running; the restarted
#: daemon re-queues it through the executor's resume path, so
#: ``interrupted`` is *not* terminal — it is "queued, with history".
JOB_INTERRUPTED = "interrupted"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED,
              JOB_CANCELLED, JOB_INTERRUPTED)
#: States a job never leaves.
TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED, JOB_CANCELLED})

#: Per-cell progress states derived from journal events.
CELL_STATES = ("pending", "running", "done", "failed", "aborted")


class WireError(ValueError):
    """A payload failed to decode; the server answers HTTP 400."""


def _pct_key(pct: Any) -> str:
    """JSON object key for a TP level.  ``repr(float)`` round-trips
    every float exactly (``%g`` would truncate to 6 significant
    digits), and normalising through ``float()`` first makes an int
    level (``2``) and its float twin (``2.0``) key identically."""
    return repr(float(pct))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireError(message)


def _reject_unknown(data: Mapping[str, Any], known: Sequence[str],
                    what: str) -> None:
    unknown = sorted(set(data) - set(known))
    _require(not unknown,
             f"unknown {what} key(s): {', '.join(unknown)}; "
             f"expected a subset of {', '.join(sorted(known))}")


def _check_version(data: Mapping[str, Any], what: str) -> None:
    version = data.get("version", PROTOCOL_VERSION)
    _require(version == PROTOCOL_VERSION,
             f"{what} speaks protocol version {version!r}; this build "
             f"speaks {PROTOCOL_VERSION}")


# ----------------------------------------------------------------------
# Submit requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRequest:
    """One tenant's sweep submission.

    Mirrors the :func:`repro.api.sweep` keyword surface, restricted to
    what can travel as JSON: the circuit is a *registered* benchmark
    name (arbitrary circuit factories cannot cross an HTTP boundary),
    and ``options`` holds plain-data :class:`~repro.core.flow.FlowConfig`
    overrides exactly as ``FlowConfig.replace`` accepts them.

    Attributes:
        circuit: Registered benchmark name (see ``repro.api.CIRCUITS``).
        scale: Circuit size fraction.
        tp_percents: TP levels to sweep; None means the paper's ladder.
        options: FlowConfig overrides (nested dicts allowed).  This is
            also how engine-shaped knobs travel — e.g.
            ``{"placer": "sa"}`` selects the simulated-annealing
            placement engine — and since ``options`` is part of
            :meth:`spec_key`, submissions differing only in engine
            never coalesce and never share cache entries.
        jobs: Worker processes *within* this job's sweep.
        retries: Retry budget per cell.
        task_timeout_s: Watchdog per-cell timeout (needs ``jobs > 1``).
        name: Experiment label (defaults to the circuit name).
        chaos: Scripted fault plan (soak testing only; needs
            ``jobs > 1`` for ``kill``/``hang`` faults — an inline kill
            would take the daemon down with it).
        trace: Record per-cell span trees during the sweep; they land
            in the daemon's trace store and come back merged via
            ``GET /sweeps/<id>/trace``.  Observability only — never
            part of the cache key or the canonical result, so it is
            deliberately *excluded* from :meth:`spec_key` (a traced
            and an untraced submission of the same sweep coalesce).
        deadline_s: Give up if the job has not *finished* this many
            seconds after submission: an overdue job is cancelled
            (while queued, or cooperatively mid-run), because a tenant
            that set a deadline has stopped waiting.  QoS only — like
            ``trace`` it is excluded from :meth:`spec_key`, so a
            deadlined and an undeadlined submission of the same sweep
            still coalesce and share cache entries.
    """

    circuit: str
    scale: float = 0.05
    tp_percents: Optional[Tuple[float, ...]] = None
    options: Dict[str, Any] = field(default_factory=dict)
    jobs: int = 1
    retries: int = 2
    task_timeout_s: Optional[float] = None
    name: Optional[str] = None
    chaos: Optional[FaultPlan] = None
    trace: bool = False
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.tp_percents is not None and not isinstance(
                self.tp_percents, tuple):
            object.__setattr__(self, "tp_percents",
                               tuple(self.tp_percents))

    _FIELDS = ("circuit", "scale", "tp_percents", "options", "jobs",
               "retries", "task_timeout_s", "name", "chaos", "trace",
               "deadline_s")

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_wire`."""
        return {
            "version": PROTOCOL_VERSION,
            "circuit": self.circuit,
            "scale": self.scale,
            "tp_percents": (list(self.tp_percents)
                            if self.tp_percents is not None else None),
            "options": dict(self.options),
            "jobs": self.jobs,
            "retries": self.retries,
            "task_timeout_s": self.task_timeout_s,
            "name": self.name,
            "chaos": self.chaos.to_dict() if self.chaos else None,
            "trace": self.trace,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "SweepRequest":
        """Decode and validate a submit payload."""
        _require(isinstance(data, Mapping), "request body must be a "
                 "JSON object")
        _check_version(data, "request")
        payload = {k: v for k, v in data.items() if k != "version"}
        _reject_unknown(payload, cls._FIELDS, "request")
        _require(isinstance(payload.get("circuit"), str)
                 and payload["circuit"] != "",
                 "request needs a non-empty 'circuit' name")
        tp = payload.get("tp_percents")
        if tp is not None:
            _require(isinstance(tp, (list, tuple))
                     and all(isinstance(p, (int, float))
                             and not isinstance(p, bool) for p in tp),
                     "'tp_percents' must be a list of numbers")
            _require(all(p >= 0 for p in tp),
                     "'tp_percents' must be non-negative")
            _require(len(set(tp)) == len(tp),
                     "'tp_percents' must not repeat a level")
            payload["tp_percents"] = tuple(float(p) for p in tp)
        options = payload.get("options") or {}
        _require(isinstance(options, Mapping),
                 "'options' must be a JSON object of FlowConfig "
                 "overrides")
        payload["options"] = dict(options)
        jobs = payload.get("jobs", 1)
        _require(isinstance(jobs, int) and jobs >= 1,
                 "'jobs' must be a positive integer")
        retries = payload.get("retries", 2)
        _require(isinstance(retries, int) and retries >= 0,
                 "'retries' must be a non-negative integer")
        trace = payload.get("trace", False)
        _require(isinstance(trace, bool), "'trace' must be a boolean")
        deadline = payload.get("deadline_s")
        if deadline is not None:
            _require(isinstance(deadline, (int, float))
                     and not isinstance(deadline, bool)
                     and deadline > 0,
                     "'deadline_s' must be a positive number of "
                     "seconds (or null)")
            payload["deadline_s"] = float(deadline)
        chaos = payload.get("chaos")
        if chaos is not None:
            try:
                payload["chaos"] = FaultPlan.from_dict(chaos)
            except (TypeError, ValueError) as exc:
                raise WireError(f"bad 'chaos' plan: {exc}") from exc
        try:
            return cls(**payload)
        except TypeError as exc:
            raise WireError(f"bad request: {exc}") from exc

    def spec_key(self) -> str:
        """Content hash of the canonical request: equal requests (any
        field order) hash equally, so the job manager can coalesce
        identical submissions from different tenants.  Observability
        and QoS knobs (``trace``, ``deadline_s``) are dropped first —
        they do not change what is computed, so they must not defeat
        coalescing."""
        wire = self.to_wire()
        wire.pop("trace", None)
        wire.pop("deadline_s", None)
        canon = json.dumps(wire, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# FlowSummary and SweepReport codecs
# ----------------------------------------------------------------------
def _sta_to_wire(sta: Optional[StaSummary]) -> Optional[Dict[str, Any]]:
    if sta is None:
        return None
    return {
        "paths": {
            domain: [dataclasses.asdict(p) for p in paths]
            for domain, paths in sta.paths.items()
        },
        "slow_nodes": list(sta.slow_nodes),
        "hold_violations": sta.hold_violations,
    }


def _sta_from_wire(data: Optional[Mapping[str, Any]]
                   ) -> Optional[StaSummary]:
    if data is None:
        return None
    try:
        return StaSummary(
            paths={
                domain: tuple(PathSummary(**p) for p in paths)
                for domain, paths in data["paths"].items()
            },
            slow_nodes=tuple(data.get("slow_nodes", ())),
            hold_violations=int(data.get("hold_violations", 0)),
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise WireError(f"bad STA digest: {exc}") from exc


def summary_to_wire(summary: FlowSummary) -> Dict[str, Any]:
    """Encode one sweep cell.  The trace (if any) is dropped: span
    trees are observability artifacts, not results, and they do not
    survive JSON."""
    return {
        "tp_percent": summary.tp_percent,
        "n_test_points": summary.n_test_points,
        "test": (dataclasses.asdict(summary.test)
                 if summary.test is not None else None),
        "area": (dict(summary.area)
                 if summary.area is not None else None),
        "sta": _sta_to_wire(summary.sta),
        "stage_seconds": dict(summary.stage_seconds),
        "cached_stage_seconds": dict(summary.cached_stage_seconds),
        "log": list(summary.log),
        "cache_key": summary.cache_key,
        "from_cache": summary.from_cache,
        "worker_pid": summary.worker_pid,
    }


def summary_from_wire(data: Mapping[str, Any]) -> FlowSummary:
    """Decode one sweep cell back into a :class:`FlowSummary`."""
    _require(isinstance(data, Mapping), "cell must be a JSON object")
    _reject_unknown(data, ("tp_percent", "n_test_points", "test",
                           "area", "sta", "stage_seconds",
                           "cached_stage_seconds", "log", "cache_key",
                           "from_cache", "worker_pid"), "cell")
    try:
        test = data.get("test")
        return FlowSummary(
            tp_percent=float(data["tp_percent"]),
            n_test_points=int(data["n_test_points"]),
            test=TestDataMetrics(**test) if test is not None else None,
            area=(dict(data["area"])
                  if data.get("area") is not None else None),
            sta=_sta_from_wire(data.get("sta")),
            stage_seconds=dict(data.get("stage_seconds", {})),
            cached_stage_seconds=dict(
                data.get("cached_stage_seconds", {})),
            log=tuple(data.get("log", ())),
            cache_key=str(data.get("cache_key", "")),
            from_cache=bool(data.get("from_cache", False)),
            worker_pid=int(data.get("worker_pid", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, WireError):
            raise
        raise WireError(f"bad cell: {exc}") from exc


def failure_to_wire(failure: TaskFailure) -> Dict[str, Any]:
    """Encode one permanently failed cell (exception object dropped)."""
    return {
        "name": failure.name,
        "tp_percent": failure.tp_percent,
        "attempts": failure.attempts,
        "error_type": failure.error_type,
        "error_message": failure.error_message,
        "chain": list(failure.chain),
        "cache_key": failure.cache_key,
        "retryable": failure.retryable,
    }


def failure_from_wire(data: Mapping[str, Any]) -> TaskFailure:
    """Decode a failure record."""
    _require(isinstance(data, Mapping), "failure must be a JSON object")
    _reject_unknown(data, ("name", "tp_percent", "attempts",
                           "error_type", "error_message", "chain",
                           "cache_key", "retryable"), "failure")
    try:
        return TaskFailure(
            name=str(data["name"]),
            tp_percent=float(data["tp_percent"]),
            attempts=int(data["attempts"]),
            error_type=str(data["error_type"]),
            error_message=str(data["error_message"]),
            chain=tuple(data.get("chain", ())),
            cache_key=str(data.get("cache_key", "")),
            retryable=bool(data.get("retryable", False)),
        )
    except KeyError as exc:
        raise WireError(f"failure record missing {exc}") from exc


def report_to_wire(report: SweepReport) -> Dict[str, Any]:
    """Encode a whole sweep outcome (the ``/result`` payload)."""
    return {
        "version": PROTOCOL_VERSION,
        "results": {
            name: {
                "name": result.name,
                "runs": {
                    _pct_key(pct): summary_to_wire(summary)
                    for pct, summary in result.runs.items()
                },
            }
            for name, result in report.results.items()
        },
        "failures": [failure_to_wire(f) for f in report.failures],
        "retries": report.retries,
        "timeouts": report.timeouts,
        "worker_crashes": report.worker_crashes,
        "journal_path": report.journal_path,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "cache_evictions": report.cache_evictions,
        "cancelled": report.cancelled,
        "cache_write_failures": report.cache_write_failures,
        "started_at": report.started_at,
        "finished_at": report.finished_at,
        "started_mono": report.started_mono,
        "finished_mono": report.finished_mono,
    }


def report_from_wire(data: Mapping[str, Any]) -> SweepReport:
    """Decode a ``/result`` payload back into a :class:`SweepReport`
    whose per-circuit results quack exactly like ``api.sweep``'s
    (``table1_rows()`` etc. work unchanged)."""
    _require(isinstance(data, Mapping), "report must be a JSON object")
    _check_version(data, "report")
    try:
        results = {
            name: ExperimentResult(
                name=entry["name"],
                runs={
                    float(pct): summary_from_wire(cell)
                    for pct, cell in entry["runs"].items()
                },
            )
            for name, entry in data.get("results", {}).items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, WireError):
            raise
        raise WireError(f"bad report: {exc}") from exc
    return SweepReport(
        results=results,
        failures=tuple(failure_from_wire(f)
                       for f in data.get("failures", ())),
        retries=int(data.get("retries", 0)),
        timeouts=int(data.get("timeouts", 0)),
        worker_crashes=int(data.get("worker_crashes", 0)),
        journal_path=data.get("journal_path"),
        cache_hits=int(data.get("cache_hits", 0)),
        cache_misses=int(data.get("cache_misses", 0)),
        cache_evictions=int(data.get("cache_evictions", 0)),
        cancelled=bool(data.get("cancelled", False)),
        cache_write_failures=int(data.get("cache_write_failures", 0)),
        started_at=float(data.get("started_at", 0.0)),
        finished_at=float(data.get("finished_at", 0.0)),
        started_mono=float(data.get("started_mono", 0.0)),
        finished_mono=float(data.get("finished_mono", 0.0)),
    )


# ----------------------------------------------------------------------
# Canonical digests ("byte-identical" contract)
# ----------------------------------------------------------------------
def canonical_summary(run: Any) -> Dict[str, Any]:
    """The deterministic content of one sweep cell.

    Reads through the accessor surface shared by
    :class:`~repro.core.flow.FlowResult` and :class:`FlowSummary`
    (``test_metrics()``, ``area_metrics()``, ``sta``,
    ``n_test_points``), and includes *only* input-determined
    quantities — no wall-clock timings, PIDs, logs, traces or cache
    provenance.  Equal canonical forms mean the runs are
    interchangeable as results.
    """
    try:
        test = dataclasses.asdict(run.test_metrics())
    except ValueError:
        test = None
    try:
        area = dict(run.area_metrics())
    except ValueError:
        area = None
    sta = None
    if run.sta is not None:
        sta = {
            "paths": {
                domain: [
                    {
                        "domain": p.domain,
                        "endpoint": p.endpoint,
                        "startpoint": p.startpoint,
                        "t_wires_ps": p.t_wires_ps,
                        "t_intrinsic_ps": p.t_intrinsic_ps,
                        "t_load_dep_ps": p.t_load_dep_ps,
                        "t_setup_ps": p.t_setup_ps,
                        "t_skew_ps": p.t_skew_ps,
                        "total_ps": p.total_ps,
                        "slack_ps": p.slack_ps,
                        "n_test_points": p.n_test_points,
                    }
                    for p in paths
                ]
                for domain, paths in run.sta.paths.items()
            },
            "slow_nodes": sorted(run.sta.slow_nodes),
            "hold_violations": run.sta.hold_violations,
        }
    return {
        "n_test_points": run.n_test_points,
        "test": test,
        "area": area,
        "sta": sta,
    }


def canonical_result_bytes(result: Any) -> bytes:
    """Sorted-key JSON bytes of one circuit's deterministic sweep
    content.  ``result`` is anything with ``name`` and a ``runs``
    mapping of TP level to cell — an
    :class:`~repro.core.experiment.ExperimentResult` from the serial
    path, the executor, or a wire-decoded report alike."""
    payload = {
        "name": result.name,
        "runs": {
            _pct_key(pct): canonical_summary(run)
            for pct, run in result.runs.items()
        },
    }
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ----------------------------------------------------------------------
# Job records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobRecord:
    """Lifecycle snapshot of one submitted sweep job.

    Attributes:
        id: Daemon-assigned job identifier.
        state: One of :data:`JOB_STATES`.
        request: The submission this job executes.
        submitted_at: Unix time of acceptance.
        started_at: Unix time execution began (None while queued).
        finished_at: Unix time the job reached a terminal state.
        error: Message for :data:`JOB_FAILED` jobs (an engine-level
            crash; *cell*-level failures live in the report instead).
        coalesced_with: Id of the identical in-flight job this one was
            queued behind (shared-cache deduplication), or None.
    """

    id: str
    state: str
    request: SweepRequest
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    coalesced_with: Optional[str] = None

    def __post_init__(self):
        if self.state not in JOB_STATES:
            raise WireError(
                f"unknown job state {self.state!r}; expected one of "
                + ", ".join(JOB_STATES)
            )

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready form; inverse of :meth:`from_wire`."""
        return {
            "version": PROTOCOL_VERSION,
            "id": self.id,
            "state": self.state,
            "request": self.request.to_wire(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "coalesced_with": self.coalesced_with,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "JobRecord":
        """Decode a job record."""
        _require(isinstance(data, Mapping),
                 "job record must be a JSON object")
        _check_version(data, "job record")
        known = ("id", "state", "request", "submitted_at",
                 "started_at", "finished_at", "error",
                 "coalesced_with")
        payload = {k: v for k, v in data.items() if k != "version"}
        _reject_unknown(payload, known, "job record")
        try:
            return cls(
                id=str(payload["id"]),
                state=str(payload["state"]),
                request=SweepRequest.from_wire(payload["request"]),
                submitted_at=float(payload["submitted_at"]),
                started_at=payload.get("started_at"),
                finished_at=payload.get("finished_at"),
                error=payload.get("error"),
                coalesced_with=payload.get("coalesced_with"),
            )
        except KeyError as exc:
            raise WireError(f"job record missing {exc}") from exc


# ----------------------------------------------------------------------
# Journal-backed progress
# ----------------------------------------------------------------------
def progress_from_journal(events: Sequence[Mapping[str, Any]],
                          torn_lines: int = 0) -> Dict[str, Any]:
    """Fold a sweep journal into per-cell progress.

    The plan comes from the ``sweep_start`` event; each cell then
    walks pending → running → done/failed/aborted as its lifecycle
    events appear.  The journal reader skips torn frames, so after a
    crash (or mid-write read) a cell whose ``task_done`` did not land
    completely simply *stays* running/pending — progress can
    under-report, never crash or over-report.  Pass the reader's torn
    count (:func:`repro.core.resilience.read_journal_stats`) as
    ``torn_lines`` to surface crash damage instead of hiding it.

    Returns a dict with ``total``/``done``/``failed``/``running``/
    ``pending`` counts, the per-cell list, ``finished`` (True once a
    ``sweep_end`` event landed), and ``torn_lines`` (journal lines the
    reader had to skip — non-zero after a crash).
    """
    cells: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    finished = False
    for event in events:
        kind = event.get("event")
        if kind == "sweep_start":
            for planned in event.get("cells", ()):
                if not isinstance(planned, Mapping):
                    continue
                key = str(planned.get("key", ""))
                if not key or key in cells:
                    continue
                cells[key] = {
                    "name": planned.get("name"),
                    "tp_percent": planned.get("tp_percent"),
                    "state": "pending",
                    "attempts": 0,
                }
                order.append(key)
            continue
        if kind == "sweep_end":
            finished = True
            continue
        key = event.get("key")
        if not key:
            continue
        cell = cells.get(key)
        if cell is None:
            # Tolerant of journals whose sweep_start frame tore: the
            # cell materialises from its first lifecycle event.
            cell = cells[key] = {
                "name": event.get("name"),
                "tp_percent": event.get("tp_percent"),
                "state": "pending",
                "attempts": 0,
            }
            order.append(key)
        if kind == "task_start":
            cell["state"] = "running"
            cell["attempts"] = max(cell["attempts"],
                                   int(event.get("attempt", 0)) + 1)
        elif kind in ("task_done", "task_resumed", "task_cached"):
            cell["state"] = "done"
        elif kind == "task_exhausted":
            cell["state"] = "failed"
        elif kind == "task_aborted":
            cell["state"] = "aborted"
        # task_failed with a retry pending keeps the cell "running".
    counts = {state: 0 for state in CELL_STATES}
    for key in order:
        counts[cells[key]["state"]] += 1
    return {
        "total": len(order),
        "done": counts["done"],
        "failed": counts["failed"] + counts["aborted"],
        "running": counts["running"],
        "pending": counts["pending"],
        "finished": finished,
        "torn_lines": int(torn_lines),
        "cells": [dict(cells[key], key=key) for key in order],
    }
