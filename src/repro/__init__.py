"""repro: a pure-Python reproduction of "Impact of Test Point Insertion
on Silicon Area and Timing during Layout" (Vranken, Sapei, Wunderlich;
DATE 2004).

The package implements the complete experimental stack of the paper:

* a gate-level netlist model and 130 nm-class standard-cell library;
* testability analysis (SCOAP, COP, fanout-free regions);
* iterative test-point insertion with the TSFF of Fig. 1;
* full-scan insertion, layout-driven scan-chain reordering, and
  compact deterministic ATPG (PODEM, dynamic + static compaction);
* row-based layout generation (floorplan, analytic placement, ECO,
  clock-tree synthesis, filler insertion, congestion-aware routing);
* RC extraction and static timing analysis with the paper's eq. (3)
  path decomposition;
* the experiment drivers that regenerate Tables 1-3 and Figure 3.

Quick start::

    import repro

    result = repro.run("s38417", scale=0.1, tp_percent=1.0)
    print(result.test_metrics())

The supported programmatic surface is :mod:`repro.api` (re-exported
here); subpackage internals may change between releases.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: The supported top-level surface; everything else is internal.
__all__ = [
    "CIRCUITS",
    "FlowConfig",
    "FlowResult",
    "PLACERS",
    "api",
    "load_circuit",
    "run",
    "sweep",
    "sweep_report",
    "__version__",
]

#: Lazily-resolved re-exports: attribute name -> home module.  PEP 562
#: keeps ``import repro`` light (``repro.obs`` is imported during the
#: flow's own startup, so an eager facade import would be circular).
_EXPORTS = {
    "CIRCUITS": "repro.api",
    "PLACERS": "repro.api",
    "load_circuit": "repro.api",
    "run": "repro.api",
    "sweep": "repro.api",
    "sweep_report": "repro.api",
    "FlowConfig": "repro.core.flow",
    "FlowResult": "repro.core.flow",
}

if TYPE_CHECKING:  # pragma: no cover - typing-only eager imports
    from repro import api
    from repro.api import CIRCUITS, load_circuit, run, sweep, sweep_report
    from repro.core.flow import FlowConfig, FlowResult


def __getattr__(name: str):
    """PEP 562 lazy resolution of the public facade."""
    import importlib

    if name == "api":
        return importlib.import_module("repro.api")
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(home), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    """Advertise the lazy facade names alongside the real globals."""
    return sorted(set(globals()) | set(__all__))
