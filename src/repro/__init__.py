"""repro: a pure-Python reproduction of "Impact of Test Point Insertion
on Silicon Area and Timing during Layout" (Vranken, Sapei, Wunderlich;
DATE 2004).

The package implements the complete experimental stack of the paper:

* a gate-level netlist model and 130 nm-class standard-cell library;
* testability analysis (SCOAP, COP, fanout-free regions);
* iterative test-point insertion with the TSFF of Fig. 1;
* full-scan insertion, layout-driven scan-chain reordering, and
  compact deterministic ATPG (PODEM, dynamic + static compaction);
* row-based layout generation (floorplan, analytic placement, ECO,
  clock-tree synthesis, filler insertion, congestion-aware routing);
* RC extraction and static timing analysis with the paper's eq. (3)
  path decomposition;
* the experiment drivers that regenerate Tables 1-3 and Figure 3.

Quick start::

    from repro.circuits import s38417_like
    from repro.core import FlowConfig, run_flow
    from repro.library import cmos130

    circuit = s38417_like(scale=0.1)
    result = run_flow(circuit, cmos130(), FlowConfig(tp_percent=1.0))
    print(result.test_metrics())
"""

__version__ = "1.0.0"
