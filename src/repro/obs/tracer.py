"""Zero-dependency span tracer: nested spans, counters and gauges.

The flow's ``stage_seconds`` dict answers *how long* each Figure 2
stage took but not *why* — whether a 5% sweep spends its routing stage
in rip-up iterations or its ATPG stage in PODEM backtracking is
invisible at stage granularity.  This module provides the measurement
substrate: a tracer that records a **span tree** (nested timed
sections) with **counters** (monotonic accumulators, e.g. backtracks)
and **gauges** (last-written values, e.g. budget left) attached to each
span.

Design constraints, in order of importance:

* **Free when off.**  A process-wide :class:`NullTracer` is installed
  by default; every instrumentation point in the code base goes
  through it and degenerates to a no-op method call (no allocation, no
  clock read).  Instrumented hot paths therefore pay ~nothing unless a
  caller opted into tracing.
* **Picklable output.**  A finished trace is plain data
  (:class:`Span`/:class:`Trace` dataclasses of dicts, lists and
  floats), so worker processes can ship their traces back to the sweep
  executor inside a :class:`~repro.core.executor.FlowSummary`.
* **Composable.**  Activation is scoped (``with tracing() as t:``) and
  re-entrant: installing a tracer saves the previous one and restores
  it on exit, so a worker can trace one flow while the parent process
  traces the sweep around it.

Typical use::

    from repro import obs

    with obs.tracing(label="my-flow") as tracer:
        with obs.span("route") as sp:
            sp.counter("nets_routed", 123)
        trace = tracer.trace()

Instrumented library code never checks whether tracing is on — it
calls :func:`span`/:func:`counter`/:func:`gauge` unconditionally and
the active tracer (null by default) absorbs the call.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed section of a trace, possibly with nested children.

    Times are seconds relative to the owning tracer's epoch (a
    monotonic clock), so durations are immune to wall-clock steps.

    Attributes:
        name: Span name (stage spans use the ``STAGE_KEYS`` names).
        t_start: Start offset in seconds.
        t_end: End offset in seconds (0.0 while the span is open).
        counters: Accumulated counts (``counter`` adds).
        gauges: Last-written values (``gauge`` overwrites).
        children: Nested spans, in start order.
    """

    name: str
    t_start: float = 0.0
    t_end: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Span duration in seconds (never negative)."""
        return max(0.0, self.t_end - self.t_start)

    def counter(self, name: str, delta: float = 1.0) -> None:
        """Add ``delta`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value``."""
        self.gauges[name] = float(value)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None


class _NullSpan:
    """Do-nothing stand-in yielded by :meth:`NullTracer.span`."""

    __slots__ = ()

    name = ""
    t_start = 0.0
    t_end = 0.0
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    children: List[Span] = []
    duration_s = 0.0

    def counter(self, name: str, delta: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


@dataclass
class Trace:
    """A finished, picklable span tree plus identity metadata.

    Attributes:
        spans: Root spans, in start order.
        label: Human label of the traced unit (e.g. ``s38417@2%``).
        pid: Process that recorded the trace.
        wall_epoch: ``time.time()`` at tracer start — lets an exporter
            place traces from several processes on one global axis.
        mono_epoch: ``time.perf_counter()`` at tracer start.  On one
            machine this clock is shared across processes (CLOCK_MONOTONIC
            since boot), so merging aligns traces on it when every
            trace carries one — immune to NTP steps that skew
            ``wall_epoch``.  0.0 on traces from older pickles.
        counters: Trace-level counters recorded outside any span.
        gauges: Trace-level gauges recorded outside any span.
    """

    spans: List[Span] = field(default_factory=list)
    label: str = ""
    pid: int = 0
    wall_epoch: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    mono_epoch: float = 0.0

    @property
    def duration_s(self) -> float:
        """End of the last root span (trace-relative seconds)."""
        return max((s.t_end for s in self.spans), default=0.0)

    def walk(self) -> Iterator[Span]:
        """Every span in the trace, depth first."""
        for span in self.spans:
            yield from span.walk()

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` anywhere in the trace."""
        for span in self.walk():
            if span.name == name:
                return span
        return None


class _SpanContext:
    """Context manager entering/leaving one live span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Records a span tree for one traced unit of work.

    Args:
        label: Human label carried into the resulting :class:`Trace`.
    """

    enabled = True

    def __init__(self, label: str = ""):
        self.label = label
        self.pid = os.getpid()
        self.wall_epoch = time.time()
        self._perf_epoch = time.perf_counter()
        self.roots: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._stack: List[Span] = []

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return time.perf_counter() - self._perf_epoch

    def rel_wall(self, wall_ts: float) -> float:
        """Map a ``time.time()`` stamp into trace-relative seconds."""
        return wall_ts - self.wall_epoch

    # -- spans ----------------------------------------------------------
    def _container(self) -> List[Span]:
        return self._stack[-1].children if self._stack else self.roots

    def span(self, name: str) -> _SpanContext:
        """Open a child span of the innermost open span (or a root)."""
        sp = Span(name=name, t_start=self.now())
        self._container().append(sp)
        self._stack.append(sp)
        return _SpanContext(self, sp)

    def _close(self, span: Span) -> None:
        span.t_end = self.now()
        # Unwind to (and past) the span; tolerates exceptions that
        # skipped inner __exit__ calls.
        while self._stack:
            if self._stack.pop() is span:
                break

    def record_span(
        self,
        name: str,
        t_start: float,
        t_end: float,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        parent: Optional[Span] = None,
    ) -> Span:
        """Append a span with explicit (trace-relative) times.

        Used for events whose boundaries were measured elsewhere, e.g.
        the executor reconstructing a worker's queue-wait interval from
        wall-clock stamps.
        """
        sp = Span(name=name, t_start=t_start, t_end=max(t_start, t_end))
        if counters:
            sp.counters.update(counters)
        if gauges:
            sp.gauges.update({k: float(v) for k, v in gauges.items()})
        (parent.children if parent is not None
         else self._container()).append(sp)
        return sp

    # -- counters and gauges --------------------------------------------
    def counter(self, name: str, delta: float = 1.0) -> None:
        """Add to a counter on the innermost open span (or the trace)."""
        if self._stack:
            self._stack[-1].counter(name, delta)
        else:
            self.counters[name] = self.counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge on the innermost open span (or the trace)."""
        if self._stack:
            self._stack[-1].gauge(name, value)
        else:
            self.gauges[name] = float(value)

    # -- snapshots -------------------------------------------------------
    def mark(self) -> int:
        """Position marker in the current span container.

        Pair with :meth:`capture` to extract the subtree of spans a
        section of code added at the current nesting level.
        """
        return len(self._container())

    def capture(self, mark: int) -> Optional[Trace]:
        """Trace of the spans appended at this level since ``mark``."""
        spans = list(self._container()[mark:])
        return Trace(
            spans=spans,
            label=self.label,
            pid=self.pid,
            wall_epoch=self.wall_epoch,
            mono_epoch=self._perf_epoch,
        )

    def trace(self) -> Trace:
        """The full trace recorded so far."""
        return Trace(
            spans=list(self.roots),
            label=self.label,
            pid=self.pid,
            wall_epoch=self.wall_epoch,
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            mono_epoch=self._perf_epoch,
        )


class NullTracer:
    """Inactive tracer: every operation is a cheap no-op.

    Installed process-wide by default so instrumentation points in
    library code cost one attribute lookup plus an empty method call
    when tracing is off.
    """

    enabled = False
    label = ""
    pid = 0
    wall_epoch = 0.0
    mono_epoch = 0.0

    def now(self) -> float:
        return 0.0

    def rel_wall(self, wall_ts: float) -> float:
        return 0.0

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name, t_start, t_end, counters=None,
                    gauges=None, parent=None) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, delta: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def mark(self) -> int:
        return 0

    def capture(self, mark: int) -> None:
        return None

    def trace(self) -> None:
        return None


NULL_TRACER = NullTracer()

#: The process-wide active tracer; NULL_TRACER unless installed.
_current = NULL_TRACER


def get_tracer():
    """The active tracer (the shared :data:`NULL_TRACER` when off)."""
    return _current


def tracing_active() -> bool:
    """True when a real tracer is installed."""
    return _current.enabled


def install(tracer):
    """Install ``tracer`` as the active tracer; returns the previous one.

    Prefer the :func:`tracing` context manager; ``install`` exists for
    callers that cannot scope activation to a ``with`` block.
    """
    global _current
    previous = _current
    _current = tracer
    return previous


class _TracingScope:
    """Context manager installing a fresh tracer for its body."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, label: str):
        self._tracer = Tracer(label)
        self._previous = None

    def __enter__(self) -> Tracer:
        self._previous = install(self._tracer)
        return self._tracer

    def __exit__(self, *exc) -> None:
        install(self._previous)


def tracing(label: str = "") -> _TracingScope:
    """Activate a fresh :class:`Tracer` for the ``with`` body.

    Re-entrant: the previously active tracer (possibly the null one) is
    restored on exit, so nested activations compose — the executor's
    workers trace their flow while the parent traces the sweep.
    """
    return _TracingScope(label)


def span(name: str):
    """Open a span on the active tracer (no-op context when off)."""
    return _current.span(name)


def in_span() -> bool:
    """True when the active tracer currently has an open span.

    Lets cross-cutting helpers (e.g. the lint engine) attach their
    spans only *inside* an existing stage span: trace consumers rely
    on the top level being exactly the flow's stage keys.
    """
    return bool(getattr(_current, "_stack", ()))


def counter(name: str, delta: float = 1.0) -> None:
    """Bump a counter on the active tracer's innermost span."""
    _current.counter(name, delta)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer's innermost span."""
    _current.gauge(name, value)
