"""Process-wide metrics registry: counters, gauges and histograms.

The span tracer (:mod:`repro.obs.tracer`) answers *why one run was
slow*; this module answers *how the fleet behaves over many runs*.  It
provides the second telemetry pillar: a :class:`MetricsRegistry`
holding named metric families — monotonic **counters**, last-value
**gauges** and log-bucketed **histograms** — each optionally split by
a small set of labels (``stage="atpg"``, ``circuit="s38417"``, ...).

Design constraints mirror the tracer's:

* **Free when off.**  A process-wide :data:`NULL_REGISTRY` is
  installed by default; the module-level helpers (:func:`inc`,
  :func:`observe`, :func:`set_gauge`) degenerate to a no-op method
  call with no allocation and no lock acquisition.  Code under
  measurement never checks whether metrics are on.
* **Prometheus-compatible semantics.**  Histogram buckets follow the
  exposition contract: the bucket labelled ``le=x`` counts every
  observation ``<= x``, buckets are cumulative when rendered, and an
  implicit ``+Inf`` bucket catches the tail, so
  :mod:`repro.obs.promtext` can encode a registry without loss.
* **Mergeable.**  Registries (and individual snapshots) merge:
  counters add, gauges keep the latest write, histograms add
  bucket-wise.  The daemon uses this to fold per-job registries into
  one scrape view.

Thread safety: a registry serialises mutation behind one lock — the
daemon's job workers share a single registry.  The null path takes no
lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


def log_buckets(start: float = 0.001, factor: float = 2.0,
                count: int = 17) -> Tuple[float, ...]:
    """Geometric bucket upper bounds: ``start * factor**i``.

    The default covers 1 ms .. ~65 s in 17 doubling steps — wide
    enough for both a single extraction stage and a whole chaos sweep.
    ``+Inf`` is always implicit and must not be included.
    """
    if start <= 0:
        raise ValueError("log_buckets start must be > 0")
    if factor <= 1.0:
        raise ValueError("log_buckets factor must be > 1")
    if count < 1:
        raise ValueError("log_buckets count must be >= 1")
    return tuple(start * factor ** i for i in range(count))


#: Default histogram buckets for stage/cell/request latencies.
DEFAULT_LATENCY_BUCKETS = log_buckets()

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic accumulator.  Negative increments are rejected."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise ValueError("counter increments must be >= 0")
        self.value += delta


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        self.value += delta


class Histogram:
    """Log-bucketed distribution with Prometheus ``le`` semantics.

    ``bounds`` are finite upper bounds in increasing order; an
    observation lands in the first bucket whose bound is ``>= value``
    (i.e. ``value <= le``, boundary inclusive), or in the implicit
    ``+Inf`` bucket past the last bound.  ``bucket_counts`` stores
    per-bucket (non-cumulative) counts with one extra slot for
    ``+Inf``; the exposition layer accumulates them.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        if bounds[-1] == float("inf"):
            raise ValueError("+Inf bucket is implicit; pass finite bounds")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect_left finds the first bound >= value, which is exactly
        # the Prometheus rule "value <= le": an observation sitting on
        # a boundary belongs to that boundary's bucket, 0 lands in the
        # first bucket, and inf/NaN-free overflow lands in +Inf.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(+Inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind when off."""

    __slots__ = ()

    value = 0.0
    sum = 0.0
    count = 0
    bounds: Tuple[float, ...] = ()

    def inc(self, delta: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> List[Tuple[float, int]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class MetricFamily:
    """All series of one metric name: type, help text and per-label data."""

    __slots__ = ("name", "kind", "help", "bounds", "series")

    def __init__(self, name: str, kind: str, help: str = "",
                 bounds: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.series: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Named metric families, each fanned out by label values.

    The three accessor methods (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) create-or-fetch a series and return the live
    instrument; the shorthand mutators (:meth:`inc`, :meth:`set`,
    :meth:`observe`) do the common one-shot update.  A family's kind
    is fixed at first use — re-registering a name with a different
    kind raises, which catches typo'd instrumentation in tests.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- series access ---------------------------------------------------
    def _series(self, name: str, kind: str, help: str,
                labels: Dict[str, str],
                bounds: Optional[Sequence[float]] = None):
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(
                    name, kind, help,
                    tuple(float(b) for b in bounds) if bounds else None)
                self._families[name] = fam
            elif fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"not {kind}")
            if help and not fam.help:
                fam.help = help
            key = _label_key(labels)
            inst = fam.series.get(key)
            if inst is None:
                if kind == "counter":
                    inst = Counter()
                elif kind == "gauge":
                    inst = Gauge()
                else:
                    inst = Histogram(fam.bounds or DEFAULT_LATENCY_BUCKETS)
                fam.series[key] = inst
            return inst

    def describe(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        """Pre-register a family's kind, help text and (for
        histograms) bucket bounds without creating any series — the
        daemon declares its metric vocabulary up front so the first
        scrape after boot already carries HELP lines and so kind
        conflicts surface at startup, not mid-flight."""
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                self._families[name] = MetricFamily(
                    name, kind, help,
                    tuple(float(b) for b in buckets) if buckets else None)
            elif fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"not {kind}")
            elif help and not fam.help:
                fam.help = help

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._series(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._series(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        return self._series(name, "histogram", help, labels, bounds=buckets)

    # -- shorthand mutators ---------------------------------------------
    def inc(self, name: str, delta: float = 1.0, help: str = "",
            **labels: str) -> None:
        self.counter(name, help, **labels).inc(delta)

    def set(self, name: str, value: float, help: str = "",
            **labels: str) -> None:
        self.gauge(name, help, **labels).set(value)

    def observe(self, name: str, value: float, help: str = "",
                buckets: Optional[Sequence[float]] = None,
                **labels: str) -> None:
        self.histogram(name, help, buckets=buckets, **labels).observe(value)

    # -- introspection ---------------------------------------------------
    def families(self) -> Iterator[MetricFamily]:
        """Families in sorted-name order (stable exposition)."""
        with self._lock:
            fams = sorted(self._families.values(), key=lambda f: f.name)
        return iter(fams)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    # -- merging ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add; gauges take the other side's
        value (latest-write-wins, matching scrape semantics).
        Histogram series must share bucket bounds — both sides come
        from the same instrumentation code, so a mismatch is a bug.
        """
        for fam in other.families():
            for key, inst in list(fam.series.items()):
                labels = dict(key)
                if fam.kind == "counter":
                    self.counter(fam.name, fam.help, **labels).inc(inst.value)
                elif fam.kind == "gauge":
                    self.gauge(fam.name, fam.help, **labels).set(inst.value)
                else:
                    mine = self.histogram(
                        fam.name, fam.help, buckets=inst.bounds, **labels)
                    if mine.bounds != inst.bounds:
                        raise ValueError(
                            f"histogram {fam.name!r} bucket mismatch")
                    for i, n in enumerate(inst.bucket_counts):
                        mine.bucket_counts[i] += n
                    mine.sum += inst.sum
                    mine.count += inst.count


class NullRegistry:
    """Inactive registry: every operation is a cheap no-op.

    Installed process-wide by default, mirroring
    :class:`~repro.obs.tracer.NullTracer` — instrumentation points
    cost one attribute lookup plus an empty method call when metrics
    are off, and always hand back the same shared null instrument.
    """

    enabled = False

    def describe(self, name: str, kind: str, help: str = "",
                 buckets=None) -> None:
        pass

    def counter(self, name: str, help: str = "", **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=None,
                  **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, delta: float = 1.0, help: str = "",
            **labels) -> None:
        pass

    def set(self, name: str, value: float, help: str = "",
            **labels) -> None:
        pass

    def observe(self, name: str, value: float, help: str = "",
                buckets=None, **labels) -> None:
        pass

    def families(self) -> Iterator[MetricFamily]:
        return iter(())

    def get(self, name: str) -> None:
        return None

    def merge(self, other) -> None:
        pass


NULL_REGISTRY = NullRegistry()

#: The process-wide active registry; NULL_REGISTRY unless installed.
_current = NULL_REGISTRY


def get_registry():
    """The active registry (the shared :data:`NULL_REGISTRY` when off)."""
    return _current


def metrics_active() -> bool:
    """True when a real registry is installed."""
    return _current.enabled


def install_registry(registry):
    """Install ``registry`` process-wide; returns the previous one.

    Scope installs with try/finally (or keep one registry for the
    process lifetime, as the daemon does).
    """
    global _current
    previous = _current
    _current = registry
    return previous


def inc(name: str, delta: float = 1.0, **labels: str) -> None:
    """Bump a counter on the active registry (no-op when off)."""
    _current.inc(name, delta, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge on the active registry (no-op when off)."""
    _current.set(name, value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation on the active registry."""
    _current.observe(name, value, **labels)
