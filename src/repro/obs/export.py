"""Trace exporters: Chrome trace-event JSON and plain-text summaries.

Two consumers, two formats:

* :func:`chrome_trace` — the Chrome trace-event format (the
  ``{"traceEvents": [...]}`` JSON object understood by Perfetto and
  ``chrome://tracing``).  Spans become complete (``"ph": "X"``) events
  with microsecond timestamps; traces from several processes merge
  onto one time axis using each trace's wall-clock epoch, keyed by
  ``pid``/``tid``.
* :func:`format_trace_summary` — a human-readable per-stage table
  (span tree with call counts, total seconds and attached
  counters/gauges), for terminals and bench artifacts.

Both operate on the plain-data :class:`~repro.obs.tracer.Trace`
objects, so they work identically on a live tracer's snapshot, a
worker trace shipped through the executor, or a trace loaded back from
a ``FlowSummary``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import Span, Trace


def _span_args(span: Span) -> Dict[str, float]:
    args: Dict[str, float] = {}
    args.update(span.counters)
    args.update(span.gauges)
    return args


def chrome_trace(traces: Iterable[Optional[Trace]]) -> dict:
    """Merge traces into one Chrome trace-event JSON object.

    ``None`` entries (untraced runs) are skipped.  Each trace becomes
    one ``(pid, tid)`` track: the recording process's real pid, with
    ``tid`` disambiguating multiple traces from the same process (the
    inline ``jobs=1`` executor runs every level in the parent).  Trace
    timestamps are offset by each trace's wall epoch relative to the
    earliest one, so concurrently recorded traces line up on the
    shared axis.
    """
    live = [t for t in traces if t is not None]
    events: List[dict] = []
    if not live:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    epoch0 = min(t.wall_epoch for t in live)
    tid_of_pid: Dict[int, int] = {}
    for trace in live:
        tid = tid_of_pid.get(trace.pid, 0) + 1
        tid_of_pid[trace.pid] = tid
        offset_us = (trace.wall_epoch - epoch0) * 1e6
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": trace.pid,
            "tid": tid,
            "args": {"name": trace.label or f"pid {trace.pid}"},
        })
        if trace.counters or trace.gauges:
            events.append({
                "name": "trace_totals",
                "ph": "I",
                "s": "p",
                "ts": offset_us,
                "pid": trace.pid,
                "tid": tid,
                "args": dict(trace.counters, **trace.gauges),
            })
        for span in trace.walk():
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": offset_us + span.t_start * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": trace.pid,
                "tid": tid,
                "args": _span_args(span),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, traces: Iterable[Optional[Trace]]) -> dict:
    """Write the merged Chrome trace JSON to ``path``; returns it."""
    obj = chrome_trace(traces)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(obj, handle, indent=1)
    return obj


def validate_chrome_trace(obj) -> List[str]:
    """Schema check of a Chrome trace-event object.

    Returns a list of problems (empty when the object is a loadable
    trace).  Checks the subset of the trace-event spec this package
    emits: a ``traceEvents`` array of events carrying ``name``/``ph``/
    ``pid``/``tid``, with non-negative numeric ``ts``/``dur`` on
    complete events.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for n, event in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "M", "I", "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: {key!r} must be a non-negative number"
                    )
    return problems


# ----------------------------------------------------------------------
# Plain-text summary
# ----------------------------------------------------------------------
def _merge_rows(
    spans: Sequence[Span], depth: int,
    rows: List[Tuple[int, str, int, float, Dict[str, float]]],
) -> None:
    """Aggregate sibling spans by name into (depth, name, calls,
    seconds, detail) rows, depth first."""
    order: List[str] = []
    grouped: Dict[str, List[Span]] = {}
    for span in spans:
        if span.name not in grouped:
            order.append(span.name)
            grouped[span.name] = []
        grouped[span.name].append(span)
    for name in order:
        group = grouped[name]
        detail: Dict[str, float] = {}
        for span in group:
            for key, value in span.counters.items():
                detail[key] = detail.get(key, 0.0) + value
            detail.update(span.gauges)  # gauges: last write wins
        rows.append((
            depth, name, len(group),
            sum(s.duration_s for s in group), detail,
        ))
        children = [c for s in group for c in s.children]
        if children:
            _merge_rows(children, depth + 1, rows)


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3g}"


def format_trace_summary(trace: Optional[Trace]) -> str:
    """Render one trace as an indented per-span table.

    Sibling spans with the same name (e.g. repeated hold-fix rounds)
    are aggregated into one row with a call count; counters sum over
    the group, gauges keep their last value.
    """
    if trace is None or not trace.spans:
        return "(no trace recorded)"
    rows: List[Tuple[int, str, int, float, Dict[str, float]]] = []
    _merge_rows(trace.spans, 0, rows)
    name_width = max(
        len("  " * depth + name) for depth, name, _, _, _ in rows
    )
    name_width = max(name_width, len("span"))
    lines = []
    title = f"trace {trace.label}" if trace.label else "trace"
    lines.append(f"{title} (pid {trace.pid})")
    lines.append(
        f"{'span':<{name_width}}  {'calls':>5}  {'total(s)':>9}  detail"
    )
    for depth, name, calls, seconds, detail in rows:
        label = "  " * depth + name
        detail_text = " ".join(
            f"{key}={_format_value(value)}"
            for key, value in sorted(detail.items())
        )
        lines.append(
            f"{label:<{name_width}}  {calls:>5}  {seconds:>9.3f}  "
            f"{detail_text}".rstrip()
        )
    extras = dict(trace.counters, **trace.gauges)
    if extras:
        lines.append("totals: " + " ".join(
            f"{key}={_format_value(value)}"
            for key, value in sorted(extras.items())
        ))
    return "\n".join(lines)
