"""Structured JSONL event log with correlated context binding.

Third telemetry pillar: where the tracer records *durations* and the
metrics registry records *distributions*, this module records *what
happened* — discrete, leveled events (``task_retry``, ``stage_done``,
``request_handled``) as one JSON object per line, each stamped with a
wall clock (for humans), a monotonic clock (for ordering and latency
math immune to NTP steps) and a per-process sequence number (for
deterministic test assertions when events land in the same clock
tick).

Correlation keys (``run_id``, ``job_id``, ``cell``) are attached with
:func:`bind` — a re-entrant context manager that layers fields onto
every event emitted inside its scope, so flow stages deep in
``run_flow`` carry the sweep's ``run_id`` without threading it
through every signature::

    with obs.bind(run_id=run_id, cell="s38417@2%"):
        obs.emit("task_start", "info", attempt=1)

Design constraints match the tracer and registry:

* **Free when off.**  The process-wide default is
  :data:`NULL_EVENT_LOG`; :func:`emit` on the null log is a single
  no-op method call — no dict built, no clock read, no allocation.
  :func:`bind` on the null log is a shared no-op context manager.
* **Crash-safe enough.**  Sinks flush per event but do **not**
  fsync — this is telemetry, not the sweep journal
  (:class:`~repro.core.resilience.SweepJournal` keeps the
  durability contract for resume).
* **Deterministic.**  Keys are emitted sorted, ``seq`` increases by
  one per event, and a single lock orders concurrent emitters, so a
  captured log is directly assertable.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional

LEVELS = ("debug", "info", "warn", "error")
_LEVEL_RANK = {name: i for i, name in enumerate(LEVELS)}


class _NullBindScope:
    """Shared no-op context manager returned by the null log's bind."""

    __slots__ = ()

    def __enter__(self) -> "_NullBindScope":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_BIND = _NullBindScope()


class _BindScope:
    """Layers ``fields`` onto the log's context for the ``with`` body."""

    __slots__ = ("_log", "_fields", "_saved")

    def __init__(self, log: "EventLog", fields: Dict[str, Any]):
        self._log = log
        self._fields = fields
        self._saved: Optional[Dict[str, Any]] = None

    def __enter__(self) -> "_BindScope":
        self._saved = self._log._context
        merged = dict(self._saved)
        merged.update(self._fields)
        self._log._context = merged
        return self

    def __exit__(self, *exc) -> None:
        self._log._context = self._saved


class EventLog:
    """Leveled JSONL event sink with bound-context correlation.

    Args:
        path: File to append JSONL events to (opened lazily, line
            buffered).  ``"stderr"`` writes to the process stderr.
        stream: An explicit text stream (takes precedence over
            ``path``); used by tests and the daemon's request log.
        level: Minimum level recorded (``debug`` < ``info`` < ``warn``
            < ``error``).  Events below it are dropped at emit time.
        memory: Keep every recorded event in :attr:`events` — handy
            for in-process assertions without a temp file.
    """

    enabled = True

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[io.TextIOBase] = None,
                 level: str = "info", memory: bool = False):
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown level {level!r}; use one of {LEVELS}")
        self.path = path
        self.level = level
        self._min_rank = _LEVEL_RANK[level]
        self._stream = stream
        self._owns_stream = False
        self._memory = memory
        self.events: List[Dict[str, Any]] = []
        self._seq = 0
        self._lock = threading.Lock()
        # Context is swapped wholesale by _BindScope (copy-on-bind), so
        # emit never mutates it — and it lives in a threading.local so
        # the daemon's concurrent job workers cannot see (or restore)
        # each other's job_id bindings.
        self._local = threading.local()
        self._context: Dict[str, Any] = {}

    @property
    def _context(self) -> Dict[str, Any]:
        return getattr(self._local, "context", {})

    @_context.setter
    def _context(self, value: Dict[str, Any]) -> None:
        self._local.context = value

    # -- binding ---------------------------------------------------------
    def bind(self, **fields: Any) -> _BindScope:
        """Attach ``fields`` to every event emitted in the ``with`` body."""
        return _BindScope(self, fields)

    # -- emission --------------------------------------------------------
    def _ensure_stream(self) -> io.TextIOBase:
        if self._stream is None:
            if self.path == "stderr":
                self._stream = sys.stderr
            elif self.path:
                self._stream = open(self.path, "a", encoding="utf-8")
                self._owns_stream = True
        return self._stream

    def emit(self, event: str, level: str = "info", **fields: Any) -> None:
        """Record one event (dropped silently when below the log level)."""
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(f"unknown level {level!r}; use one of {LEVELS}")
        if rank < self._min_rank:
            return
        with self._lock:
            self._seq += 1
            record: Dict[str, Any] = {
                "seq": self._seq,
                "ts": time.time(),
                "ts_mono": time.monotonic(),
                "level": level,
                "event": event,
            }
            record.update(self._context)
            record.update(fields)
            if self._memory:
                self.events.append(record)
            stream = self._ensure_stream()
            if stream is not None:
                stream.write(
                    json.dumps(record, sort_keys=True, default=str) + "\n")
                stream.flush()

    def close(self) -> None:
        """Close a file sink this log opened (no-op otherwise)."""
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None
                self._owns_stream = False


class NullEventLog:
    """Inactive event log: emit and bind are cheap no-ops."""

    enabled = False
    events: List[Dict[str, Any]] = []

    def bind(self, **fields: Any) -> _NullBindScope:
        return _NULL_BIND

    def emit(self, event: str, level: str = "info", **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_EVENT_LOG = NullEventLog()

#: The process-wide active event log; NULL_EVENT_LOG unless installed.
_current = NULL_EVENT_LOG


def get_event_log():
    """The active event log (shared :data:`NULL_EVENT_LOG` when off)."""
    return _current


def events_active() -> bool:
    """True when a real event log is installed."""
    return _current.enabled


def install_event_log(log):
    """Install ``log`` process-wide; returns the previous one."""
    global _current
    previous = _current
    _current = log
    return previous


def install_events_from_env(environ=None):
    """Install an :class:`EventLog` if ``REPRO_EVENTS`` is set.

    ``REPRO_EVENTS=stderr`` logs to stderr; any other value is an
    append-mode file path.  ``REPRO_EVENTS_LEVEL`` (default ``info``)
    sets the threshold.  Returns the installed log or ``None`` — the
    CLI calls this once at startup so any ``repro ...`` invocation can
    be traced from the environment without new flags.
    """
    import os
    env = os.environ if environ is None else environ
    target = env.get("REPRO_EVENTS")
    if not target:
        return None
    log = EventLog(path=target, level=env.get("REPRO_EVENTS_LEVEL", "info"))
    install_event_log(log)
    return log


def bind(**fields: Any):
    """Bind correlation fields on the active log (no-op scope when off)."""
    return _current.bind(**fields)


def emit(event: str, level: str = "info", **fields: Any) -> None:
    """Emit an event on the active log (single no-op call when off)."""
    _current.emit(event, level, **fields)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL event file, skipping torn/partial trailing lines."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return out
