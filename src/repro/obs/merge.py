"""Cross-process trace aggregation: serialize, stitch, summarize.

Fourth telemetry pillar.  A parallel sweep produces many
:class:`~repro.obs.tracer.Trace` objects — one per cell recorded
inside a worker process, plus the parent's scheduling trace and (under
the daemon) per-job spans recorded in the service.  This module turns
that pile into one sweep-level Chrome/Perfetto trace:

* :func:`trace_to_dict` / :func:`trace_from_dict` — lossless JSON
  round-trip of ``Trace``/``Span`` trees, so traces survive outside a
  pickle (``repro sweep --trace-dir`` writes one file per cell,
  the daemon writes one per job).
* :func:`merge_traces` — the stitcher.  Traces align on the shared
  monotonic clock (``Trace.mono_epoch``; same CLOCK_MONOTONIC for
  every process on the machine) with a wall-clock fallback for old
  traces, and get **stable virtual pids**: distinct recording
  processes map to pids ``1..N`` in a deterministic order, so two
  merges of the same inputs are byte-identical and diffable even
  though real pids change run to run.  The real pid is preserved in
  each track's ``process_name`` metadata.
* :func:`summarize_merged` — a per-track per-span text table for a
  merged Chrome object, the ``repro trace summarize`` backend.

Output passes :func:`~repro.obs.export.validate_chrome_trace`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import Span, Trace

TRACE_FILE_KEY = "repro_traces"


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def _span_to_dict(span: Span) -> dict:
    out: dict = {
        "name": span.name,
        "t_start": span.t_start,
        "t_end": span.t_end,
    }
    if span.counters:
        out["counters"] = dict(span.counters)
    if span.gauges:
        out["gauges"] = dict(span.gauges)
    if span.children:
        out["children"] = [_span_to_dict(c) for c in span.children]
    return out


def _span_from_dict(data: dict) -> Span:
    return Span(
        name=str(data.get("name", "")),
        t_start=float(data.get("t_start", 0.0)),
        t_end=float(data.get("t_end", 0.0)),
        counters=dict(data.get("counters") or {}),
        gauges=dict(data.get("gauges") or {}),
        children=[_span_from_dict(c) for c in data.get("children") or []],
    )


def trace_to_dict(trace: Trace) -> dict:
    """Plain-JSON form of a trace (inverse of :func:`trace_from_dict`)."""
    return {
        "label": trace.label,
        "pid": trace.pid,
        "wall_epoch": trace.wall_epoch,
        "mono_epoch": trace.mono_epoch,
        "counters": dict(trace.counters),
        "gauges": dict(trace.gauges),
        "spans": [_span_to_dict(s) for s in trace.spans],
    }


def trace_from_dict(data: dict) -> Trace:
    """Rebuild a :class:`Trace` from its JSON form.

    Tolerant of missing keys so traces written by older versions
    (no ``mono_epoch``) still load.
    """
    return Trace(
        spans=[_span_from_dict(s) for s in data.get("spans") or []],
        label=str(data.get("label", "")),
        pid=int(data.get("pid", 0)),
        wall_epoch=float(data.get("wall_epoch", 0.0)),
        counters=dict(data.get("counters") or {}),
        gauges=dict(data.get("gauges") or {}),
        mono_epoch=float(data.get("mono_epoch", 0.0)),
    )


def write_trace_file(path, traces: Iterable[Optional[Trace]]) -> int:
    """Write raw traces (JSON, not Chrome format) to ``path``.

    ``None`` entries are skipped.  Returns the number written.  The
    file is ``{"repro_traces": [...]}`` so readers can tell a raw
    trace bundle from a merged Chrome object (``traceEvents``).
    """
    live = [trace_to_dict(t) for t in traces if t is not None]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({TRACE_FILE_KEY: live}, fh, indent=1)
    return len(live)


def read_trace_file(path) -> List[Trace]:
    """Load raw traces from ``path`` (a bundle or one bare trace dict)."""
    with open(path, "r", encoding="utf-8") as fh:
        obj = json.load(fh)
    if isinstance(obj, dict) and TRACE_FILE_KEY in obj:
        return [trace_from_dict(d) for d in obj[TRACE_FILE_KEY]]
    if isinstance(obj, dict) and "spans" in obj:
        return [trace_from_dict(obj)]
    raise ValueError(
        f"{path}: not a repro trace file (expected {TRACE_FILE_KEY!r} "
        f"bundle or a single trace object)")


def collect_trace_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of trace files.

    A directory contributes every ``*.trace.json`` inside it (sorted),
    which is the layout ``repro sweep --trace-dir`` produces.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            out.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".trace.json"))
        else:
            out.append(path)
    return out


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def _sort_key(trace: Trace) -> Tuple:
    return (trace.pid, trace.wall_epoch, trace.mono_epoch, trace.label)


def merge_traces(traces: Iterable[Optional[Trace]]) -> dict:
    """Stitch traces into one Chrome trace-event object.

    Differences from the single-process :func:`~repro.obs.export.chrome_trace`:

    * **Alignment** prefers the shared monotonic clock: when every
      trace carries a non-zero ``mono_epoch`` (same machine, same
      boot), offsets come from it and wall-clock skew between
      processes cannot misplace spans.  Otherwise falls back to
      ``wall_epoch`` like the plain exporter.
    * **Stable pids**: distinct recording processes are renumbered
      ``1..N`` in deterministic ``(pid, epoch, label)`` order, so the
      merged JSON is reproducible across runs of the merge itself;
      the real OS pid is recorded in the track's ``process_name``
      metadata args.
    """
    live = [t for t in traces if t is not None]
    events: List[dict] = []
    if not live:
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    live.sort(key=_sort_key)
    use_mono = all(t.mono_epoch for t in live)
    epoch_of = (lambda t: t.mono_epoch) if use_mono else (
        lambda t: t.wall_epoch)
    epoch0 = min(epoch_of(t) for t in live)

    pid_map: Dict[int, int] = {}
    for trace in live:
        if trace.pid not in pid_map:
            pid_map[trace.pid] = len(pid_map) + 1

    tid_of_pid: Dict[int, int] = {}
    for trace in live:
        vpid = pid_map[trace.pid]
        tid = tid_of_pid.get(vpid, 0) + 1
        tid_of_pid[vpid] = tid
        offset_us = (epoch_of(trace) - epoch0) * 1e6
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": vpid,
            "tid": tid,
            "args": {
                "name": trace.label or f"pid {trace.pid}",
                "os_pid": trace.pid,
            },
        })
        if trace.counters or trace.gauges:
            events.append({
                "name": "trace_totals",
                "ph": "I",
                "s": "p",
                "ts": offset_us,
                "pid": vpid,
                "tid": tid,
                "args": dict(trace.counters, **trace.gauges),
            })
        for span in trace.walk():
            args: Dict[str, float] = {}
            args.update(span.counters)
            args.update(span.gauges)
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": offset_us + span.t_start * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": vpid,
                "tid": tid,
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "monotonic" if use_mono else "wall"},
    }


def write_merged_trace(path, traces: Iterable[Optional[Trace]]) -> dict:
    """Write :func:`merge_traces` output to ``path``; returns it."""
    obj = merge_traces(traces)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, indent=1)
    return obj


# ----------------------------------------------------------------------
# Summaries of merged objects
# ----------------------------------------------------------------------
def summarize_merged(obj: dict) -> str:
    """Per-track span table for a merged Chrome trace object.

    Groups complete (``"X"``) events by ``(pid, tid, name)``; each
    track is headed by its ``process_name`` metadata when present.
    """
    events = obj.get("traceEvents") or []
    names: Dict[Tuple[int, int], str] = {}
    rows: Dict[Tuple[int, int], Dict[str, Tuple[int, float]]] = {}
    for event in events:
        key = (event.get("pid", 0), event.get("tid", 0))
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[key] = str((event.get("args") or {}).get("name", ""))
        elif event.get("ph") == "X":
            per = rows.setdefault(key, {})
            calls, total = per.get(event["name"], (0, 0.0))
            per[event["name"]] = (
                calls + 1, total + float(event.get("dur", 0.0)) / 1e6)
    if not rows:
        return "(no complete events)"
    lines: List[str] = []
    for key in sorted(rows):
        title = names.get(key, "")
        lines.append(
            f"track pid={key[0]} tid={key[1]}"
            + (f" ({title})" if title else ""))
        per = rows[key]
        width = max(len(n) for n in per)
        for name in sorted(per, key=lambda n: -per[n][1]):
            calls, total = per[name]
            lines.append(f"  {name:<{width}}  {calls:>5}  {total:>9.3f}s")
    return "\n".join(lines)
