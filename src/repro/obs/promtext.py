"""Prometheus text exposition, dependency-free: encoder + validator.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the
Prometheus *text exposition format* (version 0.0.4) so any scraper —
``curl``, Prometheus itself, a Grafana agent — can consume the
daemon's ``/metrics?format=prom`` without the repo growing a client
library dependency.  The inverse direction,
:func:`validate_exposition`, is a strict-enough linter that CI can
fail a scrape that drifts from the format: it checks name/label
syntax, TYPE declarations, histogram bucket monotonicity and the
``_count``/``+Inf`` consistency rule.

Format reference (the subset we emit)::

    # HELP repro_stage_seconds Stage wall time.
    # TYPE repro_stage_seconds histogram
    repro_stage_seconds_bucket{stage="atpg",le="0.001"} 0
    repro_stage_seconds_bucket{stage="atpg",le="+Inf"} 12
    repro_stage_seconds_sum{stage="atpg"} 4.2
    repro_stage_seconds_count{stage="atpg"} 12

Buckets are cumulative, every histogram ends in ``+Inf``, and the
``+Inf`` bucket equals ``_count`` for the same label set.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def render_registry(registry: MetricsRegistry) -> str:
    """Encode ``registry`` as Prometheus exposition text.

    Families appear in sorted-name order and label sets in sorted-key
    order, so two renders of equal registries are byte-identical —
    tests diff the text directly.
    """
    lines: List[str] = []
    for fam in registry.families():
        if not METRIC_NAME_RE.match(fam.name):
            raise ValueError(f"invalid metric name {fam.name!r}")
        if fam.help:
            lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for key in sorted(fam.series):
            labels = dict(key)
            for name in labels:
                if not LABEL_NAME_RE.match(name):
                    raise ValueError(f"invalid label name {name!r}")
            inst = fam.series[key]
            if fam.kind in ("counter", "gauge"):
                lines.append(
                    f"{fam.name}{_labels_text(labels)} "
                    f"{_format_value(inst.value)}")
            else:
                for le, cum in inst.cumulative():
                    blabels = dict(labels)
                    blabels["le"] = _format_le(le)
                    lines.append(
                        f"{fam.name}_bucket{_labels_text(blabels)} {cum}")
                lines.append(
                    f"{fam.name}_sum{_labels_text(labels)} "
                    f"{_format_value(inst.sum)}")
                lines.append(
                    f"{fam.name}_count{_labels_text(labels)} {inst.count}")
    text = "\n".join(lines)
    return text + "\n" if text else ""


def _parse_value(raw: str) -> Optional[float]:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError:
        return None


def _parse_labels(raw: str) -> Optional[Dict[str, str]]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        m = _LABEL_PAIR_RE.match(raw, pos)
        if not m:
            return None
        labels[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                return None
            pos += 1
    return labels


def _base_name(sample_name: str, declared: Dict[str, str]) -> str:
    """Map a histogram sample name back onto its declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if declared.get(base) in ("histogram", "summary"):
                return base
    return sample_name


def validate_exposition(text: str) -> List[str]:
    """Lint exposition text; returns a list of problems (empty = OK).

    Checks, per line and per histogram family:

    * metric and label names match the Prometheus grammar;
    * ``# TYPE`` values are legal and declared at most once;
    * sample values parse (``+Inf``/``-Inf``/``NaN`` included);
    * histogram buckets are cumulative (non-decreasing in ``le``
      order) and end with ``le="+Inf"``;
    * the ``+Inf`` bucket count equals ``_count`` for the same label
      set.
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    # (family, labelkey-without-le) -> list of (le, count)
    buckets: Dict[Tuple[str, Tuple], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple], float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    problems.append(f"line {lineno}: malformed TYPE line")
                    continue
                name, kind = parts[2], parts[3].strip()
                if not METRIC_NAME_RE.match(name):
                    problems.append(
                        f"line {lineno}: invalid metric name {name!r}")
                if kind not in _VALID_TYPES:
                    problems.append(
                        f"line {lineno}: invalid TYPE {kind!r}")
                if name in declared:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name!r}")
                declared[name] = kind
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3:
                    problems.append(f"line {lineno}: malformed HELP line")
            # other comments are ignored, per the format
            continue

        m = _SAMPLE_RE.match(line.strip())
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels = _parse_labels(m.group("labels") or "")
        if labels is None:
            problems.append(f"line {lineno}: malformed labels: {line!r}")
            continue
        value = _parse_value(m.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: unparseable value {m.group('value')!r}")
            continue

        base = _base_name(name, declared)
        if declared.get(base) == "histogram" and name == base + "_bucket":
            le_raw = labels.pop("le", None)
            if le_raw is None:
                problems.append(
                    f"line {lineno}: histogram bucket without le label")
                continue
            le = _parse_value(le_raw)
            if le is None:
                problems.append(f"line {lineno}: unparseable le {le_raw!r}")
                continue
            key = (base, tuple(sorted(labels.items())))
            buckets.setdefault(key, []).append((le, value))
        elif declared.get(base) == "histogram" and name == base + "_count":
            key = (base, tuple(sorted(labels.items())))
            counts[key] = value

    for (family, labelkey), series in sorted(buckets.items()):
        label_repr = dict(labelkey) or "{}"
        les = [le for le, _ in series]
        if les != sorted(les):
            problems.append(
                f"histogram {family}{label_repr}: buckets out of le order")
        for (_, lo), (hi_le, hi) in zip(series, series[1:]):
            if hi < lo:
                problems.append(
                    f"histogram {family}{label_repr}: bucket counts "
                    f"decrease at le={_format_le(hi_le)}")
                break
        if not series or series[-1][0] != float("inf"):
            problems.append(
                f"histogram {family}{label_repr}: missing +Inf bucket")
        else:
            total = counts.get((family, labelkey))
            if total is None:
                problems.append(
                    f"histogram {family}{label_repr}: missing _count sample")
            elif series[-1][1] != total:
                problems.append(
                    f"histogram {family}{label_repr}: +Inf bucket "
                    f"({series[-1][1]:g}) != _count ({total:g})")
    return problems
