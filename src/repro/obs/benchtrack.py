"""Bench trajectory tracking: per-stage deltas and regression gating.

The benchmarks directory accumulates ``BENCH_*.json`` artifacts but —
before this module — no *trajectory*: nothing compared today's stage
runtimes against yesterday's, so a small per-stage drift (the
compounding kind the EffiTest line of work warns about) would ship
silently.  ``benchtrack`` closes that loop:

* :func:`record_stages` runs a serial, cache-cold sweep and captures
  per-stage wall seconds (summed over cells, with a per-cell
  breakdown) as a versioned record;
* :func:`stage_deltas` diffs two records stage by stage;
* :func:`check_regressions` applies a relative threshold (default
  +20%) with an absolute floor (stages faster than ``min_seconds`` in
  the baseline are noise, not signal);
* the CLI (``python -m repro.obs.benchtrack record|compare``) exits
  non-zero on regression so CI can gate on it, and appends every
  record to a JSONL history file so the trajectory is diffable over
  time.

The committed seed baseline lives at
``benchmarks/out/BENCH_table1_stages.json``.  CI compares a record
against itself (must pass) and against a synthetically inflated copy
(must fail) — comparing timings across unrelated machines would gate
on hardware, not code.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

RECORD_KIND = "repro_bench_stages"
RECORD_VERSION = 1
DEFAULT_THRESHOLD = 0.20
DEFAULT_MIN_SECONDS = 0.05


def record_stages(circuit: str = "s38417", scale: float = 0.01,
                  tp_percents: Sequence[float] = (0.0, 2.0),
                  **options: Any) -> Dict[str, Any]:
    """Run a serial cache-cold sweep and capture per-stage seconds.

    Serial and uncached on purpose: stage times must reflect real
    compute, not queue scheduling or cache hits.  Raises RuntimeError
    if any cell fails — a bench record with holes is not a baseline.
    """
    from repro import api

    report = api.sweep_report(
        circuit, scale=scale, tp_percents=tuple(tp_percents),
        jobs=1, use_cache=False, **options)
    if report.failures:
        raise RuntimeError(
            "bench sweep had failed cells: "
            + ", ".join(f.label for f in report.failures))
    stages: Dict[str, float] = {}
    cells: Dict[str, Dict[str, float]] = {}
    for result in report.results.values():
        for summary in result.runs.values():
            cell = f"{summary.tp_percent:g}"
            cells[cell] = {
                k: float(v)
                for k, v in sorted(summary.stage_seconds.items())}
            for key, value in summary.stage_seconds.items():
                stages[key] = stages.get(key, 0.0) + float(value)
    return {
        "kind": RECORD_KIND,
        "version": RECORD_VERSION,
        "circuit": circuit,
        "scale": scale,
        "placer": str(options.get("placer", "quadratic")),
        "tp_percents": [float(p) for p in tp_percents],
        "stages": dict(sorted(stages.items())),
        "cells": cells,
        "wall_s": sum(stages.values()),
    }


def load_record(path: str) -> Dict[str, Any]:
    """Load a stage record; a history file yields its latest entry."""
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.read(1)
        fh.seek(0)
        if first == "[":
            entries = json.load(fh)
            if not entries:
                raise ValueError(f"{path}: empty history")
            record = entries[-1]
        elif path.endswith((".jsonl", ".ndjson")):
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
            if not lines:
                raise ValueError(f"{path}: empty history")
            record = json.loads(lines[-1])
        else:
            record = json.load(fh)
    if record.get("kind") != RECORD_KIND:
        raise ValueError(
            f"{path}: not a {RECORD_KIND} record (kind="
            f"{record.get('kind')!r})")
    return record


def append_history(path: str, record: Dict[str, Any]) -> None:
    """Append one record to a JSONL trajectory file."""
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_history(path: str) -> List[Dict[str, Any]]:
    """All records of a JSONL trajectory file, oldest first."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def stage_deltas(baseline: Dict[str, Any],
                 current: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-stage ``{base, cur, delta_s, ratio}`` between two records.

    Stages present on only one side appear with the other side at 0.0
    (ratio ``inf`` for new stages — they have no baseline to honour).
    """
    base = baseline.get("stages") or {}
    cur = current.get("stages") or {}
    out: Dict[str, Dict[str, float]] = {}
    for stage in sorted(set(base) | set(cur)):
        b = float(base.get(stage, 0.0))
        c = float(cur.get(stage, 0.0))
        out[stage] = {
            "base": b,
            "cur": c,
            "delta_s": c - b,
            "ratio": (c / b) if b > 0 else float("inf") if c > 0 else 1.0,
        }
    return out


def check_regressions(baseline: Dict[str, Any], current: Dict[str, Any],
                      threshold: float = DEFAULT_THRESHOLD,
                      min_seconds: float = DEFAULT_MIN_SECONDS
                      ) -> List[str]:
    """Stages slower than ``baseline * (1 + threshold)``.

    Stages below ``min_seconds`` in the baseline are skipped — a 3 ms
    stage doubling is scheduler noise, not a regression.  Returns
    human-readable problem strings (empty = within budget).
    """
    problems: List[str] = []
    for stage, d in stage_deltas(baseline, current).items():
        if d["base"] < min_seconds:
            continue
        if d["cur"] > d["base"] * (1.0 + threshold):
            problems.append(
                f"{stage}: {d['base']:.3f}s -> {d['cur']:.3f}s "
                f"(+{(d['ratio'] - 1.0) * 100:.0f}% > "
                f"+{threshold * 100:.0f}% budget)")
    return problems


def format_deltas(baseline: Dict[str, Any],
                  current: Dict[str, Any]) -> str:
    """Text table of per-stage deltas for terminals and CI logs."""
    deltas = stage_deltas(baseline, current)
    width = max([len(s) for s in deltas] + [len("stage")])
    lines = [f"{'stage':<{width}}  {'base(s)':>9}  {'cur(s)':>9}  delta"]
    for stage, d in deltas.items():
        if d["ratio"] == float("inf"):
            pct = "new"
        else:
            pct = f"{(d['ratio'] - 1.0) * 100:+.1f}%"
        lines.append(
            f"{stage:<{width}}  {d['base']:>9.3f}  {d['cur']:>9.3f}  {pct}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI: python -m repro.obs.benchtrack record|compare
# ----------------------------------------------------------------------
def _cmd_record(args: argparse.Namespace) -> int:
    tp_percents = [float(p) for p in args.tp_percents.split(",")]
    options = {}
    if args.placer:
        options["placer"] = args.placer
    record = record_stages(args.circuit, scale=args.scale,
                           tp_percents=tp_percents, **options)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    if args.history:
        append_history(args.history, record)
        print(f"appended to {args.history}")
    if not args.out and not args.history:
        json.dump(record, sys.stdout, indent=1, sort_keys=True)
        print()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_record(args.baseline)
    current = load_record(args.current)
    print(format_deltas(baseline, current))
    problems = check_regressions(baseline, current,
                                 threshold=args.threshold,
                                 min_seconds=args.min_seconds)
    if problems:
        print(f"\nREGRESSIONS ({len(problems)}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"\nOK: no stage exceeds +{args.threshold * 100:.0f}% "
          f"over baseline")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.benchtrack",
        description="Record and compare per-stage bench runtimes.")
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run a sweep, capture stage times")
    rec.add_argument("--circuit", default="s38417")
    rec.add_argument("--scale", type=float, default=0.01)
    rec.add_argument("--tp-percents", default="0,2")
    rec.add_argument("--placer", default=None,
                     help="global-placement engine for the bench sweep "
                          "(default: the flow's quadratic engine)")
    rec.add_argument("--out", help="write the record to this JSON file")
    rec.add_argument("--history",
                     help="also append to this JSONL trajectory file")
    rec.set_defaults(func=_cmd_record)

    cmp_ = sub.add_parser("compare",
                          help="diff two records, exit 1 on regression")
    cmp_.add_argument("baseline", help="baseline record (or history) file")
    cmp_.add_argument("current", help="current record (or history) file")
    cmp_.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                      help="relative budget per stage (0.2 = +20%%)")
    cmp_.add_argument("--min-seconds", type=float,
                      default=DEFAULT_MIN_SECONDS,
                      help="ignore stages below this baseline duration")
    cmp_.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
