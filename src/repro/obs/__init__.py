"""Observability layer: span-tree tracing, counters/gauges, exporters.

Zero-dependency instrumentation for the Figure 2 flow and the sweep
executor.  See :mod:`repro.obs.tracer` for the recording API and
:mod:`repro.obs.export` for the Chrome trace-event and plain-text
exporters.  The process-wide default tracer is a no-op; activate with::

    from repro import obs

    with obs.tracing(label="sweep") as tracer:
        ...instrumented code...
        obs.write_chrome_trace("out.json", [tracer.trace()])
"""

from repro.obs.export import (
    chrome_trace,
    format_trace_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Trace,
    Tracer,
    counter,
    gauge,
    get_tracer,
    in_span,
    install,
    span,
    tracing,
    tracing_active,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "chrome_trace",
    "counter",
    "format_trace_summary",
    "gauge",
    "get_tracer",
    "in_span",
    "install",
    "span",
    "tracing",
    "tracing_active",
    "validate_chrome_trace",
    "write_chrome_trace",
]
