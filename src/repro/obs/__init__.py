"""Observability layer: traces, metrics, events, aggregation.

Zero-dependency telemetry for the Figure 2 flow, the sweep executor
and the serving daemon, organised as four pillars (DESIGN.md §12):

1. **Traces** — :mod:`repro.obs.tracer` records span trees with
   counters/gauges; :mod:`repro.obs.export` renders Chrome trace-event
   JSON and text summaries.
2. **Metrics** — :mod:`repro.obs.metrics` is a registry of counters,
   gauges and log-bucketed histograms;
   :mod:`repro.obs.promtext` encodes it in Prometheus text exposition
   format (and validates scrapes).
3. **Events** — :mod:`repro.obs.events` is a leveled JSONL event log
   with ``run_id``/``job_id``/cell correlation via :func:`bind`.
4. **Aggregation** — :mod:`repro.obs.merge` stitches per-process
   traces into one sweep-level trace with stable pid/tid mapping;
   :mod:`repro.obs.benchtrack` tracks bench stage-runtime trajectories
   and gates regressions.

Everything is off by default and free when off: the process-wide
tracer, registry and event log are shared null singletons until a
caller installs real ones::

    from repro import obs

    with obs.tracing(label="sweep") as tracer:
        ...instrumented code...
        obs.write_chrome_trace("out.json", [tracer.trace()])
"""

from repro.obs.events import (
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    bind,
    emit,
    events_active,
    get_event_log,
    install_event_log,
    install_events_from_env,
    read_events,
)
from repro.obs.export import (
    chrome_trace,
    format_trace_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.merge import (
    collect_trace_files,
    merge_traces,
    read_trace_file,
    summarize_merged,
    trace_from_dict,
    trace_to_dict,
    write_merged_trace,
    write_trace_file,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    inc,
    install_registry,
    log_buckets,
    metrics_active,
    observe,
    set_gauge,
)
from repro.obs.promtext import render_registry, validate_exposition
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Trace,
    Tracer,
    counter,
    gauge,
    get_tracer,
    in_span,
    install,
    span,
    tracing,
    tracing_active,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Histogram",
    "MetricsRegistry",
    "NULL_EVENT_LOG",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullEventLog",
    "NullRegistry",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "bind",
    "chrome_trace",
    "collect_trace_files",
    "counter",
    "emit",
    "events_active",
    "format_trace_summary",
    "gauge",
    "get_event_log",
    "get_registry",
    "get_tracer",
    "in_span",
    "inc",
    "install",
    "install_event_log",
    "install_events_from_env",
    "install_registry",
    "log_buckets",
    "merge_traces",
    "metrics_active",
    "observe",
    "read_events",
    "read_trace_file",
    "render_registry",
    "set_gauge",
    "span",
    "summarize_merged",
    "trace_from_dict",
    "trace_to_dict",
    "tracing",
    "tracing_active",
    "validate_chrome_trace",
    "validate_exposition",
    "write_chrome_trace",
    "write_merged_trace",
    "write_trace_file",
]
