"""Netlist/DFT rule pack: structural and scan-architecture audits.

The pack has two tiers sharing the ``"netlist"`` rule registry:

* **structural** rules (``NL*`` plus DFT002) are the cheap integrity
  checks that :func:`repro.netlist.validate.validate` runs between
  flow steps — undriven/multi-driven nets, unconnected pins, stale
  driver/sink back-references, port wiring, clock-pin discipline;
* **DFT** rules (``DFT*``) audit the test architecture itself:
  combinational loops in the scan-capture view, unscanned flip-flops,
  scan-chain continuity and balance, test-enable fanout and the clock
  domains of inserted test points.

Run the whole pack with :func:`lint_netlist`; pass ``nets`` (e.g. a
:attr:`Circuit.dirty_nets` snapshot) to re-audit only the neighbourhood
an ECO round touched.

This module must not be imported from ``repro.netlist`` package init
paths; it imports circuit/net submodules directly and defers the
scan/tpi imports into the rule bodies to stay cycle-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.lint.core import (
    Diagnostic,
    ERROR,
    LintReport,
    Rule,
    WARNING,
    make_diagnostic,
    pack_rules,
    rule,
    run_rules,
)
from repro.netlist.circuit import Circuit
from repro.netlist.instance import Instance
from repro.netlist.net import Net, PORT

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.scan.insertion import ScanChains

PACK = "netlist"


@dataclass
class NetlistContext:
    """Everything the netlist rules inspect.

    Attributes:
        circuit: The design under audit.
        chains: Scan-chain configuration, when scan has been stitched
            (enables the chain rules DFT003-DFT005).
        max_chain_length: Configured balanced-chain cap (DFT005).
        n_chains: Configured fixed chain count (DFT005).
        nets: When set, per-net/per-instance rules only audit this
            neighbourhood — the cheap post-ECO re-lint over a dirty
            set.  Whole-design rules (loops, chain continuity) always
            run; they are linear and cannot be scoped soundly.
    """

    circuit: Circuit
    chains: Optional["ScanChains"] = None
    max_chain_length: Optional[int] = None
    n_chains: Optional[int] = None
    nets: Optional[FrozenSet[str]] = None

    def net_items(self) -> Iterator[Tuple[str, Net]]:
        """Nets in scope, in the circuit's deterministic dict order."""
        for name, net in self.circuit.nets.items():
            if self.nets is None or name in self.nets:
                yield name, net

    def instances(self) -> Iterator[Instance]:
        """Instances in scope (touching a scoped net, or all)."""
        for inst in self.circuit.instances.values():
            if self.nets is None or any(
                net in self.nets for net in inst.conns.values()
            ):
                yield inst

    @property
    def clock_nets(self) -> FrozenSet[str]:
        """Declared clock-domain nets."""
        return frozenset(dom.net for dom in self.circuit.clocks)


# ----------------------------------------------------------------------
# Structural tier (the validate() subset)
# ----------------------------------------------------------------------
@rule(PACK, "NL001", "undriven net", severity=ERROR, structural=True,
      hint="connect a driver or remove the net")
def check_undriven_nets(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Every net must have exactly one driver recorded."""
    entry = _rule("NL001")
    for name, net in ctx.net_items():
        if net.driver is None:
            yield make_diagnostic(
                entry, f"net {name!r} has no driver", obj=name,
            )


@rule(PACK, "NL002", "multi-driven net", severity=ERROR, structural=True,
      hint="exactly one output pin (or input port) may drive a net")
def check_multi_driven_nets(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """No net may be claimed by more than one driving pin.

    :meth:`Circuit.connect` prevents this during normal editing; the
    rule catches corruption introduced by direct attribute writes or a
    torn in-place rewrite.
    """
    entry = _rule("NL002")
    drivers: Dict[str, List[Tuple[str, str]]] = {}
    for port in ctx.circuit.inputs:
        drivers.setdefault(port, []).append((PORT, port))
    for inst in ctx.circuit.instances.values():
        for pin, net in inst.output_conns():
            drivers.setdefault(net, []).append((inst.name, pin))
    for name, pins in drivers.items():
        if ctx.nets is not None and name not in ctx.nets:
            continue
        if len(pins) > 1:
            listed = ", ".join(f"{i}.{p}" for i, p in pins)
            yield make_diagnostic(
                entry,
                f"net {name!r} driven by multiple pins: {listed}",
                obj=name,
            )


@rule(PACK, "NL003", "dangling net", severity=WARNING, structural=True,
      hint="remove the net or connect its intended sinks")
def check_dangling_nets(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """A net without sinks is legal but suspicious (floating output)."""
    entry = _rule("NL003")
    for name, net in ctx.net_items():
        if not net.sinks:
            yield make_diagnostic(
                entry, f"net {name!r} has no sinks (dangling)", obj=name,
            )


@rule(PACK, "NL004", "unconnected instance input", severity=ERROR,
      structural=True, hint="every pin of a placed cell must be wired")
def check_unconnected_pins(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Every pin of every non-filler instance must be connected."""
    entry = _rule("NL004")
    for inst in ctx.instances():
        if inst.cell.is_filler:
            continue
        for pin_name in inst.cell.pins:
            if pin_name not in inst.conns:
                yield make_diagnostic(
                    entry,
                    f"pin {inst.name}.{pin_name} ({inst.cell.name}) "
                    f"unconnected",
                    obj=inst.name,
                )


@rule(PACK, "NL005", "stale connectivity back-reference", severity=ERROR,
      structural=True,
      hint="net.driver/net.sinks must mirror instance.conns exactly")
def check_back_references(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Driver and sink back-references must mirror instance pin maps."""
    entry = _rule("NL005")
    circuit = ctx.circuit
    for name, net in ctx.net_items():
        if net.driver is not None and net.driver[0] != PORT:
            inst_name, pin = net.driver
            inst = circuit.instances.get(inst_name)
            if inst is None:
                yield make_diagnostic(
                    entry,
                    f"net {name!r} driven by missing instance {inst_name!r}",
                    obj=name,
                )
            elif inst.conns.get(pin) != name:
                yield make_diagnostic(
                    entry,
                    f"driver back-reference of net {name!r} is stale",
                    obj=name,
                )
        for inst_name, pin in net.sinks:
            if inst_name == PORT:
                continue
            inst = circuit.instances.get(inst_name)
            if inst is None:
                yield make_diagnostic(
                    entry,
                    f"net {name!r} read by missing instance {inst_name!r}",
                    obj=name,
                )
            elif inst.conns.get(pin) != name:
                yield make_diagnostic(
                    entry,
                    f"sink back-reference ({inst_name}.{pin}) of net "
                    f"{name!r} is stale",
                    obj=name,
                )


@rule(PACK, "NL006", "port wiring integrity", severity=ERROR,
      structural=True, hint="ports and their nets must stay paired")
def check_port_wiring(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Primary ports must stay consistently wired to their nets."""
    entry = _rule("NL006")
    circuit = ctx.circuit
    for port in circuit.outputs:
        net = circuit.output_net(port)
        if ctx.nets is not None and net not in ctx.nets:
            continue
        if net not in circuit.nets:
            yield make_diagnostic(
                entry, f"output port {port!r} reads missing net", obj=port,
            )
        elif (PORT, port) not in circuit.nets[net].sinks:
            yield make_diagnostic(
                entry, f"output port {port!r} not a sink of {net!r}",
                obj=port,
            )
    for port in circuit.inputs:
        if ctx.nets is not None and port not in ctx.nets:
            continue
        if port not in circuit.nets:
            yield make_diagnostic(
                entry, f"input port {port!r} has no net", obj=port,
            )
        elif circuit.nets[port].driver != (PORT, port):
            yield make_diagnostic(
                entry, f"input net {port!r} not driven by its port",
                obj=port,
            )


@rule(PACK, "DFT002", "flip-flop clocking", severity=ERROR,
      structural=True,
      hint="clock pins must tie to a declared clock domain or a "
           "clock-tree buffer net")
def check_flip_flop_clocking(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Connected clock pins must see a clock domain or clock-tree net.

    Unconnected clock pins are already NL004 findings; this rule flags
    clock pins wired to a non-clock net (a data net racing the scan
    capture).  Nets driven by clock-tree buffers are legal, mirroring
    the historical ``validate`` allowance for synthesised trees.
    """
    entry = _rule("DFT002")
    circuit = ctx.circuit
    clock_nets = ctx.clock_nets
    for inst in ctx.instances():
        if inst.cell.is_filler:
            continue
        for pin_name, pin in inst.cell.pins.items():
            if not pin.is_clock:
                continue
            net = inst.conns.get(pin_name)
            if net is None or net in clock_nets:
                continue
            driver = circuit.driver_instance(net) if net in circuit.nets \
                else None
            if driver is None or not driver.cell.is_clock_buffer:
                yield make_diagnostic(
                    entry,
                    f"clock pin {inst.name}.{pin_name} tied to {net!r}, "
                    f"not a clock domain or clock-tree net",
                    obj=inst.name,
                )


# ----------------------------------------------------------------------
# DFT tier
# ----------------------------------------------------------------------
@rule(PACK, "DFT001", "combinational loop", severity=ERROR,
      hint="break the cycle: ATPG, simulation and STA all require an "
           "acyclic combinational core")
def check_combinational_loops(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """The combinational core (flip-flops cut) must be acyclic."""
    entry = _rule("DFT001")
    circuit = ctx.circuit
    comb = [
        inst for inst in circuit.instances.values()
        if not inst.is_sequential and not inst.cell.is_filler
    ]
    names = {inst.name for inst in comb}
    indegree: Dict[str, int] = {inst.name: 0 for inst in comb}
    fanout: Dict[str, List[str]] = {}
    for inst in comb:
        for _, net_name in inst.input_conns():
            net = circuit.nets.get(net_name)
            if net is None or net.driver is None:
                continue
            driver = net.driver[0]
            if driver != PORT and driver in names:
                indegree[inst.name] += 1
                fanout.setdefault(driver, []).append(inst.name)
    ready = [name for name in indegree if indegree[name] == 0]
    resolved = 0
    while ready:
        name = ready.pop()
        resolved += 1
        for downstream in fanout.get(name, []):
            indegree[downstream] -= 1
            if indegree[downstream] == 0:
                ready.append(downstream)
    if resolved != len(comb):
        stuck = [name for name in indegree if indegree[name] > 0]
        shown = ", ".join(stuck[:10])
        more = f" (+{len(stuck) - 10} more)" if len(stuck) > 10 else ""
        yield make_diagnostic(
            entry,
            f"combinational loop through {len(stuck)} cell(s): "
            f"{shown}{more}",
            obj=stuck[0] if stuck else None,
        )


@rule(PACK, "DFT003", "unscanned flip-flop", severity=ERROR,
      hint="full-scan flows must stitch every sequential cell into a "
           "chain")
def check_unscanned_flip_flops(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """After scan insertion, every flip-flop is a scan cell in a chain."""
    entry = _rule("DFT003")
    if ctx.chains is None:
        return
    members = {name for chain in ctx.chains.chains for name in chain}
    for inst in ctx.circuit.flip_flops():
        if not inst.cell.is_scan:
            yield make_diagnostic(
                entry,
                f"flip-flop {inst.name!r} ({inst.cell.name}) is not a "
                f"scan cell after scan insertion",
                obj=inst.name,
            )
        elif inst.name not in members:
            yield make_diagnostic(
                entry,
                f"flip-flop {inst.name!r} is stitched into no scan chain",
                obj=inst.name,
            )


def _through_buffers(circuit: Circuit, net: Optional[str],
                     limit: int = 64) -> Optional[str]:
    """Trace ``net`` back through buffer cells to its logical source.

    The electrical fix-up (:func:`repro.netlist.fanout.fix_fanout`) may
    legally split a scan net and feed the TI pin through a fanout
    buffer; the shifted value is unchanged, so chain continuity must
    look through such non-inverting single-input cells.  ``limit``
    bounds the walk against buffer cycles (reported by DFT001 anyway).
    """
    for _ in range(limit):
        if net is None:
            return None
        obj = circuit.nets.get(net)
        if obj is None or obj.driver is None:
            return net
        inst_name, _pin = obj.driver
        inst = circuit.instances.get(inst_name)
        if inst is None or not inst.cell.is_buffer_like:
            return net
        inputs = inst.cell.input_pins
        net = inst.conns.get(inputs[0]) if inputs else None
    return net


@rule(PACK, "DFT004", "scan-chain continuity", severity=ERROR,
      hint="each chain must shift scan-in -> TI/Q hops -> scan-out "
           "within one clock domain")
def check_scan_chain_continuity(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Walk every chain: TI wiring, scan-out port, domain homogeneity."""
    entry = _rule("DFT004")
    if ctx.chains is None:
        return
    circuit = ctx.circuit
    chains = ctx.chains
    for idx, members in enumerate(chains.chains):
        label = f"chain{idx}"
        domain = (chains.clock_of_chain[idx]
                  if idx < len(chains.clock_of_chain) else None)
        expected = (chains.scan_in_ports[idx]
                    if idx < len(chains.scan_in_ports) else None)
        if expected is None or expected not in circuit.nets:
            yield make_diagnostic(
                entry,
                f"scan chain {idx}: scan-in port {expected!r} has no net",
                obj=label,
            )
            continue
        broken = False
        for name in members:
            inst = circuit.instances.get(name)
            if inst is None:
                yield make_diagnostic(
                    entry,
                    f"scan chain {idx}: member {name!r} is missing from "
                    f"the netlist",
                    obj=label,
                )
                broken = True
                break
            seq = inst.cell.sequential
            if seq is None or seq.scan_in is None:
                yield make_diagnostic(
                    entry,
                    f"scan chain {idx}: member {name!r} "
                    f"({inst.cell.name}) has no scan-in pin",
                    obj=label,
                )
                broken = True
                break
            got = inst.conns.get(seq.scan_in)
            if got != expected \
                    and _through_buffers(circuit, got) != expected:
                yield make_diagnostic(
                    entry,
                    f"scan chain {idx} cut at {name!r}: TI reads "
                    f"{got!r}, expected {expected!r}",
                    obj=label,
                )
                broken = True
                break
            if domain is not None:
                # After CTS the clock pin sees a clock-tree net; trace
                # it back through the tree buffers to the root domain.
                clock = _through_buffers(circuit, circuit.clock_of(name))
                if clock is not None and clock != domain:
                    yield make_diagnostic(
                        entry,
                        f"scan chain {idx} mixes clock domains: "
                        f"{name!r} is on {clock!r}, chain is {domain!r}",
                        obj=label,
                    )
                    broken = True
                    break
            expected = inst.conns.get(seq.output_pin)
            if expected is None:
                yield make_diagnostic(
                    entry,
                    f"scan chain {idx}: member {name!r} drives no Q net",
                    obj=label,
                )
                broken = True
                break
        if broken or not members:
            continue
        so = (chains.scan_out_ports[idx]
              if idx < len(chains.scan_out_ports) else None)
        try:
            out_net = circuit.output_net(so) if so is not None else None
        except KeyError:
            out_net = None
        if out_net is None:
            yield make_diagnostic(
                entry,
                f"scan chain {idx}: scan-out port {so!r} reads no net",
                obj=label,
            )
        elif out_net != expected \
                and _through_buffers(circuit, out_net) != expected:
            yield make_diagnostic(
                entry,
                f"scan chain {idx}: scan-out {so!r} reads {out_net!r}, "
                f"not the chain tail {expected!r}",
                obj=label,
            )


@rule(PACK, "DFT005", "scan-chain balance", severity=WARNING,
      hint="rebalance the chains: l_max bounds test application time")
def check_scan_chain_balance(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Chains must respect the configured l_max and stay balanced."""
    entry = _rule("DFT005")
    if ctx.chains is None or not ctx.chains.chains:
        return
    chains = ctx.chains
    if ctx.max_chain_length is not None \
            and chains.max_length > ctx.max_chain_length:
        yield make_diagnostic(
            entry,
            f"l_max {chains.max_length} exceeds the configured "
            f"maximum chain length {ctx.max_chain_length}",
            obj=f"chain{max(range(chains.n_chains), key=lambda i: len(chains.chains[i]))}",
        )
    by_domain: Dict[str, List[int]] = {}
    for idx, members in enumerate(chains.chains):
        domain = (chains.clock_of_chain[idx]
                  if idx < len(chains.clock_of_chain) else "")
        by_domain.setdefault(domain, []).append(len(members))
    for domain in sorted(by_domain):
        lengths = by_domain[domain]
        if len(lengths) < 2:
            continue
        longest, shortest = max(lengths), min(lengths)
        slack = max(1, math.ceil(0.2 * longest))
        if longest - shortest > slack:
            yield make_diagnostic(
                entry,
                f"chains in domain {domain!r} imbalanced: lengths "
                f"{shortest}..{longest} (tolerance {slack})",
                obj=domain,
            )


@rule(PACK, "DFT006", "test-enable fanout", severity=WARNING,
      hint="buffer the TE/TR distribution (fix_electrical) before "
           "layout")
def check_test_enable_fanout(ctx: NetlistContext) -> Iterable[Diagnostic]:
    """TE/TR distribution nets must not overload their drivers."""
    entry = _rule("DFT006")
    circuit = ctx.circuit
    control_nets: List[str] = []
    seen = set()
    for inst in circuit.instances.values():
        seq = inst.cell.sequential
        if seq is None:
            continue
        for pin in (seq.scan_enable, seq.test_point_enable):
            if pin is None:
                continue
            net = inst.conns.get(pin)
            if net is not None and net not in seen:
                seen.add(net)
                control_nets.append(net)
    for net_name in control_nets:
        if ctx.nets is not None and net_name not in ctx.nets:
            continue
        net = circuit.nets.get(net_name)
        if net is None:
            continue
        driver = circuit.driver_instance(net_name)
        if driver is None:
            continue  # port-driven root: pad drive is not modelled
        load_ff = 0.0
        for inst_name, pin in net.sinks:
            if inst_name == PORT:
                continue
            sink = circuit.instances.get(inst_name)
            if sink is not None and pin in sink.cell.pins:
                load_ff += sink.cell.pin_cap_ff(pin)
        if load_ff > driver.cell.max_cap_ff:
            yield make_diagnostic(
                entry,
                f"test-enable net {net_name!r} loads its driver "
                f"{driver.name!r} with {load_ff:.1f} fF "
                f"(max {driver.cell.max_cap_ff:.1f} fF)",
                obj=net_name,
            )


@rule(PACK, "DFT007", "test-point clock domain", severity=WARNING,
      hint="a TSFF must be clocked by the domain of the registers "
           "around its insertion net (paper Section 3.1)")
def check_test_point_clock_domains(
        ctx: NetlistContext) -> Iterable[Diagnostic]:
    """Each TSFF's clock must match the majority domain around it."""
    entry = _rule("DFT007")
    circuit = ctx.circuit
    if len(circuit.clocks) < 2:
        return  # single-domain designs cannot misassign
    from repro.tpi.clockdomain import nearest_domains

    for inst in circuit.instances.values():
        if not inst.cell.is_tsff:
            continue
        seq = inst.cell.sequential
        d_net = inst.conns.get(seq.data_pin) if seq else None
        # Post-CTS the clock pin sees a tree net; resolve to the domain.
        clock = _through_buffers(circuit, circuit.clock_of(inst.name))
        if d_net is None or clock is None:
            continue  # NL004/DFT002 territory
        if ctx.nets is not None and d_net not in ctx.nets:
            continue
        counts = nearest_domains(circuit, d_net)
        # The TSFF itself sits on its D net at distance 0 (weight 1.0);
        # subtract that self-vote before comparing.
        counts[clock] = counts.get(clock, 0.0) - 1.0
        if not counts:
            continue
        best = max(sorted(counts), key=lambda dom: counts[dom])
        if best != clock and counts[best] > counts[clock] + 0.5:
            yield make_diagnostic(
                entry,
                f"test point {inst.name!r} is clocked by {clock!r} but "
                f"its neighbourhood is dominated by {best!r}",
                obj=inst.name,
            )


def _rule(rule_id: str) -> Rule:
    """Registered rule object for ``rule_id`` in this pack."""
    for entry in pack_rules(PACK):
        if entry.id == rule_id:
            return entry
    raise KeyError(rule_id)  # pragma: no cover - registration bug


def structural_rules() -> List[Rule]:
    """The cheap integrity subset ``validate()`` runs between steps."""
    return [r for r in pack_rules(PACK) if r.structural]


def lint_netlist(
    circuit: Circuit,
    *,
    chains: Optional["ScanChains"] = None,
    max_chain_length: Optional[int] = None,
    n_chains: Optional[int] = None,
    nets: Optional[Iterable[str]] = None,
    structural_only: bool = False,
) -> LintReport:
    """Run the netlist/DFT pack on ``circuit``.

    Args:
        circuit: Design to audit.
        chains: Scan-chain configuration; enables DFT003-DFT005.
        max_chain_length: Configured l_max cap (DFT005).
        n_chains: Configured fixed chain count (recorded for context).
        nets: Restrict per-net/per-instance rules to this set — the
            post-ECO dirty-set mode.  Whole-design rules still run.
        structural_only: Run only the ``validate()`` integrity subset.

    Returns:
        The sorted :class:`repro.lint.core.LintReport`.
    """
    ctx = NetlistContext(
        circuit=circuit,
        chains=chains,
        max_chain_length=max_chain_length,
        n_chains=n_chains,
        nets=frozenset(nets) if nets is not None else None,
    )
    rules = structural_rules() if structural_only else pack_rules(PACK)
    return run_rules(rules, ctx, pack=PACK)


__all__ = [
    "NetlistContext",
    "PACK",
    "lint_netlist",
    "structural_rules",
]
