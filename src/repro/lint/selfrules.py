"""Determinism self-lint: AST rules over the ``repro`` sources.

The flow's parallel executor, content-hash result cache and resume
journal all assume the flow is a pure function of ``(netlist, config,
library)`` — bit-identical across processes and hash seeds.  These
rules flag the Python constructs that silently break that property:

* ``SELF001`` — iterating an unordered ``set`` (hash-seed-dependent
  order escaping into results; the historical ``levelize`` bug);
* ``SELF002`` — the process-global ``random`` RNG inside flow code
  (seeded ``random.Random`` instances are fine);
* ``SELF003`` — wall-clock reads (``time.time``, ``datetime.now``)
  outside the observability/journal layers;
* ``SELF004`` — mutable default arguments (state leaking across
  calls, and across cached runs);
* ``SELF005`` — materialising a set into a ``list``/``tuple`` without
  sorting (an ordered container with unordered contents);
* ``SELF006`` — impurity inside the cache-key functions themselves
  (clock/RNG/environment reads would split or poison the cache).

Findings can be suppressed in place with a ``# lint: disable=SELFxxx``
comment on the flagged line, or grandfathered via the committed
baseline (see ``python -m repro.lint.self``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from repro.lint import annotations
from repro.lint.core import (
    Diagnostic,
    ERROR,
    LintReport,
    Rule,
    WARNING,
    make_diagnostic,
    pack_rules,
    rule,
    run_rules,
)

PACK = "self"

#: Modules allowed to read the wall clock: observability timestamps,
#: journal records, executor scheduling, the service daemon's job
#: clocks and the CLI/chaos layers sit outside the cached computation
#: by design.
WALLCLOCK_ALLOWED = (
    "obs/",
    "core/resilience.py",
    "core/executor.py",
    "chaos.py",
    "cli.py",
    "service/",
)

#: Functions that compute (or feed) content-hash cache keys; their
#: bodies must stay pure functions of their inputs.
CACHE_KEY_FUNCTIONS = frozenset({
    "flow_cache_key",
    "config_fingerprint",
    "circuit_structural_hash",
    "derive_seed",
    "_canonical",
})

#: Module references that make a cache-key function impure.
_IMPURE_MODULES = frozenset({
    "time", "random", "datetime", "os", "uuid", "secrets",
})


@dataclass
class SourceModule:
    """One parsed Python source file under audit."""

    path: str  # posix path relative to the audited source root
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        """Stripped source text of a 1-based line (empty when absent)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppresses(self, lineno: int, rule_id: str) -> bool:
        """True when the line carries ``# lint: disable=...,<rule_id>``.

        Backed by real comment tokens (:mod:`repro.lint.annotations`),
        so directive text quoted inside a docstring is inert, and the
        rule list is properly comma-separated.
        """
        return annotations.suppresses(self.text, lineno, rule_id)


@dataclass
class SourceContext:
    """The file set one self-lint run audits.

    ``caches`` is scratch space for rule packs that compute one
    expensive per-module analysis shared by several rules (the
    CFG/dataflow packs cache their per-module findings here).
    """

    modules: List[SourceModule] = field(default_factory=list)
    caches: Dict[str, Any] = field(default_factory=dict, repr=False)


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that are unambiguously sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _emit(module: SourceModule, node: ast.AST, entry: Rule,
          message: str) -> Optional[Diagnostic]:
    """Build a finding for ``node`` unless the line suppresses it."""
    lineno = getattr(node, "lineno", None)
    if lineno is not None and module.suppresses(lineno, entry.id):
        return None
    return make_diagnostic(
        entry, message,
        file=module.path,
        line=lineno,
        snippet=module.line(lineno) if lineno else None,
    )


@rule(PACK, "SELF001", "unordered set iteration", severity=ERROR,
      hint="iterate sorted(...) or dedupe with dict.fromkeys(...) to "
           "keep a deterministic first-seen order")
def check_set_iteration(ctx: SourceContext) -> Iterable[Diagnostic]:
    """``for x in set(...)`` leaks hash-seed-dependent order."""
    entry = _rule("SELF001")
    for module in ctx.modules:
        iters: List[ast.AST] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                diag = _emit(
                    module, it, entry,
                    "iteration over an unordered set: the visit order "
                    "depends on the process hash seed",
                )
                if diag:
                    yield diag


@rule(PACK, "SELF002", "process-global RNG", severity=ERROR,
      hint="use a seeded random.Random(seed) instance threaded through "
           "the call")
def check_global_rng(ctx: SourceContext) -> Iterable[Diagnostic]:
    """``random.<fn>()`` uses the unseeded process-global generator."""
    entry = _rule("SELF002")
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr != "Random"):
                diag = _emit(
                    module, node, entry,
                    f"call to the process-global RNG "
                    f"random.{func.attr}()",
                )
                if diag:
                    yield diag


@rule(PACK, "SELF003", "wall-clock read in flow code", severity=WARNING,
      hint="cached flow stages must not observe wall time; use "
           "time.perf_counter for durations or move the read into the "
           "obs/journal layer")
def check_wallclock(ctx: SourceContext) -> Iterable[Diagnostic]:
    """``time.time()``/``datetime.now()`` outside the allowed layers."""
    entry = _rule("SELF003")
    for module in ctx.modules:
        if module.path.startswith(WALLCLOCK_ALLOWED):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            hit = None
            if isinstance(value, ast.Name):
                if value.id == "time" and func.attr in ("time", "time_ns"):
                    hit = f"time.{func.attr}()"
                elif value.id == "datetime" and func.attr in (
                        "now", "utcnow", "today"):
                    hit = f"datetime.{func.attr}()"
            elif (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "datetime"
                    and func.attr in ("now", "utcnow", "today")):
                hit = f"datetime.{value.attr}.{func.attr}()"
            if hit:
                diag = _emit(
                    module, node, entry,
                    f"wall-clock read {hit} in a flow module",
                )
                if diag:
                    yield diag


@rule(PACK, "SELF004", "mutable default argument", severity=WARNING,
      hint="default to None and create the container inside the "
           "function")
def check_mutable_defaults(ctx: SourceContext) -> Iterable[Diagnostic]:
    """``def f(x=[])`` shares one container across all calls."""
    entry = _rule("SELF004")
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict,
                                               ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                )
                if mutable:
                    diag = _emit(
                        module, default, entry,
                        f"mutable default argument in {node.name}()",
                    )
                    if diag:
                        yield diag


@rule(PACK, "SELF005", "unsorted set materialisation", severity=ERROR,
      hint="wrap in sorted(...) — list(set(...)) freezes a "
           "hash-seed-dependent order into an ordered container")
def check_set_materialisation(ctx: SourceContext) -> Iterable[Diagnostic]:
    """``list(set(...))`` snapshots nondeterministic order."""
    entry = _rule("SELF005")
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and _is_set_expr(node.args[0])):
                diag = _emit(
                    module, node, entry,
                    f"{node.func.id}() over an unordered set freezes a "
                    f"hash-seed-dependent order",
                )
                if diag:
                    yield diag


@rule(PACK, "SELF006", "impure cache-key function", severity=ERROR,
      hint="cache-key functions must be pure functions of their "
           "declared inputs — no clock, RNG, environment or id() reads")
def check_cache_key_purity(ctx: SourceContext) -> Iterable[Diagnostic]:
    """The content-hash functions must stay deterministic."""
    entry = _rule("SELF006")
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name not in CACHE_KEY_FUNCTIONS:
                continue
            for sub in ast.walk(node):
                impure = None
                if isinstance(sub, ast.Name) and sub.id in _IMPURE_MODULES:
                    impure = f"reference to {sub.id!r}"
                elif (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"):
                    impure = "call to id() (address-dependent)"
                if impure:
                    diag = _emit(
                        module, sub, entry,
                        f"cache-key function {node.name}() contains an "
                        f"impure {impure}",
                    )
                    if diag:
                        yield diag


def _known_rule_ids() -> frozenset:
    """Every registered rule ID across all packs.

    Imports the rule-pack modules lazily (they register on import) so
    this module stays importable without dragging the netlist stack
    in, and so the packs that import *us* don't cycle.
    """
    import repro.lint.concrules  # noqa: F401 - registration side effect
    import repro.lint.netlist_rules  # noqa: F401
    import repro.lint.resrules  # noqa: F401
    from repro.lint.core import RULE_PACKS

    ids: List[str] = []
    for pack_name in sorted(RULE_PACKS):
        ids.extend(entry.id for entry in RULE_PACKS[pack_name])
    return frozenset(ids)


@rule(PACK, "SELF007", "malformed lint directive", severity=ERROR,
      hint="directives are `# lint: disable=<RULE,...>`, "
           "`shared-under=<lock>`, `holds=<lock>` or `durable`; a "
           "typo silently suppresses nothing")
def check_directives(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Unknown ``# lint:`` keys and disable= lists naming rules that
    do not exist (both would otherwise fail silently)."""
    entry = _rule("SELF007")
    known_ids = _known_rule_ids()
    for module in ctx.modules:
        for directive in annotations.parse_directives(module.text):
            if directive.key not in annotations.KNOWN_KEYS:
                yield make_diagnostic(
                    entry,
                    f"unknown lint directive key "
                    f"{directive.key!r}",
                    file=module.path,
                    line=directive.lineno,
                    snippet=module.line(directive.lineno),
                )
            elif directive.key == "disable":
                for value in directive.values:
                    if value not in known_ids:
                        yield make_diagnostic(
                            entry,
                            f"lint: disable references unknown rule "
                            f"id {value!r}",
                            file=module.path,
                            line=directive.lineno,
                            snippet=module.line(directive.lineno),
                        )


def _rule(rule_id: str) -> Rule:
    """Registered rule object for ``rule_id`` in this pack."""
    for entry in pack_rules(PACK):
        if entry.id == rule_id:
            return entry
    raise KeyError(rule_id)  # pragma: no cover - registration bug


def default_source_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def collect_modules(root: Path,
                    files: Optional[Sequence[Path]] = None
                    ) -> SourceContext:
    """Parse the ``.py`` files under ``root`` into a lint context.

    Args:
        root: Source root; findings use posix paths relative to it.
        files: Explicit file list (still reported relative to root);
            defaults to every ``*.py`` under ``root``.

    Raises:
        SyntaxError: A file does not parse — the self-lint refuses to
            silently skip unparseable sources.
    """
    if files is None:
        files = sorted(
            p for p in root.rglob("*.py") if "__pycache__" not in p.parts
        )
    ctx = SourceContext()
    for path in files:
        text = Path(path).read_text(encoding="utf-8")
        try:
            rel = Path(path).resolve().relative_to(root.resolve())
            rel_text = rel.as_posix()
        except ValueError:
            rel_text = Path(path).as_posix()
        ctx.modules.append(SourceModule(
            path=rel_text,
            text=text,
            tree=ast.parse(text, filename=str(path)),
            lines=text.splitlines(),
        ))
    return ctx


def lint_sources(root: Optional[Path] = None,
                 files: Optional[Sequence[Path]] = None) -> LintReport:
    """Run the determinism self-lint over a source tree.

    Args:
        root: Source root (defaults to the installed ``repro``
            package).
        files: Explicit subset of files to audit.

    Returns:
        The sorted :class:`repro.lint.core.LintReport`.
    """
    ctx = collect_modules(root or default_source_root(), files)
    return run_rules(pack_rules(PACK), ctx, pack=PACK)


__all__ = [
    "CACHE_KEY_FUNCTIONS",
    "PACK",
    "SourceContext",
    "SourceModule",
    "WALLCLOCK_ALLOWED",
    "collect_modules",
    "default_source_root",
    "lint_sources",
]
