"""Intraprocedural control-flow graphs over Python ``ast`` functions.

This is the structural half of the lint engine's dataflow tier (the
solver lives in :mod:`repro.lint.dataflow`): :func:`build_cfg` turns
one ``ast.FunctionDef`` / ``ast.AsyncFunctionDef`` into basic blocks
connected by *normal* and *exceptional* edges, precise enough for
lockset and resource-lifecycle analyses over the daemon and executor
sources:

* ``if``/``while``/``for`` branch and loop edges, with ``break`` /
  ``continue`` routed through any ``finally`` bodies they cross;
* ``try``/``except``/``else``/``finally`` — every block whose
  statements can raise gets exceptional edges to the innermost
  enclosing handlers (and, for unmatched exceptions, through the
  ``finally`` body to the outer context or the virtual raise exit);
* ``finally`` bodies are *duplicated* per continuation (normal
  completion, ``return`` unwind, exception propagation, ``break`` /
  ``continue``), so a ``return`` inside ``try`` really flows through
  the ``finally`` copy to the exit block — no phantom paths;
* ``with`` / ``async with`` desugar to a :class:`WithEnter` event plus
  an implicit ``finally`` holding the matching :class:`WithExit`, so
  analyses see ``__exit__`` run on both the normal and the
  exceptional path — exactly how ``with self._lock:`` releases;
* ``await`` points end their basic block (the event loop may
  interleave arbitrary work there), and ``async for`` / ``async with``
  inject synthetic :class:`ast.Await` markers for the suspension
  their protocols imply.

Blocks carry *events*: plain ``ast`` statements (compound statements
never appear — their structure became edges, their hot expressions
became synthetic ``ast.Expr`` / ``ast.Assign`` events) plus the
synthetic :class:`WithEnter` / :class:`WithExit` / :class:`Assume`
markers.  :class:`Assume` records the value a branch test took on an
edge, letting a flow analysis drop ``x`` facts on the ``x is None``
arm of a guard.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Edge kinds.
NORMAL = "normal"
EXC = "exc"


@dataclass
class WithEnter:
    """Synthetic event: a ``with`` item's ``__enter__`` ran."""

    item: ast.withitem
    lineno: int
    is_async: bool = False


@dataclass
class WithExit:
    """Synthetic event: a ``with`` item's ``__exit__`` ran."""

    item: ast.withitem
    lineno: int
    is_async: bool = False


@dataclass
class Assume:
    """Synthetic event: on this path, ``test`` evaluated to ``value``."""

    test: ast.expr
    value: bool
    lineno: int


Event = Union[ast.stmt, WithEnter, WithExit, Assume]


class Block:
    """One basic block: a straight-line event list plus edges."""

    __slots__ = ("id", "label", "events", "succs", "preds")

    def __init__(self, block_id: int, label: str = ""):
        self.id = block_id
        self.label = label
        self.events: List[Event] = []
        self.succs: List[Tuple["Block", str]] = []
        self.preds: List[Tuple["Block", str]] = []

    def add_succ(self, other: "Block", kind: str = NORMAL) -> None:
        for succ, succ_kind in self.succs:
            if succ is other and succ_kind == kind:
                return
        self.succs.append((other, kind))
        other.preds.append((self, kind))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Block {self.id} {self.label!r} events={len(self.events)}>"


class CFG:
    """The control-flow graph of one function.

    Attributes:
        func: The analysed ``ast`` function node.
        entry: Virtual entry block (always first).
        exit: Virtual normal-return exit block.
        raises: Virtual exceptional exit (uncaught exception leaves
            the function here).  Pruned when unreachable.
        blocks: All reachable blocks, entry first, stable ids.
    """

    def __init__(self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]):
        self.func = func
        self.name = func.name
        self.lineno = func.lineno
        self.is_async = isinstance(func, ast.AsyncFunctionDef)
        self.blocks: List[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.raises = self.new_block("raise")

    def new_block(self, label: str = "") -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def prune_unreachable(self) -> None:
        """Drop blocks unreachable from entry (dead joins, unused
        virtual exits), fixing up predecessor lists."""
        seen = {self.entry.id}
        stack = [self.entry]
        while stack:
            block = stack.pop()
            for succ, _ in block.succs:
                if succ.id not in seen:
                    seen.add(succ.id)
                    stack.append(succ)
        self.blocks = [b for b in self.blocks if b.id in seen]
        for block in self.blocks:
            block.succs = [(s, k) for s, k in block.succs if s.id in seen]
            block.preds = [(p, k) for p, k in block.preds if p.id in seen]
        # The virtual exits stay addressable as cfg.exit / cfg.raises
        # even when pruned; their edge lists must not keep pointing at
        # dropped blocks.
        for block in (self.exit, self.raises):
            if block.id not in seen:
                block.succs = []
                block.preds = []


# -- builder helpers --------------------------------------------------------


class _FinallyCtx:
    """One active ``finally`` (or implicit with-exit) region.

    ``body`` is the statement list of a real ``finally``; ``with_exit``
    is the synthetic event of a ``with`` statement's implicit one.
    ``outer_stack`` / ``outer_frame`` snapshot the context *around*
    the owning statement, because every duplicated copy of the body
    runs in that outer context (a ``return`` inside a ``finally``
    unwinds only the finallies outside it).
    """

    def __init__(self, body: Optional[Sequence[ast.stmt]],
                 with_exit: Optional[WithExit],
                 outer_stack: List["_FinallyCtx"],
                 outer_frame: "_Frame"):
        self.body = list(body or [])
        self.with_exit = with_exit
        self.outer_stack = list(outer_stack)
        self.outer_frame = outer_frame
        self.exc_entry: Optional[Block] = None


class _Frame:
    """Exception-routing context: where a raise at this point lands."""

    def __init__(self, parent: Optional["_Frame"]):
        self.parent = parent

    def exc_entries(self) -> List[Block]:
        raise NotImplementedError


class _RootFrame(_Frame):
    def __init__(self, cfg: CFG):
        super().__init__(None)
        self.cfg = cfg

    def exc_entries(self) -> List[Block]:
        return [self.cfg.raises]


class _HandlerFrame(_Frame):
    """Inside a ``try`` body: handlers first, then (for an unmatched
    exception) the finally/outer fallthrough."""

    def __init__(self, parent: _Frame, builder: "_Builder",
                 handler_entries: List[Block], catch_all: bool,
                 fctx: Optional[_FinallyCtx]):
        super().__init__(parent)
        self.builder = builder
        self.handler_entries = handler_entries
        self.catch_all = catch_all
        self.fctx = fctx

    def exc_entries(self) -> List[Block]:
        out = list(self.handler_entries)
        if not self.catch_all:
            if self.fctx is not None:
                out.append(self.builder.finally_exc_entry(self.fctx))
            else:
                out.extend(self.parent.exc_entries())
        return out


class _FinallyFrame(_Frame):
    """Inside code whose exceptions must run a ``finally`` (or a
    with-exit) before propagating: handler bodies, ``else`` clauses
    and ``with`` bodies."""

    def __init__(self, parent: _Frame, builder: "_Builder",
                 fctx: _FinallyCtx):
        super().__init__(parent)
        self.builder = builder
        self.fctx = fctx

    def exc_entries(self) -> List[Block]:
        return [self.builder.finally_exc_entry(self.fctx)]


class _LoopCtx:
    """break/continue targets plus the finally depth to unwind to."""

    def __init__(self, head: Block, after: Block, finally_depth: int):
        self.head = head
        self.after = after
        self.finally_depth = finally_depth


#: Statement types that cannot raise (no exceptional edges needed).
_NON_RAISING = (ast.Pass, ast.Break, ast.Continue, ast.Global,
                ast.Nonlocal)


def _safe_expr(node: Optional[ast.expr]) -> bool:
    """True for expressions that cannot raise: names, literals, and
    ``is``/``not``/boolean combinations of them (the shape of branch
    guards like ``fh is not None``)."""
    if node is None:
        return True
    if isinstance(node, (ast.Name, ast.Constant)):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return _safe_expr(node.operand)
    if isinstance(node, ast.BoolOp):
        return all(_safe_expr(v) for v in node.values)
    if isinstance(node, ast.Compare):
        return (all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops)
                and _safe_expr(node.left)
                and all(_safe_expr(c) for c in node.comparators))
    return False


def can_raise(event: Event) -> bool:
    """Whether executing ``event`` can raise (conservative)."""
    if isinstance(event, (Assume,)):
        return False
    if isinstance(event, (WithEnter, WithExit)):
        return True
    if isinstance(event, _NON_RAISING):
        return False
    if isinstance(event, ast.Expr) and _safe_expr(event.value):
        return False  # docstrings, bare literals, identity guards
    if isinstance(event, ast.Return) and _safe_expr(event.value):
        return False
    return True


def _contains_await(node: ast.AST) -> bool:
    """True when evaluating ``node`` suspends (ignoring nested defs)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Await):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


def _located(node: ast.AST, like: ast.AST) -> ast.AST:
    """Copy source locations onto a synthetic node (for findings)."""
    ast.copy_location(node, like)
    return ast.fix_missing_locations(node)


def _truthy_const(test: ast.expr) -> Optional[bool]:
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return None


class _Builder:
    def __init__(self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]):
        self.cfg = CFG(func)
        self.current: Optional[Block] = self.cfg.entry
        self.frame: _Frame = _RootFrame(self.cfg)
        self.finally_stack: List[_FinallyCtx] = []
        self.loops: List[_LoopCtx] = []

    # -- event emission --------------------------------------------------
    def emit(self, event: Event) -> None:
        if self.current is None:
            return
        self.current.events.append(event)
        if can_raise(event):
            for target in self.frame.exc_entries():
                self.current.add_succ(target, EXC)
        if isinstance(event, ast.AST) and _contains_await(event):
            # Suspension point: the loop may run anything here.
            nxt = self.cfg.new_block("after-await")
            self.current.add_succ(nxt)
            self.current = nxt

    def emit_expr(self, expr: ast.expr) -> None:
        """Surface a control expression (branch test, loop iterable)
        as a synthetic ``ast.Expr`` event so analyses see its reads."""
        self.emit(_located(ast.Expr(value=expr), expr))

    def _start_block(self, pred: Optional[Block], label: str = "",
                     kind: str = NORMAL) -> Block:
        block = self.cfg.new_block(label)
        if pred is not None:
            pred.add_succ(block, kind)
        return block

    # -- finally duplication ---------------------------------------------
    def _build_copy(self, fctx: _FinallyCtx,
                    finally_stack: List[_FinallyCtx]
                    ) -> Tuple[Block, Optional[Block]]:
        """Build one fresh copy of a finally (or with-exit) body in the
        region's outer context; returns (entry, normal exit or None)."""
        saved = (self.current, self.frame, self.finally_stack)
        entry = self.cfg.new_block("finally")
        self.current = entry
        self.frame = fctx.outer_frame
        self.finally_stack = list(finally_stack)
        if fctx.with_exit is not None:
            self.emit(WithExit(fctx.with_exit.item, fctx.with_exit.lineno,
                               fctx.with_exit.is_async))
        else:
            self.visit_body(fctx.body)
        out = self.current
        self.current, self.frame, self.finally_stack = saved
        return entry, out

    def finally_exc_entry(self, fctx: _FinallyCtx) -> Block:
        """The memoised exception-propagation copy of a finally body:
        runs the body, then re-raises into the outer frame."""
        if fctx.exc_entry is None:
            entry, out = self._build_copy(fctx, fctx.outer_stack)
            fctx.exc_entry = entry
            if out is not None:
                for target in fctx.outer_frame.exc_entries():
                    out.add_succ(target, EXC)
        return fctx.exc_entry

    def _unwind(self, keep_depth: int, terminal: Block) -> None:
        """Route the current block through every active finally deeper
        than ``keep_depth`` (innermost first), ending at ``terminal``.
        Used by return/break/continue."""
        cursor = self.current
        assert cursor is not None
        for index in range(len(self.finally_stack) - 1, keep_depth - 1, -1):
            fctx = self.finally_stack[index]
            entry, out = self._build_copy(fctx, self.finally_stack[:index])
            cursor.add_succ(entry)
            if out is None:
                # The finally body itself returned/raised: the original
                # continuation is abandoned (Python semantics).
                self.current = None
                return
            cursor = out
        cursor.add_succ(terminal)
        self.current = None

    # -- statement dispatch ----------------------------------------------
    def visit_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if self.current is None:
                return  # unreachable code after return/raise/break
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt, stmt.items)
        elif isinstance(stmt, ast.Return):
            self.emit(stmt)
            if self.current is not None:
                self._unwind(0, self.cfg.exit)
        elif isinstance(stmt, ast.Raise):
            self.emit(stmt)
            self.current = None
        elif isinstance(stmt, ast.Break):
            self.emit(stmt)
            if self.loops and self.current is not None:
                loop = self.loops[-1]
                self._unwind(loop.finally_depth, loop.after)
        elif isinstance(stmt, ast.Continue):
            self.emit(stmt)
            if self.loops and self.current is not None:
                loop = self.loops[-1]
                self._unwind(loop.finally_depth, loop.head)
        elif isinstance(stmt, ast.Match):
            self._visit_match(stmt)
        else:
            # Simple statements — and nested function/class definitions,
            # which are separate analysis units and stay opaque here.
            self.emit(stmt)

    # -- structured statements -------------------------------------------
    def _assume(self, test: ast.expr, value: bool) -> None:
        if self.current is not None:
            self.current.events.append(
                Assume(test, value, getattr(test, "lineno", 0)))

    def _visit_if(self, node: ast.If) -> None:
        self.emit_expr(node.test)
        cond = self.current
        if cond is None:
            return
        self.current = self._start_block(cond, "then")
        self._assume(node.test, True)
        self.visit_body(node.body)
        then_exit = self.current
        self.current = self._start_block(cond, "else")
        self._assume(node.test, False)
        self.visit_body(node.orelse)
        else_exit = self.current
        exits = [b for b in (then_exit, else_exit) if b is not None]
        if not exits:
            self.current = None
            return
        join = self.cfg.new_block("endif")
        for block in exits:
            block.add_succ(join)
        self.current = join

    def _visit_while(self, node: ast.While) -> None:
        head = self._start_block(self.current, "while")
        self.current = head
        self.emit_expr(node.test)
        head = self.current  # emit may split on await
        after = self.cfg.new_block("endwhile")
        const = _truthy_const(node.test)
        body_entry = self._start_block(head, "while-body")
        self.loops.append(_LoopCtx(head, after, len(self.finally_stack)))
        self.current = body_entry
        self._assume(node.test, True)
        self.visit_body(node.body)
        if self.current is not None:
            self.current.add_succ(head)
        self.loops.pop()
        if const is not True:
            # Loop can exit by the test turning false (else clause runs
            # then, when present).
            exit_block = self._start_block(head, "while-else")
            self.current = exit_block
            self._assume(node.test, False)
            self.visit_body(node.orelse)
            if self.current is not None:
                self.current.add_succ(after)
        self.current = after

    def _visit_for(self, node: Union[ast.For, ast.AsyncFor]) -> None:
        is_async = isinstance(node, ast.AsyncFor)
        self.emit_expr(node.iter)
        head = self._start_block(self.current, "for")
        after = self.cfg.new_block("endfor")
        body_entry = self._start_block(head, "for-body")
        self.loops.append(_LoopCtx(head, after, len(self.finally_stack)))
        self.current = body_entry
        if is_async:
            # The implicit __anext__ await: a suspension point.
            self.emit(_located(
                ast.Expr(value=ast.Await(value=ast.Constant(value=None))),
                node))
        # Model the loop-variable binding for def/use analyses.
        self.emit(_located(
            ast.Assign(targets=[node.target], value=node.iter), node))
        self.visit_body(node.body)
        if self.current is not None:
            self.current.add_succ(head)
        self.loops.pop()
        # Exhaustion path (runs the else clause when present).
        exit_block = self._start_block(head, "for-else")
        self.current = exit_block
        self.visit_body(node.orelse)
        if self.current is not None:
            self.current.add_succ(after)
        self.current = after

    def _visit_match(self, node: ast.Match) -> None:
        self.emit_expr(node.subject)
        cond = self.current
        if cond is None:
            return
        join = self.cfg.new_block("endmatch")
        for case in node.cases:
            self.current = self._start_block(cond, "case")
            if case.guard is not None:
                self.emit_expr(case.guard)
            self.visit_body(case.body)
            if self.current is not None:
                self.current.add_succ(join)
        # Conservative no-match fallthrough.
        cond.add_succ(join)
        self.current = join

    def _visit_try(self, node: ast.stmt) -> None:
        handlers = node.handlers
        finalbody = node.finalbody
        outer_frame = self.frame
        fctx: Optional[_FinallyCtx] = None
        if finalbody:
            fctx = _FinallyCtx(finalbody, None, self.finally_stack,
                               outer_frame)
        handler_entries = [self.cfg.new_block("except") for _ in handlers]
        catch_all = any(
            h.type is None
            or (isinstance(h.type, ast.Name)
                and h.type.id in ("BaseException", "Exception"))
            for h in handlers
        )
        around_frame: _Frame = outer_frame
        if fctx is not None:
            around_frame = _FinallyFrame(outer_frame, self, fctx)
            self.finally_stack.append(fctx)

        body_entry = self._start_block(self.current, "try")
        self.frame = _HandlerFrame(around_frame, self, handler_entries,
                                   catch_all, fctx)
        self.current = body_entry
        self.visit_body(node.body)
        # The else clause runs only after a clean body; its exceptions
        # skip this try's handlers.
        self.frame = around_frame
        if node.orelse and self.current is not None:
            self.visit_body(node.orelse)
        body_exit = self.current

        handler_exits: List[Block] = []
        for handler, entry in zip(handlers, handler_entries):
            self.frame = around_frame
            self.current = entry
            if handler.type is not None:
                self.emit_expr(handler.type)
            self.visit_body(handler.body)
            if self.current is not None:
                handler_exits.append(self.current)

        self.frame = outer_frame
        if fctx is not None:
            self.finally_stack.pop()

        exits = [b for b in [body_exit] + handler_exits if b is not None]
        if not exits:
            self.current = None
            return
        join = self.cfg.new_block("endtry")
        for block in exits:
            block.add_succ(join)
        self.current = join
        if fctx is not None:
            # Normal-completion copy of the finally body, inlined.
            self.visit_body(finalbody)

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith],
                    items: Sequence[ast.withitem]) -> None:
        is_async = isinstance(node, ast.AsyncWith)
        item = items[0]
        self.emit_expr(item.context_expr)
        self.emit(WithEnter(item, getattr(item.context_expr, "lineno",
                                          node.lineno), is_async))
        if self.current is None:
            return
        if item.optional_vars is not None:
            binding = ast.Assign(targets=[item.optional_vars],
                                 value=item.context_expr)
            binding._lint_with_binding = True  # not a fresh acquisition
            self.emit(_located(binding, node))
        exit_event = WithExit(item, getattr(item.context_expr, "lineno",
                                            node.lineno), is_async)
        fctx = _FinallyCtx(None, exit_event, self.finally_stack, self.frame)
        outer_frame = self.frame
        self.finally_stack.append(fctx)
        self.frame = _FinallyFrame(outer_frame, self, fctx)
        self.current = self._start_block(self.current, "with-body")
        if len(items) > 1:
            self._visit_with(node, items[1:])
        else:
            self.visit_body(node.body)
        body_exit = self.current
        self.finally_stack.pop()
        self.frame = outer_frame
        if body_exit is None:
            self.current = None
            return
        # Normal-path __exit__ runs in the outer exception context.
        self.current = self._start_block(body_exit, "with-exit")
        self.emit(WithExit(item, exit_event.lineno, is_async))

    # -- entry -----------------------------------------------------------
    def build(self) -> CFG:
        self.visit_body(self.cfg.func.body)
        if self.current is not None:
            self.current.add_succ(self.cfg.exit)
        self.cfg.prune_unreachable()
        return self.cfg


def build_cfg(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


# -- function discovery -----------------------------------------------------


@dataclass
class FunctionUnit:
    """One analysable function with its lexical context."""

    func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    qualname: str
    cls: Optional[ast.ClassDef]

    @property
    def is_async(self) -> bool:
        return isinstance(self.func, ast.AsyncFunctionDef)


def function_units(tree: ast.Module) -> List[FunctionUnit]:
    """Every function/method/closure in a module, outermost first.

    Nested functions become their own units (their bodies are *not*
    re-visited as part of the enclosing function's CFG); closures keep
    the innermost enclosing class as context, because a closure inside
    a method typically captures ``self``.
    """
    units: List[FunctionUnit] = []

    def walk(body: Sequence[ast.stmt], prefix: str,
             cls: Optional[ast.ClassDef]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                units.append(FunctionUnit(stmt, qual, cls))
                walk(stmt.body, f"{qual}.<locals>.", cls)
            elif isinstance(stmt, ast.ClassDef):
                walk(stmt.body, f"{prefix}{stmt.name}.", stmt)
            elif isinstance(stmt, (ast.If, ast.While, ast.For,
                                   ast.AsyncFor, ast.With, ast.AsyncWith,
                                   ast.Try)):
                for field_name in ("body", "orelse", "finalbody"):
                    walk(getattr(stmt, field_name, []) or [], prefix, cls)
                for handler in getattr(stmt, "handlers", []) or []:
                    walk(handler.body, prefix, cls)

    walk(tree.body, "", None)
    return units


def expr_name(node: ast.AST) -> Optional[str]:
    """Canonical dotted/indexed name of a simple expression.

    ``self._lock`` -> ``"self._lock"``; ``entry[0]`` -> ``"entry[0]"``;
    anything without a stable spelling -> None.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = expr_name(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):
        base = expr_name(node.value)
        if base is None:
            return None
        index = node.slice
        if isinstance(index, ast.Constant):
            return f"{base}[{index.value!r}]"
        sub = expr_name(index)
        return f"{base}[{sub}]" if sub else None
    return None


def root_name(name: str) -> str:
    """The leading identifier of a canonical name (``entry[0]`` ->
    ``entry``; ``self._lock`` -> ``self``)."""
    out = name
    for sep in (".", "["):
        head = out.split(sep, 1)[0]
        if len(head) < len(out):
            out = head
    return out


def walk_shallow(node: ast.AST):
    """``ast.walk`` that does not descend into nested function, lambda
    or class bodies (they are separate analysis units)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)


__all__ = [
    "Assume",
    "Block",
    "CFG",
    "EXC",
    "Event",
    "FunctionUnit",
    "NORMAL",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "can_raise",
    "expr_name",
    "function_units",
    "root_name",
    "walk_shallow",
]
