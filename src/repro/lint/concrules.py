"""Concurrency rule pack: lockset dataflow over the daemon sources.

An Eraser-style *must-hold* lockset analysis (Savage et al., SOSP '97)
runs over each function's CFG: the fact at a program point is the set
of locks held on **every** path reaching it (join = intersection).
Locks enter the set through ``with self._lock:`` regions and
``.acquire()`` calls, and leave through ``with``-exit (on both the
normal and the exceptional edge — the CFG duplicates ``__exit__``
per path) and ``.release()``.

Annotations drive the checks (see :mod:`repro.lint.annotations`):
``# lint: shared-under=_lock`` on an attribute assignment declares the
guarded fields, ``# lint: holds=_lock`` on a ``def`` line declares a
caller-must-hold contract (the function is analysed with the lock
pre-acquired, and its call sites are checked).

Rules:

* ``CONC001`` — guarded attribute accessed, or holds-annotated method
  called, on some path where the declared lock is not held;
* ``CONC002`` — manual ``.acquire()`` with a path to return (error)
  or raise (warning) that never releases and never hands the lock out;
* ``CONC003`` — blocking call (``time.sleep``, ``os.fsync``,
  ``subprocess.*``) while holding a lock;
* ``CONC004`` — blocking call in an ``async def`` body (stalls the
  event loop for every connected client);
* ``CONC005`` — re-acquiring a non-reentrant ``threading.Lock``
  already held on every path (self-deadlock);
* ``CONC006`` — invoking a user-supplied callback (``cancel_check``,
  ``*_hook``, ``*_callback``...) while holding a lock;
* ``CONC007`` — ``await`` while holding a (threading) lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.lint import annotations
from repro.lint.cfg import (
    Assume,
    CFG,
    Event,
    FunctionUnit,
    WithEnter,
    WithExit,
    build_cfg,
    expr_name,
    function_units,
    root_name,
    walk_shallow,
)
from repro.lint.core import (
    Diagnostic,
    ERROR,
    Rule,
    WARNING,
    make_diagnostic,
    pack_rules,
    rule,
)
from repro.lint.dataflow import ForwardAnalysis, exit_facts, observe, solve
from repro.lint.selfrules import SourceContext, SourceModule

PACK = "conc"

#: Dotted call names that block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.fsync",
    "os.fdatasync",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
})

#: Additional calls that must not run on the event-loop thread.
ASYNC_BLOCKING_CALLS = BLOCKING_CALLS | frozenset({"open"})

#: Callable names treated as user-supplied callbacks for CONC006.
CALLBACK_NAMES = frozenset({"cancel_check", "callback", "hook"})
CALLBACK_SUFFIXES = ("_callback", "_check", "_hook", "_cb")

#: Methods allowed to touch guarded attributes unlocked: construction
#: and teardown run before/after the object is shared.
EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__"})

#: Events that open a nested scope; their bodies are separate units.
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True)
class Finding:
    """One pack finding, pre-suppression."""

    rule_id: str
    lineno: int
    message: str
    severity: Optional[str] = None


# -- lock discovery ---------------------------------------------------------


def _lock_kind(value: ast.AST) -> Optional[str]:
    """``"lock"``/``"rlock"`` when ``value`` constructs a threading
    lock, else None."""
    if not isinstance(value, ast.Call):
        return None
    name = expr_name(value.func)
    if name in ("threading.Lock", "Lock", "multiprocessing.Lock"):
        return "lock"
    if name in ("threading.RLock", "RLock", "multiprocessing.RLock"):
        return "rlock"
    return None


def _class_locks(cls: Optional[ast.ClassDef]) -> Dict[str, str]:
    """``self.<attr> = threading.Lock()`` assignments anywhere in the
    class body: attr name -> lock kind."""
    out: Dict[str, str] = {}
    if cls is None:
        return out
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        kind = _lock_kind(node.value)
        if kind is None:
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                out[target.attr] = kind
    return out


def _local_locks(func: ast.AST) -> Dict[str, str]:
    """Function-local ``v = threading.Lock()`` bindings."""
    out: Dict[str, str] = {}
    for node in walk_shallow(func):
        if isinstance(node, ast.Assign):
            kind = _lock_kind(node.value)
            if kind is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = kind
    return out


def _canon_lock(name: str, unit: FunctionUnit,
                local_locks: Dict[str, str]) -> str:
    """Canonical lockset spelling of an annotation value: bare names
    inside a class refer to ``self`` attributes unless they name a
    local lock variable."""
    if "." in name or "[" in name or name in local_locks:
        return name
    if unit.cls is not None:
        return f"self.{name}"
    return name


def _guarded_attrs(module: SourceModule,
                   cls: Optional[ast.ClassDef]) -> Dict[str, str]:
    """``# lint: shared-under=<lock>`` declarations: attr -> lock."""
    out: Dict[str, str] = {}
    if cls is None:
        return out
    for node in ast.walk(cls):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        guards = annotations.directive_values(
            module.text, node.lineno, "shared-under")
        if not guards:
            continue
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                out[target.attr] = guards[0]
    return out


def _holds_contracts(module: SourceModule,
                     cls: Optional[ast.ClassDef]) -> Dict[str, Tuple[str, ...]]:
    """Methods annotated ``# lint: holds=<lock>``: name -> lock attrs."""
    out: Dict[str, Tuple[str, ...]] = {}
    if cls is None:
        return out
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            held = annotations.directive_values(
                module.text, stmt.lineno, "holds")
            if held:
                out[stmt.name] = held
    return out


# -- the lockset analysis ---------------------------------------------------


class LocksetAnalysis(ForwardAnalysis):
    """Must-hold lockset: intersection join over canonical lock names."""

    def __init__(self, known_locks: Dict[str, str],
                 entry: FrozenSet[str]):
        self.known_locks = known_locks
        self._entry = entry

    def entry_fact(self, cfg: CFG) -> FrozenSet[str]:
        return self._entry

    def join(self, facts: List[FrozenSet[str]]) -> FrozenSet[str]:
        out = facts[0]
        for fact in facts[1:]:
            out = out & fact
        return out

    def transfer(self, fact: FrozenSet[str], event: Event,
                 block) -> FrozenSet[str]:
        if isinstance(event, WithEnter):
            name = expr_name(event.item.context_expr)
            if name in self.known_locks:
                return fact | {name}
            return fact
        if isinstance(event, WithExit):
            name = expr_name(event.item.context_expr)
            if name in self.known_locks:
                return fact - {name}
            return fact
        if isinstance(event, Assume) or isinstance(event, _OPAQUE):
            return fact
        if isinstance(event, ast.AST):
            for node in walk_shallow(event):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)):
                    continue
                base = expr_name(node.func.value)
                if base not in self.known_locks:
                    continue
                if node.func.attr == "acquire":
                    fact = fact | {base}
                elif node.func.attr == "release":
                    fact = fact - {base}
        return fact


class AcquireAnalysis(ForwardAnalysis):
    """May-held manual acquisitions: union join over (name, line).

    Tracks every ``<expr>.acquire()`` (not just class locks — spec-lock
    tuples like ``entry[0].acquire()`` count); an acquisition escapes
    (stops being this function's responsibility) when its root variable
    is returned or yielded.
    """

    def entry_fact(self, cfg: CFG) -> FrozenSet[Tuple[str, int]]:
        return frozenset()

    def join(self, facts):
        out = facts[0]
        for fact in facts[1:]:
            out = out | fact
        return out

    def transfer(self, fact, event: Event, block):
        if isinstance(event, (WithEnter, WithExit, Assume)):
            return fact
        if isinstance(event, _OPAQUE) or not isinstance(event, ast.AST):
            return fact
        for node in walk_shallow(event):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            base = expr_name(node.func.value)
            if base is None:
                continue
            if node.func.attr == "acquire":
                fact = fact | {(base, node.lineno)}
            elif node.func.attr == "release":
                fact = frozenset(
                    entry for entry in fact if entry[0] != base)
        escaped: List[str] = []
        if isinstance(event, (ast.Return, ast.Expr)):
            value = getattr(event, "value", None)
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                value = value.value
            elif not isinstance(event, ast.Return):
                value = None
            if value is not None:
                escaped = [n.id for n in walk_shallow(value)
                           if isinstance(n, ast.Name)]
        if escaped:
            fact = frozenset(
                entry for entry in fact
                if root_name(entry[0]) not in escaped)
        return fact

    def exc_facts(self, fact, event: Event, block):
        """A raising ``acquire()`` never took the lock, and a raising
        ``release()`` still gave it up — honour this event's removals
        but not its additions (pre ∩ post)."""
        return [fact & self.transfer(fact, event, block)]


# -- per-unit checks --------------------------------------------------------


def _leaf_call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_callbackish(name: str) -> bool:
    return name in CALLBACK_NAMES or name.endswith(CALLBACK_SUFFIXES)


def _blocking_hits(event: ast.AST, names: FrozenSet[str]) -> List[Tuple[int, str]]:
    hits: List[Tuple[int, str]] = []
    for node in walk_shallow(event):
        if isinstance(node, ast.Call):
            dotted = expr_name(node.func)
            if dotted in names:
                hits.append((node.lineno, dotted))
    return hits


def _check_unit(module: SourceModule, unit: FunctionUnit,
                findings: List[Finding]) -> None:
    func = unit.func
    class_locks = _class_locks(unit.cls)
    local_locks = _local_locks(func)
    guards = _guarded_attrs(module, unit.cls)
    contracts = _holds_contracts(module, unit.cls)

    known: Dict[str, str] = dict(local_locks)
    for attr, kind in class_locks.items():
        known[f"self.{attr}"] = kind
    held_names = annotations.directive_values(
        module.text, func.lineno, "holds")
    entry_locks = []
    for name in held_names:
        canon = _canon_lock(name, unit, local_locks)
        entry_locks.append(canon)
        known.setdefault(canon, "unknown")

    cfg = build_cfg(func)
    analysis = LocksetAnalysis(known, frozenset(entry_locks))
    ins = solve(cfg, analysis)

    exempt = func.name in EXEMPT_METHODS

    def inspect(lockset, event, block) -> None:
        if isinstance(event, WithEnter):
            name = expr_name(event.item.context_expr)
            if (name in lockset and known.get(name) == "lock"
                    and not event.is_async):
                findings.append(Finding(
                    "CONC005", event.lineno,
                    f"re-acquiring non-reentrant lock {name} already "
                    f"held on every path here (self-deadlock)"))
            return
        if isinstance(event, (WithExit, Assume)):
            return
        if isinstance(event, _OPAQUE) or not isinstance(event, ast.AST):
            return
        for node in walk_shallow(event):
            if not isinstance(node, ast.AST):
                continue
            # CONC001: guarded attribute touched without its lock.
            if (not exempt
                    and isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guards):
                required = _canon_lock(guards[node.attr], unit, local_locks)
                if required not in lockset:
                    findings.append(Finding(
                        "CONC001", node.lineno,
                        f"self.{node.attr} is declared shared-under="
                        f"{guards[node.attr]} but {required} is not "
                        f"held on every path to this access"))
            if isinstance(node, ast.Call):
                dotted = expr_name(node.func)
                leaf = _leaf_call_name(node.func)
                # CONC005 for manual re-acquire.
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"):
                    base = expr_name(node.func.value)
                    if base in lockset and known.get(base) == "lock":
                        findings.append(Finding(
                            "CONC005", node.lineno,
                            f"re-acquiring non-reentrant lock {base} "
                            f"already held on every path here "
                            f"(self-deadlock)"))
                # CONC001: holds-contract call sites.
                if (not exempt
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and node.func.attr in contracts
                        and node.func.attr != func.name):
                    for want in contracts[node.func.attr]:
                        canon = _canon_lock(want, unit, local_locks)
                        if canon not in lockset:
                            findings.append(Finding(
                                "CONC001", node.lineno,
                                f"call to self.{node.func.attr}() which "
                                f"requires holds={want}, but {canon} is "
                                f"not held on every path here"))
                if lockset:
                    held = ", ".join(sorted(lockset))
                    # CONC003: blocking call under a lock.
                    if dotted in BLOCKING_CALLS:
                        findings.append(Finding(
                            "CONC003", node.lineno,
                            f"blocking call {dotted}() while holding "
                            f"{held}"))
                    # CONC006: arbitrary user code under a lock.
                    if leaf is not None and _is_callbackish(leaf):
                        findings.append(Finding(
                            "CONC006", node.lineno,
                            f"callback {leaf}() invoked while holding "
                            f"{held}: user code under a lock can "
                            f"re-enter or stall the owner",
                            severity=WARNING))
            # CONC007: suspension point with a threading lock held.
            if isinstance(node, ast.Await) and lockset:
                findings.append(Finding(
                    "CONC007",
                    getattr(node, "lineno", event.lineno
                            if hasattr(event, "lineno") else 0),
                    f"await while holding {', '.join(sorted(lockset))}: "
                    f"the lock blocks other threads for the whole "
                    f"suspension"))

    observe(cfg, analysis, ins, inspect)

    # CONC004: event-loop blocking calls anywhere in an async body.
    if unit.is_async:
        for block in cfg.blocks:
            for event in block.events:
                if (isinstance(event, (WithEnter, WithExit, Assume))
                        or isinstance(event, _OPAQUE)
                        or not isinstance(event, ast.AST)):
                    continue
                for lineno, dotted in _blocking_hits(
                        event, ASYNC_BLOCKING_CALLS):
                    findings.append(Finding(
                        "CONC004", lineno,
                        f"blocking call {dotted}() inside async def "
                        f"{func.name}: it stalls the event loop; use "
                        f"loop.run_in_executor or an async API"))

    # CONC002: manual acquisitions that leak on some path.
    acquire = AcquireAnalysis()
    acq_ins = solve(cfg, acquire)
    exits = exit_facts(cfg, acquire, acq_ins)
    at_exit = exits.get("exit", frozenset())
    at_raise = exits.get("raise", frozenset())
    for name, lineno in sorted(at_exit):
        findings.append(Finding(
            "CONC002", lineno,
            f"{name}.acquire() has a path to return that never "
            f"releases the lock"))
    for name, lineno in sorted(at_raise - at_exit):
        findings.append(Finding(
            "CONC002", lineno,
            f"{name}.acquire() is released on the normal path but "
            f"leaks when an exception unwinds; use try/finally or "
            f"with",
            severity=WARNING))


# -- pack plumbing ----------------------------------------------------------


def _module_findings(ctx: SourceContext) -> Dict[str, List[Finding]]:
    caches = getattr(ctx, "caches", None)
    if caches is not None and PACK in caches:
        return caches[PACK]
    out: Dict[str, List[Finding]] = {}
    for module in ctx.modules:
        findings: List[Finding] = []
        for unit in function_units(module.tree):
            _check_unit(module, unit, findings)
        out[module.path] = sorted(
            set(findings),
            key=lambda f: (f.lineno, f.rule_id, f.message))
    if caches is not None:
        caches[PACK] = out
    return out


def _rule(rule_id: str) -> Rule:
    for entry in pack_rules(PACK):
        if entry.id == rule_id:
            return entry
    raise KeyError(rule_id)  # pragma: no cover - registration bug


def _emit_rule(ctx: SourceContext, rule_id: str) -> Iterable[Diagnostic]:
    entry = _rule(rule_id)
    found = _module_findings(ctx)
    for module in ctx.modules:
        for finding in found.get(module.path, []):
            if finding.rule_id != rule_id:
                continue
            if module.suppresses(finding.lineno, rule_id):
                continue
            yield make_diagnostic(
                entry, finding.message,
                file=module.path,
                line=finding.lineno,
                snippet=module.line(finding.lineno),
                severity=finding.severity,
            )


@rule(PACK, "CONC001", "guarded state accessed without its lock",
      severity=ERROR,
      hint="wrap the access in `with self.<lock>:` or annotate the "
           "enclosing function with `# lint: holds=<lock>` when every "
           "caller already holds it")
def check_guarded_access(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Lockset analysis over ``shared-under``/``holds`` declarations."""
    return _emit_rule(ctx, "CONC001")


@rule(PACK, "CONC002", "lock acquired but not released on some path",
      severity=ERROR,
      hint="prefer `with lock:`; for manual acquisition, release in a "
           "finally block")
def check_acquire_leak(ctx: SourceContext) -> Iterable[Diagnostic]:
    """May-analysis of manual ``.acquire()`` lifetimes."""
    return _emit_rule(ctx, "CONC002")


@rule(PACK, "CONC003", "blocking call while holding a lock",
      severity=ERROR,
      hint="move the slow operation outside the critical section; "
           "capture what it needs under the lock, then release")
def check_blocking_under_lock(ctx: SourceContext) -> Iterable[Diagnostic]:
    """time.sleep/os.fsync/subprocess under a held lock."""
    return _emit_rule(ctx, "CONC003")


@rule(PACK, "CONC004", "blocking call in an async function",
      severity=ERROR,
      hint="use await asyncio.sleep / loop.run_in_executor so the "
           "event loop keeps serving other connections")
def check_async_blocking(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Event-loop stalls inside ``async def`` bodies."""
    return _emit_rule(ctx, "CONC004")


@rule(PACK, "CONC005", "double-acquire of a non-reentrant lock",
      severity=ERROR,
      hint="use threading.RLock, or restructure so the locked region "
           "does not call back into locked methods")
def check_double_acquire(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Re-entering a plain Lock self-deadlocks."""
    return _emit_rule(ctx, "CONC005")


@rule(PACK, "CONC006", "callback invoked while holding a lock",
      severity=WARNING,
      hint="snapshot state under the lock and invoke the callback "
           "after releasing it")
def check_callback_under_lock(ctx: SourceContext) -> Iterable[Diagnostic]:
    """User-supplied hooks running inside critical sections."""
    return _emit_rule(ctx, "CONC006")


@rule(PACK, "CONC007", "await while holding a lock",
      severity=ERROR,
      hint="release the lock before awaiting, or use an asyncio lock "
           "confined to the event loop")
def check_await_under_lock(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Suspension points inside threading-lock critical sections."""
    return _emit_rule(ctx, "CONC007")


def lint_concurrency(root=None, files=None):
    """Run only the concurrency pack over a source tree."""
    from repro.lint.core import run_rules
    from repro.lint.selfrules import collect_modules, default_source_root

    ctx = collect_modules(root or default_source_root(), files)
    return run_rules(pack_rules(PACK), ctx, pack=PACK)


__all__ = [
    "ASYNC_BLOCKING_CALLS",
    "BLOCKING_CALLS",
    "CALLBACK_NAMES",
    "LocksetAnalysis",
    "AcquireAnalysis",
    "PACK",
    "lint_concurrency",
]
