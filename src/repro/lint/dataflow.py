"""Forward worklist dataflow solver over :mod:`repro.lint.cfg` graphs.

An analysis supplies three things: an entry fact, a ``join`` over
incoming facts (set intersection for must-analyses like locksets, set
union for may-analyses like open resources), and a ``transfer`` that
pushes one fact across one block event.  Facts must be immutable and
comparable (frozensets, tuples) — the solver iterates to a fixed point
and needs ``==`` to detect it.

Exceptional edges get a deliberately conservative out-fact: the join of
the block's entry fact with the fact after *every* event in the block,
because an exception may fire before, between, or after any of them.
That is sound for both must-facts (a lock might not be held yet) and
may-facts (a resource might already be open).  Analyses that only care
about normal-path completion (e.g. the durability rule, where
``try: os.fsync(...) except OSError: pass`` is an accepted best-effort
pattern) set ``follow_exc = False`` and exceptional edges carry
nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, List, TypeVar

from repro.lint.cfg import CFG, EXC, Block, Event, can_raise

Fact = TypeVar("Fact")

#: Fixed-point iteration budget; real functions converge in a handful
#: of passes, so blowing this means the lattice is not monotone.
MAX_ITERATIONS = 10_000


class ForwardAnalysis(Generic[Fact]):
    """Base class for forward dataflow analyses."""

    #: Propagate facts along exceptional edges.  Leave True unless the
    #: property genuinely only matters on normal completion.
    follow_exc = True

    def entry_fact(self, cfg: CFG) -> Fact:
        raise NotImplementedError

    def join(self, facts: List[Fact]) -> Fact:
        raise NotImplementedError

    def transfer(self, fact: Fact, event: Event, block: Block) -> Fact:
        raise NotImplementedError

    def exc_facts(self, fact: Fact, event: Event,
                  block: Block) -> List[Fact]:
        """Facts live when an exception escapes *during* ``event``.

        The default is maximally conservative — the event may have run
        not at all or completely, so both the pre- and post-fact are
        possible.  Analyses with atomic effects override this: e.g. an
        assignment binds only after its RHS fully evaluated, so a
        raising RHS leaves no fresh obligation behind.
        """
        return [fact, self.transfer(fact, event, block)]


class AnalysisDiverged(RuntimeError):
    """The worklist failed to converge — a non-monotone transfer."""


def _block_out(analysis: ForwardAnalysis, block: Block,
               in_fact: Any) -> Any:
    out = in_fact
    for event in block.events:
        out = analysis.transfer(out, event, block)
    return out


def _block_exc_out(analysis: ForwardAnalysis, block: Block,
                   in_fact: Any) -> Any:
    # An exception escapes during some *raising* event; every earlier
    # event has completed normally by then.
    facts = []
    fact = in_fact
    for event in block.events:
        if can_raise(event):
            facts.extend(analysis.exc_facts(fact, event, block))
        fact = analysis.transfer(fact, event, block)
    if not facts:  # exc edge without raising events: be conservative
        facts = [in_fact]
    return analysis.join(facts)


def solve(cfg: CFG, analysis: ForwardAnalysis) -> Dict[int, Any]:
    """Run ``analysis`` to fixed point; returns block-id -> entry fact.

    Blocks never reached by the analysis (e.g. the ``raises`` exit when
    ``follow_exc`` is off) are absent from the result.
    """
    ins: Dict[int, Any] = {cfg.entry.id: analysis.entry_fact(cfg)}
    worklist: List[Block] = [cfg.entry]
    queued = {cfg.entry.id}
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > MAX_ITERATIONS:
            raise AnalysisDiverged(
                f"dataflow failed to converge in {cfg.name} "
                f"(line {cfg.lineno})")
        block = worklist.pop(0)
        queued.discard(block.id)
        in_fact = ins[block.id]
        normal_out = _block_out(analysis, block, in_fact)
        exc_out = None
        if analysis.follow_exc:
            exc_out = _block_exc_out(analysis, block, in_fact)
        for succ, kind in block.succs:
            if kind == EXC:
                if not analysis.follow_exc:
                    continue
                fact = exc_out
            else:
                fact = normal_out
            if succ.id in ins:
                merged = analysis.join([ins[succ.id], fact])
                if merged == ins[succ.id]:
                    continue
                ins[succ.id] = merged
            else:
                ins[succ.id] = fact
            if succ.id not in queued:
                queued.add(succ.id)
                worklist.append(succ)
    return ins


def observe(cfg: CFG, analysis: ForwardAnalysis, ins: Dict[int, Any],
            callback: Callable[[Any, Event, Block], None]) -> None:
    """Replay the converged solution, invoking ``callback`` with the
    fact *before* each event — how rule packs inspect program points."""
    for block in cfg.blocks:
        if block.id not in ins:
            continue
        fact = ins[block.id]
        for event in block.events:
            callback(fact, event, block)
            fact = analysis.transfer(fact, event, block)


def exit_facts(cfg: CFG, analysis: ForwardAnalysis,
               ins: Dict[int, Any]) -> Dict[str, Any]:
    """The facts flowing *into* the virtual exits, pre-joined.

    Returns a dict with (at most) keys ``"exit"`` (normal return) and
    ``"raise"`` (uncaught exception); a key is absent when no analysed
    path reaches that exit.
    """
    out: Dict[str, Any] = {}
    for label, exit_block in (("exit", cfg.exit), ("raise", cfg.raises)):
        facts = []
        for pred, kind in exit_block.preds:
            if pred.id not in ins:
                continue
            if kind == EXC:
                if not analysis.follow_exc:
                    continue
                facts.append(_block_exc_out(analysis, pred, ins[pred.id]))
            else:
                facts.append(_block_out(analysis, pred, ins[pred.id]))
        if facts:
            out[label] = analysis.join(facts)
    return out


__all__ = [
    "AnalysisDiverged",
    "ForwardAnalysis",
    "MAX_ITERATIONS",
    "exit_facts",
    "observe",
    "solve",
]
