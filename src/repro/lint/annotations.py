"""``# lint:`` source annotations, parsed from real comment tokens.

The lint engine reads a small directive language out of comments:

* ``# lint: disable=CONC001,SELF003`` — suppress the listed rules on
  this line (comma-separated; unknown IDs are themselves a finding,
  see ``SELF007``);
* ``# lint: shared-under=_lock`` — on an attribute assignment inside a
  class, declares the attribute as guarded by the named lock attribute
  (the concurrency pack then requires the lock to be held at every
  access);
* ``# lint: holds=_lock`` — on a ``def`` line, declares that callers
  must hold the named lock when invoking this function (it enters the
  lockset analysis pre-acquired, and call sites are checked);
* ``# lint: durable`` — on a ``def`` line, requires every normal path
  that writes a stream to ``flush`` and ``os.fsync`` before returning
  (the store/journal write-visibility contract).

Parsing uses :mod:`tokenize`, not substring scans, so directive text
*mentioned* inside a docstring or string literal is inert — only real
comments count.  Several directives may share one comment
(``# lint: durable holds=_lock``); values are comma-separated.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

#: Directive keys the engine understands; anything else is a typo and
#: SELF007 reports it (a misspelled suppression silently suppressing
#: nothing is worse than an error).
KNOWN_KEYS = ("disable", "shared-under", "holds", "durable")

_MARKER = "lint:"


@dataclass(frozen=True)
class Directive:
    """One parsed ``key`` or ``key=v1,v2`` directive."""

    key: str
    values: Tuple[str, ...]
    lineno: int


def _parse_comment(comment: str, lineno: int) -> List[Directive]:
    body = comment.lstrip("#").strip()
    if not body.startswith(_MARKER):
        return []
    out: List[Directive] = []
    for token in body[len(_MARKER):].split():
        if "=" in token:
            key, _, raw = token.partition("=")
            values = tuple(v.strip() for v in raw.split(",") if v.strip())
        else:
            key, values = token, ()
        out.append(Directive(key=key.strip(), values=values, lineno=lineno))
    return out


@lru_cache(maxsize=512)
def parse_directives(text: str) -> Tuple[Directive, ...]:
    """Every ``# lint:`` directive in a source text, in order.

    Tolerates tokenisation failures (the caller already ``ast``-parsed
    the file, so these are exotic) by returning what was read so far.
    """
    out: List[Directive] = []
    reader = io.StringIO(text).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                out.extend(_parse_comment(tok.string, tok.start[0]))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    return tuple(out)


def line_directives(text: str, lineno: int) -> List[Directive]:
    """Directives attached to one 1-based source line."""
    return [d for d in parse_directives(text) if d.lineno == lineno]


def directive_values(text: str, lineno: int, key: str) -> Tuple[str, ...]:
    """All values of ``key`` directives on ``lineno`` (flattened)."""
    out: List[str] = []
    for directive in line_directives(text, lineno):
        if directive.key == key:
            out.extend(directive.values)
    return tuple(out)


def has_flag(text: str, lineno: int, key: str) -> bool:
    """True when a bare ``key`` directive sits on ``lineno``."""
    return any(d.key == key for d in line_directives(text, lineno))


def suppresses(text: str, lineno: int, rule_id: str) -> bool:
    """True when ``lineno`` carries ``# lint: disable=...,<rule_id>``."""
    return rule_id in directive_values(text, lineno, "disable")


def directives_by_key(text: str) -> Dict[str, List[Directive]]:
    """All directives of a source text, grouped by key."""
    out: Dict[str, List[Directive]] = {}
    for directive in parse_directives(text):
        out.setdefault(directive.key, []).append(directive)
    return out


__all__ = [
    "Directive",
    "KNOWN_KEYS",
    "directive_values",
    "directives_by_key",
    "has_flag",
    "line_directives",
    "parse_directives",
    "suppresses",
]
