"""CI entry point of the determinism self-lint.

Usage::

    python -m repro.lint.self                 # gate against the baseline
    python -m repro.lint.self --json out.json # also write the report
    python -m repro.lint.self --update-baseline

Exit codes: 0 — no findings outside the committed baseline; 4 — new
findings (any severity); 2 — usage error.  The baseline lives at the
repository root as ``lint-baseline.json``: it grandfathers the
violations that existed when a rule landed, so CI blocks only *new*
nondeterminism.  Shrink it over time by fixing entries and re-running
with ``--update-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.lint.core import Baseline
from repro.lint.selfrules import default_source_root, lint_sources

#: Exit code when new (non-baselined) findings are present; distinct
#: from argparse's usage errors (2) and the sweep's degraded exit (3).
EXIT_LINT_FAILED = 4


def default_baseline_path() -> Path:
    """``lint-baseline.json`` at the repository root.

    Resolved relative to the installed package (``src/repro`` ->
    repository root) so the command works from any working directory
    of a source checkout.
    """
    return default_source_root().parent.parent / "lint-baseline.json"


def main(argv: Optional[list] = None) -> int:
    """Run the self-lint, apply the baseline, report and gate."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.self",
        description="determinism self-lint over the repro sources",
    )
    parser.add_argument("--src", default=None, metavar="DIR",
                        help="source root to audit (default: the "
                             "installed repro package)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: lint-baseline.json at the repo "
                             "root)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full JSON report to PATH")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings instead of gating on them")
    args = parser.parse_args(argv)

    root = Path(args.src) if args.src else default_source_root()
    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path())

    report = lint_sources(root)

    if args.update_baseline:
        Baseline.from_report(report).save(baseline_path)
        print(f"wrote {len(report.diagnostics)} fingerprint(s) to "
              f"{baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    report.apply_baseline(baseline)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if report.diagnostics:
        print(report.format_text())
        print(f"\nself-lint: {len(report.diagnostics)} new finding(s) "
              f"not covered by {baseline_path.name}; fix them or "
              f"re-baseline with --update-baseline")
        return EXIT_LINT_FAILED
    print(f"self-lint OK: 0 new findings "
          f"({len(report.suppressed)} baselined, "
          f"{len(baseline)} baseline entries)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
