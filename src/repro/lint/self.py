"""CI entry point of the source self-lint (all Python rule packs).

Runs the determinism rules (``SELF001``–``SELF007``), the concurrency
lockset pack (``CONC001``–``CONC007``) and the resource/durability
pack (``RES001``–``RES004``) over one parse of the source tree.

Usage::

    python -m repro.lint.self                 # gate against the baseline
    python -m repro.lint.self --packs self    # determinism rules only
    python -m repro.lint.self --json out.json # also write the report
    python -m repro.lint.self --update-baseline

Exit codes: 0 — no findings outside the committed baseline; 4 — new
findings (any severity); 2 — usage error.  The baseline lives at the
repository root as ``lint-baseline.json``: it grandfathers the
violations that existed when a rule landed, so CI blocks only *new*
findings.  Shrink it over time by fixing entries and re-running with
``--update-baseline``; entries whose file no longer exists are
reported as stale (and dropped on the next ``--update-baseline``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.core import Baseline, LintReport, pack_rules, run_rules
from repro.lint.selfrules import collect_modules, default_source_root

#: Exit code when new (non-baselined) findings are present; distinct
#: from argparse's usage errors (2) and the sweep's degraded exit (3).
EXIT_LINT_FAILED = 4

#: Python-source rule packs, in run order.
DEFAULT_PACKS = ("self", "conc", "res")


def default_baseline_path() -> Path:
    """``lint-baseline.json`` at the repository root.

    Resolved relative to the installed package (``src/repro`` ->
    repository root) so the command works from any working directory
    of a source checkout.
    """
    return default_source_root().parent.parent / "lint-baseline.json"


def lint_python(root: Optional[Path] = None,
                files: Optional[Sequence[Path]] = None,
                packs: Sequence[str] = DEFAULT_PACKS) -> LintReport:
    """Run the selected source rule packs over one parsed tree.

    The modules are collected and parsed once; every pack runs against
    the same :class:`~repro.lint.selfrules.SourceContext` (sharing its
    analysis caches), and the reports merge into one.
    """
    # Importing the pack modules registers their rules.
    import repro.lint.concrules  # noqa: F401
    import repro.lint.resrules  # noqa: F401
    import repro.lint.selfrules  # noqa: F401

    ctx = collect_modules(root or default_source_root(), files)
    report = LintReport()
    for pack in packs:
        rules = pack_rules(pack)
        if not rules:
            raise ValueError(f"unknown rule pack {pack!r}")
        report.merge(run_rules(rules, ctx, pack=pack))
    return report


def main(argv: Optional[list] = None) -> int:
    """Run the source lint, apply the baseline, report and gate."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.self",
        description="static analysis over the repro sources "
                    "(determinism, concurrency, resource safety)",
    )
    parser.add_argument("--src", default=None, metavar="DIR",
                        help="source root to audit (default: the "
                             "installed repro package)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: lint-baseline.json at the repo "
                             "root)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full JSON report to PATH")
    parser.add_argument("--packs", default=",".join(DEFAULT_PACKS),
                        metavar="NAMES",
                        help="comma-separated rule packs to run "
                             f"(default: {','.join(DEFAULT_PACKS)})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings instead of gating on them")
    args = parser.parse_args(argv)

    root = Path(args.src) if args.src else default_source_root()
    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path())
    packs = tuple(p.strip() for p in args.packs.split(",") if p.strip())

    try:
        report = lint_python(root, packs=packs)
    except ValueError as exc:
        parser.error(str(exc))

    if args.update_baseline:
        Baseline.from_report(report).save(baseline_path)
        print(f"wrote {len(report.diagnostics)} fingerprint(s) to "
              f"{baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    report.apply_baseline(baseline)
    stale = baseline.stale_entries(root)

    if args.json:
        payload = report.to_json()
        payload["stale_baseline"] = stale
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    for fingerprint in stale:
        entry = stale[fingerprint]
        print(f"stale baseline entry {fingerprint}: "
              f"[{entry.get('rule')}] {entry.get('location')} no "
              f"longer exists; prune with --update-baseline")

    if report.diagnostics:
        print(report.format_text())
        print(f"\nself-lint: {len(report.diagnostics)} new finding(s) "
              f"not covered by {baseline_path.name}; fix them or "
              f"re-baseline with --update-baseline")
        return EXIT_LINT_FAILED
    print(f"self-lint OK: 0 new findings "
          f"({len(report.suppressed)} baselined, "
          f"{len(baseline)} baseline entries, {len(stale)} stale)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
