"""Core types of the static-analysis engine: rules, diagnostics, reports.

Everything that looks at the repo statically — the netlist/DFT rule
pack (:mod:`repro.lint.netlist_rules`), the determinism self-lint over
the Python sources (:mod:`repro.lint.selfrules`) and the legacy
:mod:`repro.netlist.validate` checks — speaks one vocabulary:

* a :class:`Rule` is a named, documented check with a stable ID and a
  default severity;
* a :class:`Diagnostic` is one finding: rule ID, severity, message,
  the netlist object or source location it anchors to, and a fix hint;
* a :class:`LintReport` collects findings plus per-rule runtimes and
  renders as text or JSON;
* a :class:`Baseline` is a committed set of diagnostic fingerprints:
  known findings are suppressed so CI fails only on *new* ones.

The engine itself is :func:`run_rules`; rule packs register their
rules with the :func:`rule` decorator against a named pack.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro import obs

#: Severity levels, most severe first (the order used for sorting and
#: for the report summary).
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

_SEVERITY_RANK = {sev: rank for rank, sev in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    Attributes:
        rule_id: Stable rule identifier (``"NL001"``, ``"SELF003"``...).
        severity: One of :data:`SEVERITIES`.
        message: Human-readable description of the specific finding.
        obj: Netlist object the finding anchors to (net, instance or
            chain name), when the subject is a design.
        file: Source file (repo-relative), when the subject is code.
        line: 1-based source line within :attr:`file`.
        snippet: Stripped source line, used for line-drift-tolerant
            fingerprints of source findings.
        hint: Short actionable fix suggestion, or None.
    """

    rule_id: str
    severity: str
    message: str
    obj: Optional[str] = None
    file: Optional[str] = None
    line: Optional[int] = None
    snippet: Optional[str] = None
    hint: Optional[str] = None

    def __post_init__(self):
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    @property
    def location(self) -> str:
        """``file:line`` for source findings, else the netlist object."""
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line else self.file
        return self.obj or "<design>"

    @property
    def fingerprint(self) -> str:
        """Stable identity of the finding, for baseline matching.

        Source findings key on ``(rule, file, stripped line text)`` so
        unrelated edits that merely shift line numbers do not invalidate
        a baseline; design findings key on ``(rule, object, message)``.
        Two identical findings share a fingerprint (one baseline entry
        then suppresses both); that is the intended granularity.
        """
        if self.file is not None:
            payload = f"{self.rule_id}|{self.file}|{self.snippet or ''}"
        else:
            payload = f"{self.rule_id}|{self.obj or ''}|{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """One-line human-readable rendering."""
        text = f"{self.location}: {self.severity} [{self.rule_id}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-data form."""
        out: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        for key in ("obj", "file", "line", "snippet", "hint"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule.

    Attributes:
        id: Stable identifier; never reuse a retired ID.
        pack: Rule-pack name (``"netlist"`` or ``"self"``).
        title: Short name of the property the rule checks.
        severity: Default severity of the rule's findings.
        check: Callable producing :class:`Diagnostic`s for a context.
        hint: Default fix hint attached to findings without one.
        structural: True for the cheap netlist-integrity subset that
            :func:`repro.netlist.validate.validate` runs between flow
            steps.
    """

    id: str
    pack: str
    title: str
    severity: str
    check: Callable[[Any], Iterable[Diagnostic]]
    hint: Optional[str] = None
    structural: bool = False


#: Registered rules, keyed by pack name.  Populated by the :func:`rule`
#: decorator at rule-module import time.
RULE_PACKS: Dict[str, List[Rule]] = {}


def rule(pack: str, rule_id: str, title: str, severity: str = ERROR,
         hint: Optional[str] = None, structural: bool = False):
    """Decorator registering a check function as a :class:`Rule`.

    The decorated function receives the pack's context object and
    yields :class:`Diagnostic`s; ``severity``/``hint`` are defaults the
    function may override per finding.
    """

    def decorate(fn: Callable[[Any], Iterable[Diagnostic]]) -> Callable:
        entries = RULE_PACKS.setdefault(pack, [])
        if any(r.id == rule_id for r in entries):
            raise ValueError(f"duplicate rule id {rule_id!r} in pack {pack!r}")
        entries.append(Rule(
            id=rule_id, pack=pack, title=title, severity=severity,
            check=fn, hint=hint, structural=structural,
        ))
        return fn

    return decorate


def pack_rules(pack: str) -> List[Rule]:
    """All rules registered under ``pack``, in registration order."""
    return list(RULE_PACKS.get(pack, []))


class LintError(ValueError):
    """Raised when a lint gate finds error-severity diagnostics.

    The full :class:`LintReport` stays reachable via :attr:`report`
    (and the legacy :attr:`diagnostics` alias), so callers never lose
    findings to message truncation.
    """

    def __init__(self, report: "LintReport", context: str = "lint"):
        self.report = report
        self.diagnostics = report.error_diagnostics
        shown = "; ".join(
            f"[{d.rule_id}] {d.message}" for d in self.diagnostics[:5]
        )
        more = (f" (+{len(self.diagnostics) - 5} more)"
                if len(self.diagnostics) > 5 else "")
        super().__init__(
            f"{context} failed: {len(self.diagnostics)} error(s): "
            f"{shown}{more}"
        )


@dataclass
class LintReport:
    """Findings of one engine run (or several, merged).

    Attributes:
        diagnostics: All findings, sorted most severe first.
        rule_seconds: Wall-clock seconds spent per rule ID.
        suppressed: Findings dropped by a baseline (kept countable so
            reports can say "N known findings suppressed").
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    suppressed: List[Diagnostic] = field(default_factory=list)

    # -- queries --------------------------------------------------------
    @property
    def error_diagnostics(self) -> List[Diagnostic]:
        """Error-severity findings."""
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warning_diagnostics(self) -> List[Diagnostic]:
        """Warning-severity findings."""
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings are present."""
        return not self.error_diagnostics

    def counts(self) -> Dict[str, int]:
        """Finding counts per severity (always includes all levels)."""
        out = {sev: 0 for sev in SEVERITIES}
        for d in self.diagnostics:
            out[d.severity] += 1
        return out

    def by_rule(self) -> Dict[str, int]:
        """Finding counts per rule ID, sorted by rule ID."""
        out: Dict[str, int] = {}
        for d in sorted(self.diagnostics, key=lambda d: d.rule_id):
            out[d.rule_id] = out.get(d.rule_id, 0) + 1
        return out

    # -- mutation -------------------------------------------------------
    def sort(self) -> None:
        """Order findings by severity, then location, then rule."""
        self.diagnostics.sort(key=lambda d: (
            _SEVERITY_RANK[d.severity], d.file or "", d.line or 0,
            d.obj or "", d.rule_id, d.message,
        ))

    def merge(self, other: "LintReport") -> None:
        """Fold another report's findings and runtimes into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        for rule_id, seconds in other.rule_seconds.items():
            self.rule_seconds[rule_id] = (
                self.rule_seconds.get(rule_id, 0.0) + seconds
            )
        self.sort()

    def apply_baseline(self, baseline: "Baseline") -> None:
        """Move baselined findings from :attr:`diagnostics` to
        :attr:`suppressed`."""
        fresh: List[Diagnostic] = []
        for d in self.diagnostics:
            if baseline.contains(d):
                self.suppressed.append(d)
            else:
                fresh.append(d)
        self.diagnostics = fresh

    def raise_on_error(self, context: str = "lint") -> None:
        """Raise :class:`LintError` when error findings are present."""
        if not self.ok:
            raise LintError(self, context=context)

    # -- rendering ------------------------------------------------------
    def format_text(self) -> str:
        """Multi-line human-readable report."""
        lines = [d.format() for d in self.diagnostics]
        c = self.counts()
        summary = (f"{c[ERROR]} error(s), {c[WARNING]} warning(s), "
                   f"{c[INFO]} info")
        if self.suppressed:
            summary += f"; {len(self.suppressed)} baselined finding(s) suppressed"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready plain-data report (the CI artifact schema).

        Schema history: 1 — the original ``version``-keyed layout;
        2 — renamed the marker to ``schema`` (consumers should key on
        it) with otherwise identical structure.
        """
        return {
            "schema": 2,
            "summary": {
                "counts": self.counts(),
                "by_rule": self.by_rule(),
                "suppressed": len(self.suppressed),
                "ok": self.ok,
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "rule_seconds": {
                rule_id: round(seconds, 6)
                for rule_id, seconds in sorted(self.rule_seconds.items())
            },
        }


class Baseline:
    """A committed set of known-finding fingerprints.

    The baseline lets a new rule land with existing violations grand-
    fathered: CI compares fresh findings against the committed
    fingerprints and fails only on ones outside the set.  Entries keep
    enough metadata (rule, location, message) to stay reviewable.
    """

    def __init__(self, entries: Optional[Dict[str, Dict[str, Any]]] = None):
        self.entries: Dict[str, Dict[str, Any]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def contains(self, diagnostic: Diagnostic) -> bool:
        """True when the finding is already baselined."""
        return diagnostic.fingerprint in self.entries

    @classmethod
    def from_report(cls, report: LintReport) -> "Baseline":
        """Baseline every finding of ``report`` (fresh and suppressed)."""
        entries: Dict[str, Dict[str, Any]] = {}
        for d in list(report.diagnostics) + list(report.suppressed):
            entries[d.fingerprint] = {
                "rule": d.rule_id,
                "location": d.location,
                "message": d.message,
            }
        return cls(entries)

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return cls()
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{data.get('version')!r}"
            )
        return cls(data.get("entries", {}))

    def stale_entries(self, root) -> Dict[str, Dict[str, Any]]:
        """Baseline entries whose source file no longer exists.

        ``location`` is ``file:line`` for source findings; an entry
        whose file is gone under ``root`` can never match a fresh
        finding again and should be pruned (``--update-baseline``)
        rather than kept forever.  Netlist-object entries (no path
        separator that resolves under root) are never considered
        stale.  Returns fingerprint -> entry, sorted by fingerprint.
        """
        from pathlib import Path

        rootp = Path(root)
        out: Dict[str, Dict[str, Any]] = {}
        for fp in sorted(self.entries):
            entry = self.entries[fp]
            location = str(entry.get("location", ""))
            file_part = location.rsplit(":", 1)[0]
            if not file_part or not file_part.endswith(".py"):
                continue
            if not (rootp / file_part).exists():
                out[fp] = entry
        return out

    def save(self, path) -> None:
        """Write the baseline as reviewable, sorted JSON."""
        payload = {
            "version": 1,
            "entries": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


class _NoSpan:
    """Span stand-in when recording one would pollute the trace root.

    Trace consumers rely on the top-level spans being exactly the
    flow's stage keys, so the engine only records its ``lint.<pack>``
    span when nested inside an already-open span (a gate inside a
    stage); between-stage ``validate()`` runs stay span-free.
    """

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def counter(self, name, delta=1.0):
        pass

    def gauge(self, name, value):
        pass


def run_rules(rules: Iterable[Rule], ctx: Any,
              pack: str = "lint") -> LintReport:
    """Run ``rules`` against ``ctx`` and collect a sorted report.

    Per-rule wall-clock time and finding counts are recorded both on
    the report and as observability counters (span ``lint.<pack>``
    with one ``<rule>.findings`` counter and ``<rule>.ms`` gauge per
    rule, recorded only when nested inside an open stage span), so
    traced flows show where lint time goes.
    """
    report = LintReport()
    span_cm = obs.span(f"lint.{pack}") if obs.in_span() else _NoSpan()
    with span_cm as sp:
        for entry in rules:
            t0 = time.perf_counter()
            for diag in entry.check(ctx):
                if diag.hint is None and entry.hint is not None:
                    diag = Diagnostic(
                        rule_id=diag.rule_id, severity=diag.severity,
                        message=diag.message, obj=diag.obj,
                        file=diag.file, line=diag.line,
                        snippet=diag.snippet, hint=entry.hint,
                    )
                report.diagnostics.append(diag)
            seconds = time.perf_counter() - t0
            report.rule_seconds[entry.id] = (
                report.rule_seconds.get(entry.id, 0.0) + seconds
            )
            n = sum(1 for d in report.diagnostics if d.rule_id == entry.id)
            if n:
                sp.counter(f"{entry.id}.findings", n)
            sp.gauge(f"{entry.id}.ms", seconds * 1e3)
    report.sort()
    return report


def make_diagnostic(entry: Rule, message: str, *,
                    obj: Optional[str] = None,
                    file: Optional[str] = None,
                    line: Optional[int] = None,
                    snippet: Optional[str] = None,
                    severity: Optional[str] = None,
                    hint: Optional[str] = None) -> Diagnostic:
    """Build a finding carrying the rule's defaults.

    Helper for rule bodies: severity and hint fall back to the rule's
    registered defaults.
    """
    return Diagnostic(
        rule_id=entry.id,
        severity=severity or entry.severity,
        message=message,
        obj=obj, file=file, line=line, snippet=snippet,
        hint=hint if hint is not None else entry.hint,
    )


def find_rule(pack: str, rule_id: str) -> Rule:
    """Look up one registered rule (KeyError when absent)."""
    for entry in RULE_PACKS.get(pack, []):
        if entry.id == rule_id:
            return entry
    raise KeyError(f"no rule {rule_id!r} in pack {pack!r}")


__all__ = [
    "Baseline",
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintError",
    "LintReport",
    "Rule",
    "RULE_PACKS",
    "SEVERITIES",
    "WARNING",
    "find_rule",
    "make_diagnostic",
    "pack_rules",
    "rule",
    "run_rules",
]
