"""repro.lint: the rule-based static-analysis engine.

Four rule packs share one engine and one diagnostics vocabulary:

* the **netlist/DFT pack** (:mod:`repro.lint.netlist_rules`) audits a
  design — structural integrity, combinational loops, scan-chain
  continuity, test-point clocking — and gates the flow when
  ``FlowConfig.lint`` is on (CLI: ``repro lint <circuit>``);
* the **determinism self-lint** (:mod:`repro.lint.selfrules`) audits
  the ``repro`` sources themselves for iteration-order, wall-clock and
  RNG hazards that would break the content-hash cache;
* the **concurrency pack** (:mod:`repro.lint.concrules`) runs a
  lockset dataflow analysis over each function's control-flow graph
  (:mod:`repro.lint.cfg` + :mod:`repro.lint.dataflow`) to catch
  guarded state touched without its lock, lock leaks, blocking calls
  under locks or in ``async def`` bodies, and double-acquires;
* the **resource pack** (:mod:`repro.lint.resrules`) tracks resource
  lifecycles (files/pools/sockets/journals open on some path at
  return) and the store/journal flush+fsync durability contract.

All Python-source packs run together via ``python -m repro.lint.self``
(CI) or :func:`lint_python`.

This package initialiser stays import-light on purpose: the legacy
:mod:`repro.netlist.validate` module imports :mod:`repro.lint.core`
while the ``repro.netlist`` package is still initialising, so nothing
here may import back into the netlist/scan/tpi layers.  The rule-pack
modules are exposed lazily via PEP 562.
"""

from repro.lint.core import (
    Baseline,
    Diagnostic,
    ERROR,
    INFO,
    LintError,
    LintReport,
    Rule,
    SEVERITIES,
    WARNING,
    pack_rules,
    run_rules,
)

__all__ = [
    "Baseline",
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintError",
    "LintReport",
    "Rule",
    "SEVERITIES",
    "WARNING",
    "build_cfg",
    "lint_concurrency",
    "lint_netlist",
    "lint_python",
    "lint_resources",
    "lint_sources",
    "pack_rules",
    "run_rules",
]

#: Lazily-resolved exports: name -> home module.  Keeps this package
#: importable from repro.netlist.validate without a circular import.
_EXPORTS = {
    "build_cfg": "repro.lint.cfg",
    "lint_concurrency": "repro.lint.concrules",
    "lint_netlist": "repro.lint.netlist_rules",
    "lint_python": "repro.lint.self",
    "lint_resources": "repro.lint.resrules",
    "lint_sources": "repro.lint.selfrules",
}


def __getattr__(name: str):
    """PEP 562 lazy resolution of the rule-pack entry points."""
    import importlib

    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(home), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
