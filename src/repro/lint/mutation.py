"""Seeded-bug mutation checks: prove the lint packs can still bite.

A static analyser that never fires is indistinguishable from one that
is wired up wrong — the tree being clean is exactly the state in which
a silently broken rule looks healthy.  This module re-introduces, into
a scratch copy of the real sources, one representative bug from each
class the concurrency/resource packs exist to catch:

* ``drop-lock`` — the ``with self._lock:`` guarding the daemon's
  ``submit`` path becomes ``if True:`` (the race the lockset analysis
  and the ``shared-under`` annotations were built for);
* ``block-async`` — a ``time.sleep`` lands at the top of the server's
  ``async def _respond`` handler (stalls the event loop for every
  connected client);
* ``drop-fsync`` — the ``os.fsync`` in the job store's
  ``record_transition`` disappears (breaks the §14 flush+fsync
  durability contract the store's recovery semantics rely on).

Each check fails loudly unless the expected rule fires on the mutated
copy.  Run as ``python -m repro.lint.mutation`` (CI) or through the
helpers from the test suite.
"""

from __future__ import annotations

import ast
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.lint.core import Diagnostic


@dataclass(frozen=True)
class Mutation:
    """One seeded bug: how to plant it and what must catch it."""

    name: str
    #: Source path relative to the lint root (``src/repro``).
    path: str
    #: Rule that must fire on the mutated copy.
    expect_rule: str
    description: str
    apply: Callable[[str], str]


def _drop_lock(text: str) -> str:
    """Turn ``submit``'s ``with self._lock:`` into ``if True:``."""
    anchor = text.index("def submit(")
    site = text.index("with self._lock:", anchor)
    return (text[:site] + "if True:  # mutation: lock dropped"
            + text[site + len("with self._lock:"):])


def _block_async(text: str) -> str:
    """Insert ``time.sleep(0.25)`` atop ``async def _respond``."""
    tree = ast.parse(text)
    target = None
    for node in ast.walk(tree):
        if (isinstance(node, ast.AsyncFunctionDef)
                and node.name == "_respond"):
            target = node
            break
    if target is None:
        raise ValueError("no 'async def _respond' to mutate")
    stall = ast.parse("time.sleep(0.25)").body[0]
    target.body.insert(0, stall)
    return ast.unparse(ast.fix_missing_locations(tree))


def _drop_fsync(text: str) -> str:
    """Replace ``record_transition``'s ``os.fsync`` with ``pass``."""
    anchor = text.index("def record_transition(")
    site = text.index("os.fsync(", anchor)
    line_start = text.rindex("\n", 0, site) + 1
    line_end = text.index("\n", site)
    indent = text[line_start:site]
    return (text[:line_start] + indent
            + "pass  # mutation: fsync dropped" + text[line_end:])


#: The seeded bugs, in check order.
MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        name="drop-lock",
        path="service/jobs.py",
        expect_rule="CONC001",
        description="JobManager.submit mutates guarded state without "
                    "holding self._lock",
        apply=_drop_lock,
    ),
    Mutation(
        name="block-async",
        path="service/server.py",
        expect_rule="CONC004",
        description="time.sleep() stalls the event loop inside "
                    "async def _respond",
        apply=_block_async,
    ),
    Mutation(
        name="drop-fsync",
        path="service/store.py",
        expect_rule="RES004",
        description="JobStore.record_transition flushes but never "
                    "fsyncs (breaks the durability contract)",
        apply=_drop_fsync,
    ),
)


def mutated_source(root: Path, mutation: Mutation) -> str:
    """The mutated text of ``mutation``'s target file under ``root``.

    Raises ``ValueError`` (or ``IndexError`` from ``str.index``) when
    the anchor the mutation keys on no longer exists — a moved target
    must fail the check loudly, not skip it.
    """
    source = (root / mutation.path).read_text(encoding="utf-8")
    return mutation.apply(source)


def check_mutation(root: Path, mutation: Mutation,
                   workdir: Path) -> List[Diagnostic]:
    """Plant ``mutation`` in a scratch tree and lint it.

    Returns the diagnostics matching ``mutation.expect_rule`` — empty
    means the seeded bug escaped (the check failed).
    """
    from repro.lint.self import lint_python

    target = workdir / mutation.path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(mutated_source(root, mutation), encoding="utf-8")
    report = lint_python(workdir, files=[target], packs=("conc", "res"))
    return [d for d in report.diagnostics
            if d.rule_id == mutation.expect_rule]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run every seeded mutation; exit 1 when any escapes."""
    import argparse

    from repro.lint.selfrules import default_source_root

    parser = argparse.ArgumentParser(
        prog="repro.lint.mutation",
        description="verify the concurrency/resource lint packs catch "
                    "seeded bugs in the real sources",
    )
    parser.add_argument("--src", default=None, metavar="DIR",
                        help="source root to mutate (default: the "
                             "installed repro package)")
    args = parser.parse_args(argv)
    root = Path(args.src) if args.src else default_source_root()

    escaped = 0
    for mutation in MUTATIONS:
        with tempfile.TemporaryDirectory(prefix="repro-lint-mut-") as tmp:
            hits = check_mutation(root, mutation, Path(tmp))
        if hits:
            lines = sorted(d.location for d in hits)
            print(f"caught  {mutation.name}: [{mutation.expect_rule}] "
                  f"x{len(hits)} ({lines[0]})")
        else:
            escaped += 1
            print(f"ESCAPED {mutation.name}: no {mutation.expect_rule} "
                  f"finding on mutated {mutation.path} "
                  f"({mutation.description})")
    if escaped:
        print(f"\nmutation check: {escaped} of {len(MUTATIONS)} seeded "
              f"bug(s) escaped the lint packs")
        return 1
    print(f"mutation check OK: {len(MUTATIONS)}/{len(MUTATIONS)} seeded "
          f"bugs caught")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
