"""Resource-safety rule pack: lifecycle and durability dataflow.

Two analyses over each function's CFG (see :mod:`repro.lint.cfg` /
:mod:`repro.lint.dataflow`):

**Open-resource may-analysis** — the fact is the set of local
variables bound to an owned resource (``fh = open(...)``, a pool, a
socket, a journal) that might still be open at a program point.  A
``with`` statement, a ``.close()``/``.shutdown()`` call, or an
ownership escape (returning / yielding / aliasing the variable into a
structure) retires the obligation; reaching the function's exit while
still tracked is a leak.  Passing a resource as a *call argument* is a
borrow, not an escape — the caller still owns the close (this is
exactly the shape of the executor's journal handling).

**Durability state machine** — functions annotated ``# lint: durable``
encode the store/journal write-visibility contract (DESIGN.md §14:
*a transition may become observable only after its bytes are flushed
and fsynced*).  Writes move the state to *dirty*, ``.flush()`` to
*flushed*, ``os.fsync``/``os.fdatasync`` of a *flushed* stream back
to *clean* (fsync cannot sync bytes still in the userspace buffer);
any normal return in a non-clean state is an error.  Exceptional edges are not
followed here: ``try: os.fsync(...) except OSError: pass`` is the
accepted best-effort idiom and must not trip the rule.

Rules: ``RES001`` file/socket/journal/store leak (error), ``RES002``
pool without shutdown (error), ``RES003`` closed on the normal path
but leaking on the exception path (warning), ``RES004`` durable
function returning before flush+fsync (error).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.lint import annotations
from repro.lint.cfg import (
    Assume,
    CFG,
    Event,
    WithEnter,
    WithExit,
    expr_name,
    build_cfg,
    function_units,
    walk_shallow,
)
from repro.lint.concrules import Finding, _OPAQUE
from repro.lint.core import (
    Diagnostic,
    ERROR,
    Rule,
    WARNING,
    make_diagnostic,
    pack_rules,
    rule,
)
from repro.lint.dataflow import ForwardAnalysis, exit_facts, solve
from repro.lint.selfrules import SourceContext, SourceModule

PACK = "res"

#: Constructors whose result the binder must close: dotted call name
#: (or bare class name) -> resource kind.
OPENERS: Dict[str, str] = {
    "open": "file",
    "socket.socket": "socket",
    "ProcessPoolExecutor": "pool",
    "ThreadPoolExecutor": "pool",
    "concurrent.futures.ProcessPoolExecutor": "pool",
    "concurrent.futures.ThreadPoolExecutor": "pool",
    "SweepJournal": "journal",
    "JobStore": "store",
}

#: Method names that retire an open-resource obligation.
CLOSERS = ("close", "shutdown", "terminate")

#: Kinds RES001 covers (RES002 takes pools).
_RES001_KINDS = ("file", "socket", "journal", "store")

#: Durability ranks: 0 clean/durable, 1 written-unflushed, 2
#: flushed-unsynced.
_CLEAN, _DIRTY, _FLUSHED = 0, 1, 2

_RANK_TEXT = {
    _DIRTY: "written but never flushed",
    _FLUSHED: "flushed but never fsynced",
}


def _opener_kind(value: ast.AST) -> Optional[str]:
    """Resource kind when ``value`` is an opener call, else None."""
    if not isinstance(value, ast.Call):
        return None
    name = expr_name(value.func)
    if name in OPENERS:
        return OPENERS[name]
    if name is not None and "." in name:
        leaf = name.rsplit(".", 1)[1]
        if leaf == "open":
            return "file"
        if leaf in OPENERS and leaf[:1].isupper():
            return OPENERS[leaf]
    return None


def _escaping_names(value: ast.AST) -> FrozenSet[str]:
    """Variables whose ownership leaves the function through ``value``.

    A bare name (alias, container element, attribute-store RHS)
    escapes; a name used as a call argument or as the object of an
    attribute access is borrowed and stays owned; names captured by a
    nested lambda/def escape (the closure outlives the statement).
    """
    names: List[str] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Call, ast.Attribute)):
            return
        elif isinstance(node, (ast.Lambda, ast.FunctionDef,
                               ast.AsyncFunctionDef)):
            names.extend(n.id for n in ast.walk(node)
                         if isinstance(n, ast.Name))
        else:
            for child in ast.iter_child_nodes(node):
                visit(child)

    visit(value)
    return frozenset(names)


def _assume_dropped(event: Assume) -> Optional[str]:
    """Variable proven absent on this branch (``if fh is None:`` arm)."""
    test, value = event.test, event.value
    if isinstance(test, ast.Name):
        return test.id if not value else None
    if (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)):
        return test.operand.id if value else None
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.left, ast.Name)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        if isinstance(test.ops[0], ast.Is) and value:
            return test.left.id
        if isinstance(test.ops[0], ast.IsNot) and not value:
            return test.left.id
    return None


class ResourceAnalysis(ForwardAnalysis):
    """May-open resources: union join over (var, kind, line)."""

    def entry_fact(self, cfg: CFG) -> FrozenSet[Tuple[str, str, int]]:
        return frozenset()

    def join(self, facts):
        out = facts[0]
        for fact in facts[1:]:
            out = out | fact
        return out

    def transfer(self, fact, event: Event, block):
        if isinstance(event, Assume):
            dropped = _assume_dropped(event)
            if dropped is not None:
                fact = frozenset(e for e in fact if e[0] != dropped)
            return fact
        if isinstance(event, WithEnter):
            # `with fh:` transfers the close to the with statement.
            name = expr_name(event.item.context_expr)
            if name is not None:
                fact = frozenset(e for e in fact if e[0] != name)
            return fact
        if isinstance(event, WithExit):
            return fact
        if isinstance(event, _OPAQUE) or not isinstance(event, ast.AST):
            return fact
        # Closers anywhere in the statement.
        for node in walk_shallow(event):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in CLOSERS
                    and isinstance(node.func.value, ast.Name)):
                closed = node.func.value.id
                fact = frozenset(e for e in fact if e[0] != closed)
        # Ownership escapes.
        escaped: FrozenSet[str] = frozenset()
        if isinstance(event, ast.Return) and event.value is not None:
            escaped = _escaping_names(event.value)
        elif isinstance(event, ast.Expr) and isinstance(
                event.value, (ast.Yield, ast.YieldFrom)):
            inner = event.value.value
            if inner is not None:
                escaped = _escaping_names(inner)
        elif isinstance(event, ast.Assign):
            if getattr(event, "_lint_with_binding", False):
                return fact
            escaped = _escaping_names(event.value)
        if escaped:
            fact = frozenset(e for e in fact if e[0] not in escaped)
        # Strong update + fresh obligations on simple binds.
        if isinstance(event, ast.Assign) and len(event.targets) == 1 \
                and isinstance(event.targets[0], ast.Name):
            var = event.targets[0].id
            fact = frozenset(e for e in fact if e[0] != var)
            kind = _opener_kind(event.value)
            if kind is not None:
                fact = fact | {(var, kind, event.lineno)}
        return fact

    def exc_facts(self, fact, event: Event, block):
        """A raising opener never bound its target, and a raising
        ``close()`` still retires the obligation — so the exceptional
        fact honours this event's removals but not its additions
        (pre ∩ post)."""
        return [fact & self.transfer(fact, event, block)]


class DurabilityAnalysis(ForwardAnalysis):
    """The §14 write-visibility state machine (normal paths only)."""

    follow_exc = False

    def entry_fact(self, cfg: CFG) -> Tuple[int, int]:
        return (_CLEAN, 0)

    def join(self, facts):
        return max(facts, key=lambda f: (f[0], -f[1]))

    def transfer(self, fact, event: Event, block):
        if isinstance(event, (Assume, WithEnter, WithExit)):
            return fact
        if isinstance(event, _OPAQUE) or not isinstance(event, ast.AST):
            return fact
        rank, line = fact
        for node in walk_shallow(event):
            if not isinstance(node, ast.Call):
                continue
            dotted = expr_name(node.func)
            if dotted in ("os.fsync", "os.fdatasync"):
                # fsync only syncs what reached the kernel: bytes
                # still in the stream's userspace buffer stay dirty.
                if rank == _FLUSHED:
                    rank, line = _CLEAN, node.lineno
            elif isinstance(node.func, ast.Attribute):
                if node.func.attr in ("write", "writelines"):
                    rank, line = _DIRTY, node.lineno
                elif node.func.attr == "flush" and rank == _DIRTY:
                    rank, line = _FLUSHED, node.lineno
        return (rank, line)


def _check_module(module: SourceModule) -> List[Finding]:
    findings: List[Finding] = []
    for unit in function_units(module.tree):
        cfg = build_cfg(unit.func)
        analysis = ResourceAnalysis()
        ins = solve(cfg, analysis)
        exits = exit_facts(cfg, analysis, ins)
        at_exit = exits.get("exit", frozenset())
        at_raise = exits.get("raise", frozenset())
        for var, kind, lineno in sorted(at_exit):
            if kind in _RES001_KINDS:
                findings.append(Finding(
                    "RES001", lineno,
                    f"{kind} {var!r} opened here may still be open "
                    f"when {unit.func.name}() returns"))
            elif kind == "pool":
                findings.append(Finding(
                    "RES002", lineno,
                    f"pool {var!r} created here has a path to return "
                    f"without shutdown()"))
        for var, kind, lineno in sorted(at_raise - at_exit):
            findings.append(Finding(
                "RES003", lineno,
                f"{kind} {var!r} is closed on the normal path but "
                f"leaks when an exception unwinds; use with or "
                f"try/finally",
                severity=WARNING))
        if annotations.has_flag(module.text, unit.func.lineno, "durable"):
            durability = DurabilityAnalysis()
            dins = solve(cfg, durability)
            dexits = exit_facts(cfg, durability, dins)
            rank, line = dexits.get("exit", (_CLEAN, 0))
            if rank != _CLEAN:
                findings.append(Finding(
                    "RES004", line or unit.func.lineno,
                    f"{unit.func.name}() is annotated durable but a "
                    f"normal path returns with bytes {_RANK_TEXT[rank]}"
                    f" — the transition would be visible before it is "
                    f"durable (§14)"))
    return sorted(set(findings),
                  key=lambda f: (f.lineno, f.rule_id, f.message))


def _module_findings(ctx: SourceContext) -> Dict[str, List[Finding]]:
    caches = getattr(ctx, "caches", None)
    if caches is not None and PACK in caches:
        return caches[PACK]
    out = {m.path: _check_module(m) for m in ctx.modules}
    if caches is not None:
        caches[PACK] = out
    return out


def _rule(rule_id: str) -> Rule:
    for entry in pack_rules(PACK):
        if entry.id == rule_id:
            return entry
    raise KeyError(rule_id)  # pragma: no cover - registration bug


def _emit_rule(ctx: SourceContext, rule_id: str) -> Iterable[Diagnostic]:
    entry = _rule(rule_id)
    found = _module_findings(ctx)
    for module in ctx.modules:
        for finding in found.get(module.path, []):
            if finding.rule_id != rule_id:
                continue
            if module.suppresses(finding.lineno, rule_id):
                continue
            yield make_diagnostic(
                entry, finding.message,
                file=module.path,
                line=finding.lineno,
                snippet=module.line(finding.lineno),
                severity=finding.severity,
            )


@rule(PACK, "RES001", "resource not closed on every path",
      severity=ERROR,
      hint="use a with statement, or close in a finally block")
def check_open_leak(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Files/sockets/journals open at a normal return."""
    return _emit_rule(ctx, "RES001")


@rule(PACK, "RES002", "pool without shutdown on every path",
      severity=ERROR,
      hint="use the pool as a context manager or call shutdown() in a "
           "finally block — leaked workers outlive the sweep")
def check_pool_leak(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Process/thread pools that may never be shut down."""
    return _emit_rule(ctx, "RES002")


@rule(PACK, "RES003", "resource leaks on the exception path",
      severity=WARNING,
      hint="move the close into a finally block (or use with) so the "
           "unwinding path releases it too")
def check_exception_leak(ctx: SourceContext) -> Iterable[Diagnostic]:
    """Closed normally, but an exception skips the close."""
    return _emit_rule(ctx, "RES003")


@rule(PACK, "RES004", "durable write visible before flush+fsync",
      severity=ERROR,
      hint="every normal return of a `# lint: durable` function must "
           "follow .flush() and os.fsync() of the written stream")
def check_durability(ctx: SourceContext) -> Iterable[Diagnostic]:
    """The store/journal write-visibility contract (§14)."""
    return _emit_rule(ctx, "RES004")


def lint_resources(root=None, files=None):
    """Run only the resource pack over a source tree."""
    from repro.lint.core import run_rules
    from repro.lint.selfrules import collect_modules, default_source_root

    ctx = collect_modules(root or default_source_root(), files)
    return run_rules(pack_rules(PACK), ctx, pack=PACK)


__all__ = [
    "CLOSERS",
    "DurabilityAnalysis",
    "OPENERS",
    "PACK",
    "ResourceAnalysis",
    "lint_resources",
]
