"""The paper's experiment: one circuit, six layouts (0%..5% TPs).

Section 4.1: "We generated six layouts for each circuit: one layout for
the circuit without test points, and five layouts for the circuit with
1%, 2%, 3%, 4%, and 5% test points respectively.  The percentage of
test points corresponds to the number of flip-flops in the design."
Each layout is generated from scratch with the same square floorplan
style, target row utilisation and ring dimensions, optimised for area
only — all reproduced by :func:`repro.core.flow.run_flow`.

This module sweeps the percentages and assembles the rows of Tables
1-3, including the percentage-change columns relative to the 0% run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.flow import FlowConfig, FlowResult, run_flow
from repro.core.metrics import percent_change
from repro.library.cell import Library
from repro.library.cmos130 import cmos130
from repro.netlist.circuit import Circuit

#: The paper's sweep (Section 4.1).
PAPER_TP_PERCENTS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)


@dataclass
class ExperimentConfig:
    """One circuit's sweep configuration.

    Attributes:
        name: Circuit label used in reports.
        circuit_factory: Builds a *fresh* pre-DFT netlist per level
            (each layout is generated from scratch, as in the paper).
        tp_percents: Test-point percentages to sweep.
        flow: Base flow configuration; ``tp_percent`` is overridden
            per level.
        library: Cell library.
    """

    name: str
    circuit_factory: Callable[[], Circuit]
    tp_percents: Sequence[float] = PAPER_TP_PERCENTS
    flow: FlowConfig = field(default_factory=FlowConfig)
    library: Optional[Library] = None


@dataclass
class ExperimentResult:
    """All runs of one circuit's sweep, keyed by TP percentage."""

    name: str
    runs: Dict[float, FlowResult] = field(default_factory=dict)

    @property
    def baseline(self) -> FlowResult:
        """The 0% run every percentage column is measured against."""
        return self.runs[min(self.runs)]

    # -- Table 1 --------------------------------------------------------
    def table1_rows(self) -> List[Dict[str, float]]:
        """Impact of TPI on test data (paper Table 1)."""
        base = self.baseline.test_metrics()
        rows = []
        for pct in sorted(self.runs):
            m = self.runs[pct].test_metrics()
            rows.append({
                "circuit": self.name,
                "tp_percent": pct,
                "n_tp": m.n_test_points,
                "n_ff": m.n_flip_flops,
                "n_chains": m.n_chains,
                "l_max": m.l_max,
                "n_faults": m.n_faults,
                "fc_percent": 100.0 * m.fault_coverage,
                "fe_percent": 100.0 * m.fault_efficiency,
                "saf_patterns": m.n_patterns,
                "patterns_dec_percent": -percent_change(
                    base.n_patterns, m.n_patterns
                ),
                "tdv_bits": m.tdv_bits,
                "tdv_dec_percent": -percent_change(
                    base.tdv_bits, m.tdv_bits
                ),
                "tat_cycles": m.tat_cycles,
                "tat_dec_percent": -percent_change(
                    base.tat_cycles, m.tat_cycles
                ),
            })
        return rows

    # -- Table 2 --------------------------------------------------------
    def table2_rows(self) -> List[Dict[str, float]]:
        """Impact of TPI on silicon area (paper Table 2)."""
        base = self.baseline.area_metrics()
        rows = []
        for pct in sorted(self.runs):
            run = self.runs[pct]
            a = run.area_metrics()
            rows.append({
                "circuit": self.name,
                "tp_percent": pct,
                "n_tp": run.n_test_points,
                "n_cells": a["n_cells"],
                "n_cells_logic": a["n_cells_logic"],
                "n_rows": a["n_rows"],
                "row_length_um": a["row_length_um"],
                "core_area_um2": a["core_area_um2"],
                "core_inc_percent": percent_change(
                    base["core_area_um2"], a["core_area_um2"]
                ),
                "filler_area_percent": 100.0 * a["filler_fraction"],
                "chip_area_um2": a["chip_area_um2"],
                "chip_inc_percent": percent_change(
                    base["chip_area_um2"], a["chip_area_um2"]
                ),
                "wirelength_um": a["wirelength_um"],
            })
        return rows

    # -- Table 3 --------------------------------------------------------
    def table3_rows(self) -> List[Dict[str, float]]:
        """Impact of TPI on timing (paper Table 3), one row per
        (TP level, clock domain)."""
        base_sta = self.baseline.sta
        if base_sta is None:
            raise ValueError("experiment ran without the layout phase")
        base_tcp = {
            domain: paths[0].total_ps
            for domain, paths in base_sta.paths.items()
            if paths
        }
        rows = []
        for pct in sorted(self.runs):
            run = self.runs[pct]
            assert run.sta is not None
            for domain in sorted(run.sta.paths):
                critical = run.sta.critical(domain)
                if critical is None:
                    continue
                rows.append({
                    "circuit": self.name,
                    "domain": domain,
                    "tp_percent": pct,
                    "n_tp": run.n_test_points,
                    "n_tp_cp": critical.n_test_points,
                    "t_cp_ps": critical.total_ps,
                    "t_cp_inc_percent": percent_change(
                        base_tcp.get(domain, critical.total_ps),
                        critical.total_ps,
                    ),
                    "fmax_mhz": critical.fmax_mhz,
                    "t_wires_ps": critical.t_wires_ps,
                    "t_intrinsic_ps": critical.t_intrinsic_ps,
                    "t_load_dep_ps": critical.t_load_dep_ps,
                    "t_setup_ps": critical.t_setup_ps,
                    "t_skew_ps": critical.t_skew_ps,
                    "slow_nodes": len(run.sta.slow_nodes),
                })
        return rows


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run the full sweep for one circuit."""
    library = config.library or cmos130()
    result = ExperimentResult(name=config.name)
    for pct in config.tp_percents:
        circuit = config.circuit_factory()
        flow_config = replace(config.flow, tp_percent=pct)
        result.runs[pct] = run_flow(circuit, library, flow_config)
    return result
