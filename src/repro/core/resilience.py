"""Fault-tolerance primitives for the sweep engine.

The paper's experiment is a 3-circuit x 6-TP-percentage sweep through a
long multi-stage layout flow; a production campaign cannot afford to
lose a whole Table 1/2/3 run because one (circuit, tp%) cell crashed,
hung, or hit a torn cache entry.  This module holds the pieces the
executor composes into a survivable sweep:

* **Retry classification** — :func:`is_retryable` splits exceptions
  into *retryable* (worker crashes, broken pools, transient I/O,
  timeouts) and *fatal* (config/validation errors, plain bugs).  Only
  retryable failures consume retry budget; fatal ones surface
  immediately, because re-running a deterministic bug just burns CPU.
* **Deterministic backoff** — :class:`RetryPolicy` computes the same
  exponential delay sequence on every run; no randomised jitter, so a
  scripted chaos test replays byte-identically.
* **Structured failure records** — a failed cell becomes a
  :class:`TaskFailure` (circuit, tp%, attempts, exception chain), not
  a lost sweep: the :class:`SweepReport` carries the successful
  :class:`~repro.core.executor.FlowSummary` cells *and* the failures,
  so tables render with explicit holes instead of aborting.
* **Crash-safe journal** — :class:`SweepJournal` appends one JSON line
  per task event (fsync'd), so a killed process leaves a readable
  record and ``--resume`` can skip completed cells via their
  content-hash keys.

Everything here is stdlib-only and picklable where it crosses a
process or cache boundary.
"""

from __future__ import annotations

import json
import os
import pickle
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple


# ----------------------------------------------------------------------
# Exception taxonomy
# ----------------------------------------------------------------------
class TaskTimeoutError(RuntimeError):
    """A sweep task exceeded the watchdog's per-task timeout.

    Raised *about* a task by the parent (the hung worker cannot raise
    anything — it is killed), and classified retryable: a hang is
    usually load- or scheduler-induced, and a fresh attempt on a fresh
    pool frequently succeeds.
    """

    retryable = True


class WorkerCrashError(RuntimeError):
    """A worker process died (killed, OOM, hard crash) mid-task.

    Synthesised by the executor when a solo-run task breaks the pool,
    which identifies it as the crash culprit beyond doubt.
    """

    retryable = True


#: Exception types that are worth a retry: infrastructure failures
#: (dead workers, torn pipes, transient filesystem trouble), never
#: logic errors.
RETRYABLE_TYPES: Tuple[type, ...] = (
    BrokenProcessPool,
    TaskTimeoutError,
    WorkerCrashError,
    ConnectionError,
    EOFError,
    OSError,  # includes IOError; transient cache/journal I/O
    TimeoutError,
    pickle.UnpicklingError,
)

#: Exception types that are definitely deterministic caller/config
#: errors; retrying cannot help.  Checked *before* RETRYABLE_TYPES so a
#: subclass relationship can never promote a config error to retryable.
FATAL_TYPES: Tuple[type, ...] = (
    AssertionError,
    AttributeError,
    KeyError,
    TypeError,
    ValueError,
)


def is_retryable(exc: BaseException) -> bool:
    """Classify an exception: True when a retry might succeed.

    An explicit boolean ``retryable`` attribute on the exception (or
    its class) always wins — chaos-injected faults and the timeout /
    crash markers use it.  Otherwise fatal types (config, validation,
    plain bugs) lose to the blessed retryable set, and anything
    unrecognised is fatal: retrying an unknown failure hides bugs.
    """
    marked = getattr(exc, "retryable", None)
    if isinstance(marked, bool):
        return marked
    if isinstance(exc, FATAL_TYPES):
        return False
    return isinstance(exc, RETRYABLE_TYPES)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff without jitter.

    Attributes:
        max_retries: Retries *after* the first attempt (0 disables
            retrying; a task runs at most ``max_retries + 1`` times).
        backoff_base_s: Delay before the first retry.
        backoff_factor: Multiplier applied per further retry.
        backoff_max_s: Delay ceiling.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0

    def delay_s(self, attempt: int) -> float:
        """Backoff before ``attempt`` (1-based retry number)."""
        if attempt <= 0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return min(delay, self.backoff_max_s)


# ----------------------------------------------------------------------
# Structured failure records
# ----------------------------------------------------------------------
def exception_chain(exc: BaseException) -> Tuple[str, ...]:
    """``"Type: message"`` lines for ``exc`` and its cause/context chain.

    Bounded (no cycles, max depth 8) and string-only, so the chain is
    picklable and JSON-friendly for the journal.
    """
    lines: List[str] = []
    seen: Set[int] = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen and len(lines) < 8:
        seen.add(id(node))
        lines.append(f"{type(node).__name__}: {node}")
        node = node.__cause__ or node.__context__
    return tuple(lines)


@dataclass(frozen=True)
class TaskFailure:
    """One sweep cell that stayed failed after every retry.

    Attributes:
        name: Circuit (experiment) name of the cell.
        tp_percent: TP level of the cell.
        attempts: Times the task actually ran (0 when the sweep was
            aborted before the cell started, e.g. under fail-fast).
        error_type: Class name of the final exception.
        error_message: ``str()`` of the final exception.
        chain: ``"Type: message"`` lines down the cause/context chain.
        cache_key: Content-hash key of the cell (resume handle).
        retryable: Whether the final exception classified retryable
            (True means the retry budget ran out, not that the error
            was hopeless).
        exception: The final exception object, for programmatic use in
            the same process.  Excluded from equality and repr; the
            journal and any serialised form carry the string fields.
    """

    name: str
    tp_percent: float
    attempts: int
    error_type: str
    error_message: str
    chain: Tuple[str, ...] = ()
    cache_key: str = ""
    retryable: bool = False
    exception: Optional[BaseException] = field(
        default=None, compare=False, repr=False
    )

    @property
    def label(self) -> str:
        """Display label, e.g. ``s38417@2%``."""
        return f"{self.name}@{self.tp_percent:g}%"

    @classmethod
    def from_exception(cls, name: str, tp_percent: float, attempts: int,
                       exc: BaseException,
                       cache_key: str = "") -> "TaskFailure":
        """Build a failure record from the final exception."""
        return cls(
            name=name,
            tp_percent=tp_percent,
            attempts=attempts,
            error_type=type(exc).__name__,
            error_message=str(exc),
            chain=exception_chain(exc),
            cache_key=cache_key,
            retryable=is_retryable(exc),
            exception=exc,
        )


@dataclass
class SweepReport:
    """Outcome of a fault-tolerant sweep: results plus explicit holes.

    Attributes:
        results: Per-circuit results; a circuit's ``runs`` holds only
            the cells that succeeded, so Table 1/2/3 builders render
            rows for exactly those (the holes are visible, the sweep
            is not lost).
        failures: One :class:`TaskFailure` per permanently failed
            cell, sorted by (name, tp_percent).
        retries: Total retry attempts the sweep scheduled.
        timeouts: Tasks the watchdog timed out (attempt-level count).
        worker_crashes: Pool breakages attributed to dying workers.
        journal_path: The sweep journal written (None when journalling
            was off).
        cache_hits: Cells served from the result cache without
            recomputation (0 when caching was off).
        cache_misses: Cache lookups that fell through to a flow run.
        cache_evictions: Entries the size-capped cache evicted while
            this sweep wrote results.
        cancelled: True when the sweep's ``cancel_check`` fired and
            unstarted cells were abandoned (they appear in
            ``failures`` as ``SweepCancelled``).
        cache_write_failures: Cache ``put`` calls that failed with an
            OS error (disk full, permission loss).  The results
            themselves survive — a failed artifact write degrades the
            *cache*, never the sweep — but a non-zero count tells a
            long-lived service to stop trusting its disk (see the
            daemon's read-only degraded mode).
        started_at / finished_at: Wall-clock stamps (``time.time()``)
            of the sweep's boundaries, for humans and cross-machine
            correlation.  0.0 on reports from older pickles.
        started_mono / finished_mono: The same boundaries on the
            monotonic clock (``time.monotonic()``), so
            :attr:`duration_s` and trace alignment are immune to NTP
            steps.  Timestamps never enter cache keys — a cached cell
            is identified purely by its content hash.
    """

    results: Dict[str, Any] = field(default_factory=dict)
    failures: Tuple[TaskFailure, ...] = ()
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    journal_path: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cancelled: bool = False
    cache_write_failures: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    started_mono: float = 0.0
    finished_mono: float = 0.0

    @property
    def duration_s(self) -> float:
        """Sweep wall time from the monotonic stamps (never negative)."""
        return max(0.0, self.finished_mono - self.started_mono)

    @property
    def ok(self) -> bool:
        """True when every cell succeeded."""
        return not self.failures

    def successful_cells(self) -> int:
        """Count of (circuit, tp%) cells that produced a summary."""
        return sum(len(r.runs) for r in self.results.values())

    def failed_cells(self) -> Tuple[Tuple[str, float], ...]:
        """The (name, tp_percent) coordinates of every hole."""
        return tuple((f.name, f.tp_percent) for f in self.failures)


# ----------------------------------------------------------------------
# Crash-safe sweep journal
# ----------------------------------------------------------------------
class SweepJournal:
    """Append-only JSONL record of a sweep's task lifecycle.

    One JSON object per line; every write is flushed and fsync'd, so a
    killed process leaves at worst one torn trailing line (which
    :func:`read_journal` ignores).  Events carry the cell's
    content-hash ``key`` — the same key the result cache uses — so a
    ``--resume`` run maps journal history onto the new task plan even
    though it is a different process.

    Event vocabulary (the ``event`` field):

    ``sweep_start``
        Task plan: cells with their keys, plus executor knobs.
    ``task_start`` / ``task_done`` / ``task_failed``
        One attempt's lifecycle; ``task_failed`` carries the exception
        chain and whether a retry was scheduled.
    ``task_exhausted``
        The cell is permanently failed (budget spent or fatal error).
    ``task_resumed``
        A completed cell served from the cache on a resumed sweep.
    ``task_cached``
        A cell served from the result cache outside resume (warm
        cache, or another tenant of a shared service cache computed
        it first).
    ``task_aborted``
        The cell never ran: the sweep aborted (fail-fast) or was
        cancelled before scheduling it.
    ``sweep_end``
        Final tally.
    """

    def __init__(self, path, resume: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resume else "w"
        self._handle = open(self.path, mode, encoding="utf-8")
        if resume:
            self._isolate_torn_tail()

    def _isolate_torn_tail(self) -> None:
        """On resume, terminate a torn trailing line before appending.

        A ``kill -9`` mid-write leaves the journal without a final
        newline; appending straight after it would glue the first new
        event onto the torn half-line, losing *both* to the reader.
        Writing one newline first confines the damage to exactly the
        torn frame (which :func:`parse_journal_stats` counts and
        skips).
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                last = handle.read(1)
        except OSError:  # pragma: no cover - unreadable journal
            return
        if last != b"\n":
            self._handle.write("\n")
            self._handle.flush()

    def record(self, event: str, **data: Any) -> None:  # lint: durable
        """Append one event line; durable before return.

        Every event carries both clocks: ``ts`` (wall, for humans and
        cross-machine correlation) and ``ts_mono`` (monotonic, so
        readers computing latencies or ordering merged worker traces
        are immune to NTP steps).
        """
        payload = {"event": event, "ts": time.time(),
                   "ts_mono": time.monotonic(), **data}
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_journal_stats(lines: Iterable[str]
                        ) -> Tuple[List[Dict[str, Any]], int]:
    """Parse journal lines, skipping (and counting) torn frames.

    A malformed line is *skipped*, not fatal: on a straight crash the
    tear is the trailing line, but a resumed journal appends valid
    events *after* a torn frame, and stopping at the tear would
    discard the entire resumed history.  Non-object frames (a bare
    JSON number, say) count as torn too — an event is always a JSON
    object.  Returns ``(events, torn_lines)``; a non-zero count is
    evidence of a crash (expected after ``kill -9``) or real
    corruption, and the sweep service surfaces it in ``/metrics``.
    """
    events: List[Dict[str, Any]] = []
    torn = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue
        if not isinstance(event, dict):
            torn += 1
            continue
        events.append(event)
    return events, torn


def parse_journal_lines(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse journal lines; torn frames are skipped (see
    :func:`parse_journal_stats`, the counting variant).  This is the
    one journal decoder: the sweep service's progress endpoint and
    ``--resume`` both read through it, so a truncated frame can only
    ever surface as "cell still in progress", never as a crash.
    """
    return parse_journal_stats(lines)[0]


def read_journal_stats(path) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a journal file; returns ``(events, torn_lines)``.

    Returns ``([], 0)`` when the file does not exist; otherwise defers
    to :func:`parse_journal_stats`.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    with open(path, "r", encoding="utf-8") as handle:
        return parse_journal_stats(handle)


def read_journal(path) -> List[Dict[str, Any]]:
    """Parse a journal file; torn lines (crash damage) are tolerated.

    Returns an empty list when the file does not exist; otherwise
    defers to :func:`parse_journal_stats`, dropping the torn count.
    """
    return read_journal_stats(path)[0]


def completed_keys(events: Iterable[Dict[str, Any]]) -> Set[str]:
    """Cache keys of cells a journal records as completed.

    A later failure for the same key (a re-run with ``use_cache`` off,
    say) does not un-complete it: the cache entry either exists — and
    resume serves it — or it misses and the cell re-runs anyway.
    """
    done: Set[str] = set()
    for event in events:
        if event.get("event") == "task_done" and event.get("key"):
            done.add(event["key"])
    return done


def format_exception_for_journal(exc: BaseException) -> Dict[str, Any]:
    """JSON-ready digest of an exception for a journal event."""
    return {
        "error_type": type(exc).__name__,
        "error_message": str(exc),
        "chain": list(exception_chain(exc)),
        "retryable": is_retryable(exc),
        "traceback": "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip(),
    }
