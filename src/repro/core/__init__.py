"""The paper's experiment layer: the Figure 2 flow, the 0-5% sweep,
Table 1-3 assembly, Figure 3 rendering, and the parallel sweep
executor with its content-addressed result cache."""

from repro.core.executor import (
    CACHE_SCHEMA_VERSION,
    ExecutorConfig,
    FlowSummary,
    PathSummary,
    ResultCache,
    StaSummary,
    SweepExecutionError,
    circuit_structural_hash,
    config_fingerprint,
    derive_seed,
    flow_cache_key,
    run_sweep,
    run_sweeps,
    summarize,
)
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    PAPER_TP_PERCENTS,
    run_experiment,
)
from repro.core.flow import (
    FlowConfig,
    FlowResult,
    HoldFixRound,
    LAYOUT_STAGE_KEYS,
    STAGE_KEYS,
    run_flow,
)
from repro.core.metrics import (
    TestDataMetrics,
    percent_change,
    test_application_time_cycles,
    test_data_volume_bits,
)
from repro.core.render import ascii_density, render_svg
from repro.core.reporting import (
    format_stage_seconds,
    format_table1,
    format_table2,
    format_table3,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExecutorConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "FlowConfig",
    "FlowResult",
    "FlowSummary",
    "HoldFixRound",
    "LAYOUT_STAGE_KEYS",
    "PAPER_TP_PERCENTS",
    "PathSummary",
    "ResultCache",
    "STAGE_KEYS",
    "StaSummary",
    "SweepExecutionError",
    "TestDataMetrics",
    "ascii_density",
    "circuit_structural_hash",
    "config_fingerprint",
    "derive_seed",
    "flow_cache_key",
    "format_stage_seconds",
    "format_table1",
    "format_table2",
    "format_table3",
    "percent_change",
    "render_svg",
    "run_experiment",
    "run_flow",
    "run_sweep",
    "run_sweeps",
    "summarize",
    "test_application_time_cycles",
    "test_data_volume_bits",
]
