"""The paper's experiment layer: the Figure 2 flow, the 0-5% sweep,
Table 1-3 assembly, and Figure 3 rendering."""

from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    PAPER_TP_PERCENTS,
    run_experiment,
)
from repro.core.flow import FlowConfig, FlowResult, run_flow
from repro.core.metrics import (
    TestDataMetrics,
    percent_change,
    test_application_time_cycles,
    test_data_volume_bits,
)
from repro.core.render import ascii_density, render_svg
from repro.core.reporting import format_table1, format_table2, format_table3

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FlowConfig",
    "FlowResult",
    "PAPER_TP_PERCENTS",
    "TestDataMetrics",
    "ascii_density",
    "format_table1",
    "format_table2",
    "format_table3",
    "percent_change",
    "render_svg",
    "run_experiment",
    "run_flow",
    "test_application_time_cycles",
    "test_data_volume_bits",
]
