"""The complete tool flow of the paper's Figure 2.

Steps, in order:

1. **TPI & scan insertion** — TSFFs inserted by testability analysis,
   then full-scan substitution and balanced chain stitching.
2. **Floorplanning & placement** — square core at the target row
   utilisation, analytic global placement, row legalisation.
3. **Layout-driven scan-chain reordering** — chains restitched to the
   placement (with scan-enable buffering); ATPG runs on this updated
   netlist.
4. **ECO** — reorder/CTS buffers placed into the existing layout,
   clock trees synthesised, filler cells inserted, routing.
5. **Layout extraction** — RC per net.
6. **Static timing analysis** — worst-case PVT, test-mode false paths
   blocked.

Area-only optimisation throughout: no timing-driven placement, sizing
or buffering of data paths (paper Section 4.1).
"""

from __future__ import annotations

import dataclasses
import difflib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro import chaos, obs
from repro.atpg.engine import AtpgConfig, AtpgResult, run_atpg
from repro.core.metrics import TestDataMetrics
from repro.obs.tracer import Trace
from repro.extraction.rc import NetParasitics, extract_all, extract_incremental
from repro.layout.cts import ClockTree, synthesize_all_clock_trees
from repro.layout.placer import get_placer, placement_seed, require_placer
from repro.layout.filler import FillerReport, insert_fillers
from repro.layout.floorplan import Floorplan, build_floorplan
from repro.layout.placement import Placement
from repro.layout.routing import CongestionReport, GlobalRouter, RoutedNet
from repro.library.cell import Library
from repro.lint.core import LintReport
from repro.lint.netlist_rules import lint_netlist
from repro.netlist.circuit import Circuit
from repro.netlist.fanout import DrcReport, fix_electrical
from repro.netlist.validate import validate
from repro.scan.insertion import ScanChains, insert_scan
from repro.scan.reorder import ReorderReport, reorder_chains
from repro.sta.analysis import (
    StaConfig,
    StaResult,
    StaState,
    run_sta,
    run_sta_incremental,
    run_sta_with_state,
)
from repro.tpi.insertion import TpiConfig, TpiReport, insert_test_points

#: Stable contract: the keys of :attr:`FlowResult.stage_seconds`, in
#: execution order.  A full run records exactly these; skipping the
#: layout phase drops the five middle keys, skipping the ATPG phase
#: drops ``"atpg"``.  Dashboards, benches and the executor's cache
#: summaries key on these names — treat renames as breaking changes.
STAGE_KEYS = (
    "tpi_scan",
    "floorplan_place",
    "scan_reorder",
    "eco_cts_route",
    "extraction",
    "sta",
    "atpg",
)

#: Stage keys recorded only when ``run_layout_phase`` is on.
LAYOUT_STAGE_KEYS = (
    "floorplan_place",
    "scan_reorder",
    "eco_cts_route",
    "extraction",
    "sta",
)


def _reject_unknown_keys(given: Mapping[str, Any], known: List[str],
                         what: str) -> None:
    """Raise a did-you-mean ValueError for keys outside ``known``."""
    for key in given:
        if key in known:
            continue
        close = difflib.get_close_matches(key, known, n=1)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise ValueError(f"unknown {what} key {key!r}{hint}")


def _coerce_config_kwargs(data: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and coerce plain-data kwargs for :class:`FlowConfig`."""
    known = [f.name for f in dataclasses.fields(FlowConfig)]
    _reject_unknown_keys(data, known, "FlowConfig")
    for key, sub_cls in (("atpg", AtpgConfig), ("sta", StaConfig)):
        value = data.get(key)
        if isinstance(value, Mapping):
            sub_known = [f.name for f in dataclasses.fields(sub_cls)]
            _reject_unknown_keys(value, sub_known, sub_cls.__name__)
            data[key] = sub_cls(**value)
    if "exclude_nets" in data and data["exclude_nets"] is not None:
        data["exclude_nets"] = frozenset(data["exclude_nets"])
    return data


@dataclass
class FlowConfig:
    """Configuration of one flow run.

    Attributes:
        tp_percent: Test points as a percentage of the (pre-TPI)
            flip-flop count — the paper's sweep variable.
        target_utilization: Row utilisation (0.97 or 0.50 in the paper).
        max_chain_length: Balanced chain cap (s38417/circuit 1: 100).
        n_chains: Fixed chain count (p26909: 32); exclusive with
            ``max_chain_length``.
        atpg: ATPG configuration.
        sta: STA configuration.
        pd_threshold: TPI hard-fault threshold.
        exclude_nets: Timing-aware TPI exclusion set (Section 5).
            Stored as a ``frozenset`` (any iterable is accepted and
            normalised), so a ``FlowConfig`` shared between runs can
            never leak per-run mutations; the flow hands TPI a fresh
            mutable copy each call.
        run_atpg_phase: Generate patterns (Table 1 needs it; Tables 2-3
            do not).
        run_layout_phase: Run placement/route/extraction/STA.
        validate_netlist: Audit the netlist between steps.
        lint: Run the full netlist/DFT lint pack as flow gates: once
            after DFT insertion (stage 0), once before routing, and —
            scoped to the dirty set — after every hold-fix ECO round.
            Widens ``validate_netlist`` (structural checks only) with
            combinational-loop, scan-chain and clock-domain audits;
            any error aborts the run with
            :class:`repro.lint.LintError`.  Reports land in
            :attr:`FlowResult.lint_reports`.
        fix_holds: Repair hold violations with delay-buffer ECOs and
            re-analyse (the paper "verified that no hold ... violations
            occur"); up to ``hold_fix_iterations`` rounds.
        hold_fix_iterations: Maximum hold-fix ECO rounds.
        incremental_eco: Use the scoped re-route / re-extract / re-STA
            engine inside the hold-fix loop (the default).  Off, every
            round recomputes the whole design from scratch — the
            equivalence escape hatch behind the CLI's
            ``--no-incremental``.
        detailed_passes: Detailed-placement refinement sweeps run after
            legalisation (adjacent-swap wirelength cleanup).
        placer: Global-placement engine, by registry name (see
            ``repro.layout.PLACERS``): ``"quadratic"`` (the default
            analytic engine, bit-identical to the historical flow) or
            ``"sa"`` (quadratic + simulated-annealing detailed
            placement).  Unknown names are rejected at construction
            with a did-you-mean hint.

    Construct with keyword arguments, :meth:`from_dict`, or
    :meth:`replace` — positional construction is deprecated: the field
    order is not part of the API contract and changes between
    releases.
    """

    tp_percent: float = 0.0
    target_utilization: float = 0.97
    max_chain_length: Optional[int] = 100
    n_chains: Optional[int] = None
    atpg: AtpgConfig = field(default_factory=AtpgConfig)
    sta: StaConfig = field(default_factory=StaConfig)
    pd_threshold: float = 1.0 / 4096.0
    exclude_nets: frozenset = frozenset()
    run_atpg_phase: bool = True
    run_layout_phase: bool = True
    validate_netlist: bool = True
    lint: bool = False
    fix_holds: bool = True
    hold_fix_iterations: int = 3
    incremental_eco: bool = True
    #: Detailed-placement refinement sweeps after legalisation.
    detailed_passes: int = 2
    #: Global-placement engine (a ``repro.layout.PLACERS`` name).
    placer: str = "quadratic"

    def __post_init__(self):
        # Normalise any iterable (list, set, generator) to a frozenset:
        # configs must be immutable, hashable and fingerprintable.
        if not isinstance(self.exclude_nets, frozenset):
            self.exclude_nets = frozenset(self.exclude_nets)
        require_placer(self.placer)

    # -- plain-data interchange -----------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-data form; inverse of :meth:`from_dict`."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if dataclasses.is_dataclass(value):
                value = dataclasses.asdict(value)
            elif isinstance(value, frozenset):
                value = sorted(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowConfig":
        """Build a config from plain data (e.g. parsed JSON/YAML).

        Nested ``atpg``/``sta`` entries may be dicts or the config
        objects themselves.

        Raises:
            ValueError: An unknown key was given (with a did-you-mean
                suggestion when one is close).
        """
        return cls(**_coerce_config_kwargs(dict(data)))

    def replace(self, **changes: Any) -> "FlowConfig":
        """A copy with ``changes`` applied; chainable.

        ``config.replace(tp_percent=5.0).replace(fix_holds=False)``
        builds run variants without mutating the original.  Accepts
        the same keys (and nested dicts) as :meth:`from_dict`.

        Raises:
            ValueError: An unknown key was given.
        """
        return dataclasses.replace(self, **_coerce_config_kwargs(changes))


@dataclass(frozen=True)
class HoldFixRound:
    """Census of one hold-fix ECO round.

    Attributes:
        round: 1-based round number within the STA stage.
        violations_before: Hold-violating endpoints entering the round.
        buffers_inserted: Delay buffers the round placed (0 means the
            whitespace budget was exhausted and the loop stopped).
        budget: Buffer budget the round started with (row whitespace
            divided by the delay buffer's width).
        budget_left: Budget remaining after the round's insertions.
    """

    round: int
    violations_before: int
    buffers_inserted: int
    budget: int
    budget_left: int


@dataclass
class FlowResult:
    """Everything a flow run produces.

    The Table 1/2/3 quantities are available through
    :meth:`test_metrics`, :meth:`area_metrics` and the :attr:`sta`
    result; benches diff them against the 0% run.

    :attr:`stage_seconds` maps stage name to wall-clock seconds; its
    keys are the documented :data:`STAGE_KEYS` contract (in that
    order), with the layout keys present only when the layout phase
    ran and ``"atpg"`` only when the ATPG phase ran.

    :attr:`hold_fix_rounds` records one :class:`HoldFixRound` per
    hold-fix ECO iteration (empty when no violations occurred or
    ``fix_holds`` was off).  :attr:`trace` carries the run's span tree
    when a tracer was active (see :mod:`repro.obs`), else None; the
    trace's top-level spans are exactly the recorded
    :data:`STAGE_KEYS` subset.
    """

    circuit: Circuit
    config: FlowConfig
    n_test_points: int = 0
    tpi: Optional[TpiReport] = None
    chains: Optional[ScanChains] = None
    atpg: Optional[AtpgResult] = None
    drc: Optional[DrcReport] = None
    plan: Optional[Floorplan] = None
    placement: Optional[Placement] = None
    reorder: Optional[ReorderReport] = None
    clock_trees: List[ClockTree] = field(default_factory=list)
    filler: Optional[FillerReport] = None
    congestion: Optional[CongestionReport] = None
    routed: Dict[str, RoutedNet] = field(default_factory=dict)
    parasitics: Dict[str, NetParasitics] = field(default_factory=dict)
    sta: Optional[StaResult] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    hold_fix_rounds: List[HoldFixRound] = field(default_factory=list)
    #: Lint-gate reports by stage (``"stage0"``, ``"pre_route"``,
    #: ``"eco_round_<n>"``); populated only when ``config.lint`` is on.
    lint_reports: Dict[str, LintReport] = field(default_factory=dict)
    trace: Optional[Trace] = None

    # -- Table 1 --------------------------------------------------------
    def test_metrics(self) -> TestDataMetrics:
        """The paper's Table 1 row for this run."""
        if self.atpg is None or self.chains is None:
            raise ValueError("flow ran without the ATPG phase")
        return TestDataMetrics(
            n_test_points=self.n_test_points,
            n_flip_flops=self.circuit.num_flip_flops,
            n_chains=self.chains.n_chains,
            l_max=self.chains.max_length,
            n_faults=self.atpg.fault_list.total,
            fault_coverage=self.atpg.fault_coverage,
            fault_efficiency=self.atpg.fault_efficiency,
            n_patterns=self.atpg.n_patterns,
        )

    # -- Table 2 --------------------------------------------------------
    def area_metrics(self) -> Dict[str, float]:
        """The paper's Table 2 row for this run."""
        if self.plan is None or self.congestion is None:
            raise ValueError("flow ran without the layout phase")
        logic_cells = sum(
            1 for inst in self.circuit.instances.values()
            if not inst.cell.is_filler
        )
        return {
            "n_cells": self.circuit.num_cells,
            "n_cells_logic": logic_cells,
            "n_rows": self.plan.n_rows,
            "row_length_um": self.plan.total_row_length_um,
            "core_area_um2": self.plan.core_area_um2,
            "filler_fraction": (
                self.filler.filler_fraction if self.filler else 0.0
            ),
            "chip_area_um2": self.plan.chip_area_um2,
            "wirelength_um": self.congestion.total_wirelength_um,
        }


def _lint_gate(circuit: Circuit, config: FlowConfig, result: FlowResult,
               stage: str, nets=None) -> None:
    """Run the netlist/DFT pack as a flow gate; abort on errors.

    ``nets`` scopes the audit to a dirty set (ECO rounds); the full
    design is checked when it is None.  The report is kept in
    ``result.lint_reports[stage]`` either way, so warnings stay
    inspectable even on clean runs.
    """
    report = lint_netlist(
        circuit,
        chains=result.chains,
        max_chain_length=config.max_chain_length,
        n_chains=config.n_chains,
        nets=nets,
    )
    result.lint_reports[stage] = report
    report.raise_on_error(context=f"lint gate {stage!r}")


def _record_stage(result: "FlowResult", stage: str,
                  seconds: float) -> None:
    """Store one stage's wall seconds and emit its completion event.

    The event rides the process-wide log (no-op by default) and
    inherits whatever correlation context the caller bound (run_id,
    job_id, cell), so per-stage telemetry lines up with the executor's
    task lifecycle without threading ids through the flow.
    """
    result.stage_seconds[stage] = seconds
    obs.emit("stage_done", stage=stage, seconds=seconds,
             tp_percent=result.config.tp_percent)


def run_flow(circuit: Circuit, library: Library,
             config: Optional[FlowConfig] = None) -> FlowResult:
    """Run the Figure 2 flow on ``circuit`` (modified in place).

    Args:
        circuit: Pre-DFT netlist (plain DFFs).  Pass a clone when the
            original must survive.
        library: Standard-cell library.
        config: Flow configuration.

    Returns:
        The populated :class:`FlowResult`.
    """
    config = config or FlowConfig()
    result = FlowResult(circuit=circuit, config=config)
    clock = time.perf_counter
    tracer = obs.get_tracer()
    trace_mark = tracer.mark()

    # -- Step 1: TPI & scan insertion -----------------------------------
    t0 = clock()
    with obs.span("tpi_scan") as sp:
        chaos.checkpoint("tpi_scan")
        n_ff_before = circuit.num_flip_flops
        n_tp = round(config.tp_percent / 100.0 * n_ff_before)
        result.n_test_points = n_tp
        if n_tp > 0:
            result.tpi = insert_test_points(circuit, library, TpiConfig(
                n_test_points=n_tp,
                pd_threshold=config.pd_threshold,
                exclude_nets=set(config.exclude_nets),
            ))
        result.chains = insert_scan(
            circuit, library,
            max_chain_length=config.max_chain_length,
            n_chains=config.n_chains,
        )
        # Synthesis-style electrical DRC: bound fanout (TSFF outputs and
        # the TE/TR control nets in particular), size overloaded drivers.
        result.drc = fix_electrical(circuit, library)
        sp.gauge("test_points", n_tp)
        sp.gauge("scan_chains", result.chains.n_chains)
    _record_stage(result, "tpi_scan", clock() - t0)
    if config.validate_netlist:
        validate(circuit).raise_on_error()
    if config.lint:
        # Stage-0 gate: the freshly DFT-prepared netlist must pass the
        # full pack (loops, chain continuity/balance, clock domains)
        # before any layout effort is spent on it.
        _lint_gate(circuit, config, result, "stage0")

    if config.run_layout_phase:
        _layout_phase(circuit, library, config, result)

    # -- ATPG (on the reordered netlist, as in the paper) ----------------
    if config.run_atpg_phase:
        t0 = clock()
        with obs.span("atpg") as sp:
            chaos.checkpoint("atpg")
            result.atpg = run_atpg(circuit, config=config.atpg)
            sp.counter("patterns", result.atpg.n_patterns)
            sp.counter("aborted_faults", result.atpg.aborted)
            sp.counter("redundant_faults", result.atpg.redundant)
        _record_stage(result, "atpg", clock() - t0)
    result.trace = tracer.capture(trace_mark)
    return result


def _layout_phase(circuit: Circuit, library: Library,
                  config: FlowConfig, result: FlowResult) -> None:
    """Steps 2-6 of the flow."""
    clock = time.perf_counter

    # -- Step 2: floorplanning & placement -------------------------------
    t0 = clock()
    with obs.span("floorplan_place") as sp:
        chaos.checkpoint("floorplan_place")
        # Reserve whitespace for the cells later ECO steps insert: clock
        # buffers (about 1.5x the leaf-cluster count) plus a hold/scan
        # buffer allowance.  Without the reserve, a 97%-utilisation
        # floorplan cannot absorb the clock tree.
        clock_buffer = library.clock_buffers()[-1]
        small_buffer = library.family("BUF")[0]
        n_ff = circuit.num_flip_flops
        est_clock_buffers = 4 + int(1.6 * (n_ff / 18 + 1))
        reserve = (
            est_clock_buffers * clock_buffer.area_um2
            + 40 * small_buffer.area_um2
        )
        plan = build_floorplan(circuit, config.target_utilization,
                               reserve_area_um2=reserve)
        # Strategy dispatch: the configured engine owns global place,
        # detailed refinement and every later ECO insertion.  The seed
        # is derived from the netlist's structural content plus the
        # engine name, so stochastic engines (SA) replay identically
        # in-process, across workers and across machines.
        placer = get_placer(config.placer)
        seed = placement_seed(circuit, config.placer)
        placement = placer.place(circuit, plan, seed=seed)
        placer.refine(circuit, placement,
                      passes=config.detailed_passes, seed=seed)
        result.plan = plan
        result.placement = placement
        sp.gauge("rows", plan.n_rows)
        sp.gauge("cells_placed", len(placement.positions))
    _record_stage(result, "floorplan_place", clock() - t0)

    # -- Step 3: layout-driven scan-chain reordering ----------------------
    t0 = clock()
    with obs.span("scan_reorder") as sp:
        chaos.checkpoint("scan_reorder")
        chains = result.chains
        assert chains is not None
        ff_positions = {
            name: placement.positions[name]
            for chain in chains.chains
            for name in chain
        }
        scan_in_positions = {
            i: plan.pad_positions.get(port, plan.core.center)
            for i, port in enumerate(chains.scan_in_ports)
        }
        before_buffers = set(circuit.instances)
        result.reorder = reorder_chains(
            circuit, chains, ff_positions, scan_in_positions, library
        )
        te_buffers = [n for n in circuit.instances
                      if n not in before_buffers]
        sp.counter("te_buffers", len(te_buffers))
    _record_stage(result, "scan_reorder", clock() - t0)

    # -- Step 4: ECO, clock trees, fillers, routing -----------------------
    t0 = clock()
    with obs.span("eco_cts_route") as sp:
        chaos.checkpoint("eco_cts_route")
        if te_buffers:
            placer.eco_place(circuit, placement, te_buffers)
        trees = synthesize_all_clock_trees(
            circuit, library, dict(placement.positions)
        )
        result.clock_trees = trees
        hints = {}
        new_buffers = []
        for tree in trees:
            hints.update(tree.buffer_positions)
            new_buffers.extend(tree.buffers)
        if new_buffers:
            placer.eco_place(circuit, placement, new_buffers, hints=hints)
        sp.counter("clock_buffers", len(new_buffers))
        if config.validate_netlist:
            validate(circuit).raise_on_error()
        if config.lint:
            # Pre-route gate: last full-pack audit before routing, so a
            # netlist corrupted by the ECO / CTS edits above is caught
            # before the (expensive) route + extraction + STA chain.
            _lint_gate(circuit, config, result, "pre_route")
        router = GlobalRouter(circuit, placement)
        result.congestion = router.route_all()
        result.routed = router.routed
    _record_stage(result, "eco_cts_route", clock() - t0)

    # -- Step 5: extraction ----------------------------------------------
    t0 = clock()
    with obs.span("extraction") as sp:
        chaos.checkpoint("extraction")
        result.parasitics = extract_all(circuit, placement, result.routed)
        sp.counter("nets_extracted", len(result.parasitics))
    _record_stage(result, "extraction", clock() - t0)

    # -- Step 6: STA (with hold-fix ECO loop) ------------------------------
    t0 = clock()
    with obs.span("sta") as sta_span:
        chaos.checkpoint("sta")
        sta_state: Optional[StaState] = None
        if config.incremental_eco:
            result.sta, sta_state = run_sta_with_state(
                circuit, result.parasitics, config.sta
            )
        else:
            result.sta = run_sta(circuit, result.parasitics, config.sta)
        # Everything dirtied while *building* the layout is already
        # reflected in the full route/extract/STA above; from here the
        # tracker censuses only the hold-fix edits.
        circuit.reset_dirty()
        rounds = config.hold_fix_iterations if config.fix_holds else 0
        for round_no in range(1, rounds + 1):
            if not result.sta.hold_slacks:
                break
            with obs.span("hold_fix_round") as sp:
                fix = _fix_hold_violations(circuit, library, placement,
                                           result.sta, placer,
                                           round_no=round_no)
                result.hold_fix_rounds.append(fix)
                sp.gauge("round", fix.round)
                sp.gauge("violations_before", fix.violations_before)
                sp.gauge("buffers_inserted", fix.buffers_inserted)
                sp.gauge("budget_left", fix.budget_left)
                if fix.buffers_inserted == 0:
                    # Out of whitespace: remaining violations reported.
                    break
                if sta_state is not None:
                    # Scoped ECO update: rip up / re-route / re-extract
                    # / re-propagate only what the round touched.
                    dirty_nets, dirty_insts = circuit.reset_dirty()
                    if config.lint:
                        # Cheap dirty-set re-lint: audit only the nets
                        # this round touched before re-routing them.
                        _lint_gate(circuit, config, result,
                                   f"eco_round_{round_no}",
                                   nets=dirty_nets)
                    result.congestion = router.reroute(dirty_nets)
                    result.routed = router.routed
                    result.parasitics = extract_incremental(
                        circuit, placement, result.routed,
                        result.parasitics, dirty_nets,
                    )
                    result.sta, sta_state = run_sta_incremental(
                        circuit, result.parasitics, sta_state,
                        dirty_nets, dirty_insts, config.sta,
                    )
                    sp.counter("route.rerouted_nets", len(dirty_nets))
                    sp.gauge("sta_incr.cone_size", sta_state.cone_size)
                    sp.gauge("sta_incr.endpoints_rechecked",
                             sta_state.endpoints_rechecked)
                else:
                    dirty_nets, _ = circuit.reset_dirty()
                    if config.lint:
                        _lint_gate(circuit, config, result,
                                   f"eco_round_{round_no}",
                                   nets=dirty_nets)
                    router = GlobalRouter(circuit, placement)
                    result.congestion = router.route_all()
                    result.routed = router.routed
                    result.parasitics = extract_all(circuit, placement,
                                                    result.routed)
                    result.sta = run_sta(circuit, result.parasitics,
                                         config.sta)
        sta_span.counter(
            "hold_buffers_inserted",
            sum(r.buffers_inserted for r in result.hold_fix_rounds),
        )
        sta_span.gauge("hold_violations_left", result.sta.hold_violations)
    _record_stage(result, "sta", clock() - t0)

    # Fillers last: the hold-fix ECO needs the row gaps the fillers
    # would otherwise occupy.  Fillers have no pins, so routing and
    # timing are unaffected; only the area census reads them.
    result.filler = insert_fillers(circuit, placement, library)
    if config.validate_netlist:
        validate(circuit).raise_on_error()


def _fix_hold_violations(circuit: Circuit, library: Library,
                         placement, sta: StaResult, placer,
                         round_no: int = 1) -> HoldFixRound:
    """Insert delay buffers in front of hold-violating data pins.

    The smallest buffer is chained on the endpoint's D net (moving only
    that sink) until the measured negative slack is covered; the
    inserted cells are ECO-placed near the endpoint.  Returns the
    round's :class:`HoldFixRound` census; ``buffers_inserted == 0``
    means the whitespace budget was spent.
    """
    delay_buffer = library.family("BUF")[0]
    min_delay_ps = delay_buffer.arcs[0].delay.lookup(20.0, 4.0).value
    # Buffer budget: only as many as the remaining row whitespace can
    # legally hold (at 97% utilisation there is little slack to spend).
    occupancy = placement.row_occupancy_sites(circuit)
    free_sites = sum(
        row.n_sites - used
        for row, used in zip(placement.plan.rows, occupancy)
    )
    budget = max(0, free_sites // delay_buffer.width_sites - 1)
    new_cells = []
    ordered = sorted(sta.hold_slacks.items(), key=lambda kv: kv[1])
    for endpoint, slack in ordered:
        inst = circuit.instances.get(endpoint)
        if inst is None or inst.cell.sequential is None:
            continue
        seq = inst.cell.sequential
        d_net = inst.conns.get(seq.data_pin)
        if d_net is None:
            continue
        # Clamp against the budget *remaining*, never letting the bound
        # go negative: an earlier endpoint spending the whole budget
        # must stop the loop, not fold a negative cap into min().
        remaining = budget - len(new_cells)
        if remaining <= 0:
            break  # out of whitespace; remaining violations stay
        n_buffers = max(1, int(-slack / max(1.0, min_delay_ps)) + 1)
        n_buffers = min(n_buffers, 6, remaining)
        source = d_net
        for _ in range(n_buffers):
            new_net = circuit.split_net_before_sinks(
                source, [(endpoint, seq.data_pin)], "hold"
            )
            name = circuit.new_instance_name("holdbuf")
            circuit.add_instance(
                name, delay_buffer, {"A": source, "Z": new_net.name}
            )
            new_cells.append(name)
            source = new_net.name
    if new_cells:
        placer.eco_place(circuit, placement, new_cells)
    return HoldFixRound(
        round=round_no,
        violations_before=len(sta.hold_slacks),
        buffers_inserted=len(new_cells),
        budget=budget,
        budget_left=budget - len(new_cells),
    )
