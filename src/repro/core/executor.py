"""Parallel sweep executor with content-addressed result caching.

The paper's experiment (Section 4.1) generates six independent layouts
per circuit — one per test-point level.  Levels never share state: each
layout starts from a freshly built netlist, so the sweep is
embarrassingly parallel.  This module fans sweep levels (and whole
circuits) out over a :class:`concurrent.futures.ProcessPoolExecutor`
and memoises finished levels in an on-disk cache so re-runs and
partially-failed sweeps resume instantly.

Three ideas, in order of appearance:

* **Picklable summaries** — a worker cannot return a
  :class:`~repro.core.flow.FlowResult` (it drags the whole mutated
  netlist, placement and routing across the process boundary), so it
  returns a :class:`FlowSummary`: exactly the Table 1/2/3 quantities,
  per-stage timings and log records, nothing else.  ``FlowSummary``
  quacks like ``FlowResult`` for every accessor the table builders in
  :class:`~repro.core.experiment.ExperimentResult` use, so sweep
  results assemble through the identical code path as serial runs.

* **Content-addressed caching** — each level's cache key is the SHA-256
  of ``(circuit structural hash, FlowConfig fingerprint, library
  version, schema version)``.  Identical inputs always map to the same
  key; any change to the netlist, a config knob or the library version
  changes the key.  Entries are one pickle file per key under
  ``cache_dir``; writes are atomic (temp file + ``os.replace``) so a
  killed sweep never leaves a corrupt entry behind, and unreadable
  entries are treated as misses and deleted.

* **Determinism** — the flow's only RNG consumer is seeded from
  ``FlowConfig.atpg.seed``, and every stochastic tie-break in the code
  base derives from stable (process-independent) hashes, so a parallel
  run is bit-identical to a serial run of the same configs.
  Optionally (``ExecutorConfig.derive_seeds``) the per-level ATPG seed
  is itself derived from the cache key, decorrelating levels without
  sacrificing reproducibility; the flag is part of the cache key, so
  the two modes never alias.

Serial :func:`~repro.core.experiment.run_experiment` remains the
reference semantics; with ``derive_seeds=False`` (the default) this
executor reproduces it exactly, at any job count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
import uuid
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import repro
from repro import chaos, obs
from repro.chaos import FaultPlan
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.flow import FlowConfig, FlowResult, run_flow
from repro.core.metrics import TestDataMetrics
from repro.core.resilience import (
    RetryPolicy,
    SweepJournal,
    SweepReport,
    TaskFailure,
    TaskTimeoutError,
    WorkerCrashError,
    completed_keys,
    format_exception_for_journal,
    is_retryable,
    read_journal,
)
from repro.library.cell import Library
from repro.library.cmos130 import cmos130
from repro.netlist.circuit import Circuit
from repro.obs.tracer import Trace

#: Bump when the FlowSummary layout or key derivation changes; old
#: cache entries then miss instead of unpickling into the wrong shape.
CACHE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Picklable result summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathSummary:
    """Picklable digest of one :class:`~repro.sta.analysis.TimingPath`.

    Carries every field the Table 3 assembly reads, plus slack.
    """

    domain: str
    endpoint: str
    startpoint: str
    t_wires_ps: float
    t_intrinsic_ps: float
    t_load_dep_ps: float
    t_setup_ps: float
    t_skew_ps: float
    total_ps: float
    slack_ps: float
    n_test_points: int

    @property
    def fmax_mhz(self) -> float:
        """Highest frequency this path permits."""
        return 1e6 / self.total_ps if self.total_ps > 0 else float("inf")


@dataclass(frozen=True)
class StaSummary:
    """Picklable digest of an :class:`~repro.sta.analysis.StaResult`."""

    paths: Dict[str, Tuple[PathSummary, ...]]
    slow_nodes: Tuple[str, ...] = ()
    hold_violations: int = 0

    def critical(self, domain: str) -> Optional[PathSummary]:
        """Worst path of one domain."""
        paths = self.paths.get(domain)
        return paths[0] if paths else None


@dataclass
class FlowSummary:
    """Everything a sweep needs from one flow run, and nothing more.

    Unlike :class:`~repro.core.flow.FlowResult` this object holds no
    netlist, placement or routing, so it pickles in microseconds and
    crosses process boundaries (and the result cache) cheaply.  It
    offers the same accessor surface the Table 1/2/3 builders use:
    :meth:`test_metrics`, :meth:`area_metrics`, :attr:`n_test_points`
    and :attr:`sta`.

    Attributes:
        tp_percent: The sweep level this run executed.
        n_test_points: TSFFs actually inserted.
        test: Table 1 metrics (None when the ATPG phase was skipped).
        area: Table 2 metrics (None when the layout phase was skipped).
        sta: Table 3 digest (None when the layout phase was skipped).
        stage_seconds: Per-stage wall-clock seconds.  On a cache hit
            the executor zeroes this dict (no stage re-ran) and keeps
            the original timings in :attr:`cached_stage_seconds`.
        cached_stage_seconds: Stage timings of the run that populated
            the cache entry (empty for fresh runs).
        log: Per-stage log records emitted by the worker.
        cache_key: Content hash this summary is stored under.
        from_cache: True when served from the cache, not computed.
        worker_pid: PID of the process that ran the flow.
        trace: The run's span tree when the worker traced its flow
            (see :mod:`repro.obs`); None otherwise, and always None on
            cache hits (no stage re-ran).  The plain-class default
            keeps summaries pickled before this field existed loading
            cleanly — they read back as untraced.
    """

    tp_percent: float
    n_test_points: int
    test: Optional[TestDataMetrics] = None
    area: Optional[Dict[str, float]] = None
    sta: Optional[StaSummary] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cached_stage_seconds: Dict[str, float] = field(default_factory=dict)
    log: Tuple[str, ...] = ()
    cache_key: str = ""
    from_cache: bool = False
    worker_pid: int = 0
    trace: Optional[Trace] = None

    def effective_stage_seconds(self) -> Dict[str, float]:
        """Stage timings that actually describe this run's work.

        Live timings when the flow ran in this sweep; the original
        run's timings when the summary was served from the cache (a
        hit zeroes :attr:`stage_seconds` because no stage re-ran).
        Reporting should use this so cached sweeps still render
        sensible stage tables.
        """
        if self.from_cache and self.cached_stage_seconds:
            return dict(self.cached_stage_seconds)
        return dict(self.stage_seconds)

    def test_metrics(self) -> TestDataMetrics:
        """The paper's Table 1 row for this run."""
        if self.test is None:
            raise ValueError("flow ran without the ATPG phase")
        return self.test

    def area_metrics(self) -> Dict[str, float]:
        """The paper's Table 2 row for this run."""
        if self.area is None:
            raise ValueError("flow ran without the layout phase")
        return dict(self.area)


def summarize(result: FlowResult, cache_key: str = "") -> FlowSummary:
    """Condense a :class:`FlowResult` into a picklable summary."""
    test = None
    if result.atpg is not None and result.chains is not None:
        test = result.test_metrics()
    area = None
    if result.plan is not None and result.congestion is not None:
        area = result.area_metrics()
    sta = None
    if result.sta is not None:
        sta = StaSummary(
            paths={
                domain: tuple(
                    PathSummary(
                        domain=p.domain,
                        endpoint=p.endpoint,
                        startpoint=p.startpoint,
                        t_wires_ps=p.t_wires_ps,
                        t_intrinsic_ps=p.t_intrinsic_ps,
                        t_load_dep_ps=p.t_load_dep_ps,
                        t_setup_ps=p.t_setup_ps,
                        t_skew_ps=p.t_skew_ps,
                        total_ps=p.total_ps,
                        slack_ps=p.slack_ps,
                        n_test_points=p.n_test_points,
                    )
                    for p in paths
                )
                for domain, paths in result.sta.paths.items()
            },
            slow_nodes=tuple(sorted(result.sta.slow_nodes)),
            hold_violations=result.sta.hold_violations,
        )
    pid = os.getpid()
    log = tuple(
        f"pid {pid}: {stage}: {seconds * 1000.0:.1f} ms"
        for stage, seconds in result.stage_seconds.items()
    )
    return FlowSummary(
        tp_percent=result.config.tp_percent,
        n_test_points=result.n_test_points,
        test=test,
        area=area,
        sta=sta,
        stage_seconds=dict(result.stage_seconds),
        log=log,
        cache_key=cache_key,
        worker_pid=pid,
        trace=result.trace,
    )


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
def _canonical(obj):
    """Recursively reduce ``obj`` to an order-independent structure.

    Dataclass fields and dict items are sorted by name, sets by their
    canonical representation — so two logically equal configs always
    canonicalise identically, no matter the construction order of their
    dicts and sets.  The type name is included so distinct config
    classes with equal fields never collide.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        items = tuple(
            (f.name, _canonical(getattr(obj, f.name)))
            for f in sorted(dataclasses.fields(obj), key=lambda f: f.name)
        )
        return ("dc", type(obj).__name__, items)
    if isinstance(obj, dict):
        items = tuple(sorted(
            ((_canonical(k), _canonical(v)) for k, v in obj.items()),
            key=repr,
        ))
        return ("dict", items)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((_canonical(x) for x in obj), key=repr)))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(x) for x in obj))
    if isinstance(obj, float):
        return ("f", repr(obj))
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}: add it to "
        "repro.core.executor._canonical"
    )


def config_fingerprint(config) -> str:
    """Stable SHA-256 fingerprint of a (nested) config dataclass.

    Equal configs fingerprint equally regardless of field, dict or set
    construction order; any changed knob changes the fingerprint.
    """
    canon = repr(_canonical(config)).encode("utf-8")
    return hashlib.sha256(canon).hexdigest()


def circuit_structural_hash(circuit: Circuit) -> str:
    """SHA-256 over the netlist structure (names, cells, connectivity).

    Two circuits hash equally iff they have the same instances (name,
    cell, pin connections), nets (driver, sinks), ports and clock
    domains.  Placement and other derived state never enter the hash —
    the flow recomputes those from the netlist.
    """
    h = hashlib.sha256()

    def feed(tag: str, payload) -> None:
        h.update(tag.encode("utf-8"))
        h.update(repr(payload).encode("utf-8"))
        h.update(b"\x00")

    feed("name", circuit.name)
    feed("inputs", tuple(circuit.inputs))
    feed("outputs", tuple(
        (port, circuit.output_net(port)) for port in circuit.outputs
    ))
    feed("clocks", tuple(
        (dom.net, dom.period_ps) for dom in circuit.clocks
    ))
    for name in sorted(circuit.instances):
        inst = circuit.instances[name]
        feed("inst", (name, inst.cell.name, tuple(sorted(inst.conns.items()))))
    for name in sorted(circuit.nets):
        net = circuit.nets[name]
        feed("net", (name, net.driver, tuple(sorted(net.sinks))))
    return h.hexdigest()


def flow_cache_key(circuit: Circuit, config: FlowConfig,
                   library: Library, extra: str = "") -> str:
    """Cache key of one flow run: circuit x config x library version.

    Args:
        circuit: The pre-DFT netlist the flow would start from.
        config: Full flow configuration (the level's ``tp_percent``
            already applied).
        library: Cell library; its name and the package version stand
            in for the library contents, which are code-defined.
        extra: Executor-mode salt (e.g. the ``derive_seeds`` flag) so
            runs under different execution semantics never alias.
    """
    parts = "\n".join([
        f"schema={CACHE_SCHEMA_VERSION}",
        circuit_structural_hash(circuit),
        config_fingerprint(config),
        f"library={library.name}:{repro.__version__}",
        extra,
    ])
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()


def derive_seed(cache_key: str, attempt: int = 0) -> int:
    """Deterministic 63-bit ATPG seed derived from a cache key.

    ``attempt`` folds the retry number into the seed (attempt 0
    reproduces the historical value exactly): under
    ``ExecutorConfig.derive_seeds`` a retried task explores a fresh
    but fully reproducible search path, which un-sticks seed-sensitive
    heuristics without sacrificing replayability.
    """
    if attempt <= 0:
        return int(cache_key[:16], 16) & 0x7FFFFFFFFFFFFFFF
    salted = hashlib.sha256(
        f"{cache_key}:attempt={attempt}".encode("utf-8")
    ).hexdigest()
    return int(salted[:16], 16) & 0x7FFFFFFFFFFFFFFF


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed pickle store: one :class:`FlowSummary` per key.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` (two-level fan-out keeps
    directories small on big sweeps).  Writes go through a temp file
    and ``os.replace`` so concurrent writers and crashes can never
    leave a torn entry.  Unreadable/truncated entries read as misses
    and are **quarantined** (renamed to ``<entry>.pkl.corrupt``) rather
    than deleted — the bytes stay available for post-mortems while the
    live path frees up for the recompute.

    With ``max_bytes`` set the store is a size-capped LRU: every
    ``put`` that pushes the total entry size over the cap evicts
    least-recently-used entries (oldest mtime first; a hit refreshes
    the entry's mtime) until the total fits again.  The entry just
    written is never evicted, so a single oversized result degrades to
    "cache of one" rather than thrashing.  A long-running daemon can
    therefore treat one cache directory as a shared artifact store
    without ever filling the disk.
    """

    #: Suffix appended to quarantined (unreadable) entries.
    QUARANTINE_SUFFIX = ".corrupt"

    def __init__(self, root, max_bytes: Optional[int] = None,
                 read_only: bool = False):
        self.root = Path(root)
        self.max_bytes = max_bytes
        #: Read-only mode: ``put`` is a silent no-op.  A degraded
        #: daemon (failing disk) keeps *serving* existing artifacts
        #: while no longer trusting the disk with new ones.
        self.read_only = read_only
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        #: ``put`` calls that failed with an OSError (disk full,
        #: permission loss).  The caller absorbed the failure — the
        #: result survived uncached — but the count is the degraded-
        #: mode signal.
        self.write_failures = 0
        self.skipped_writes = 0

    def path(self, key: str) -> Path:
        """Entry path for ``key``."""
        return self.root / key[:2] / f"{key}.pkl"

    def quarantine_path(self, key: str) -> Path:
        """Where an unreadable entry for ``key`` is parked."""
        path = self.path(key)
        return path.with_name(path.name + self.QUARANTINE_SUFFIX)

    def _quarantine(self, key: str) -> None:
        """Move a torn/foreign entry aside (atomic, last-one-wins)."""
        try:
            os.replace(self.path(key), self.quarantine_path(key))
        except OSError:
            pass
        self.misses += 1
        self.corrupt += 1
        obs.counter("cache.quarantined")

    def get(self, key: str) -> Optional[FlowSummary]:
        """Load the summary stored under ``key``, or None."""
        path = self.path(key)
        try:
            with open(path, "rb") as handle:
                summary = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn/stale entry: park it for inspection, recompute.
            self._quarantine(key)
            return None
        if not isinstance(summary, FlowSummary):
            self._quarantine(key)
            return None
        self.hits += 1
        try:
            # LRU touch: a hit makes the entry recently-used, so the
            # size-cap evictor (oldest mtime first) spares it.
            os.utime(path)
        except OSError:
            pass
        return summary

    def put(self, key: str, summary: FlowSummary) -> None:
        """Atomically store ``summary`` under ``key``; then enforce
        the ``max_bytes`` budget (evicting LRU entries, never this
        one).  A no-op in ``read_only`` mode."""
        if self.read_only:
            self.skipped_writes += 1
            return
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(summary, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._enforce_budget(keep=path)

    def total_bytes(self) -> int:
        """Current size of all live entries (quarantine excluded)."""
        total = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return total

    def _enforce_budget(self, keep: Path) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        ``keep`` (the entry just written) is exempt.  Races are benign:
        an entry another process already removed is simply skipped, and
        concurrent writers each converge the directory toward the cap.
        """
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                stat = entry.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, str(entry), entry, stat.st_size))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        for _mtime, _name, entry, size in sorted(entries):
            if total <= self.max_bytes:
                break
            if entry == keep:
                continue
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1
            obs.counter("cache.evictions")


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
@dataclass
class ExecutorConfig:
    """How a sweep is executed.

    Attributes:
        jobs: Worker processes.  1 runs every level inline in this
            process (no pool, no pickling of task specs) — handy for
            debugging and for lambdas as circuit factories.
        cache_dir: Result-cache directory; None disables caching.
        use_cache: Master switch; False ignores ``cache_dir``.
        derive_seeds: Re-seed each level's ATPG RNG from its cache key
            instead of the configured seed.  Applied identically at
            every job count, so parallel and serial runs stay
            bit-identical; keyed into the cache so the modes never mix.
        mp_context: ``multiprocessing`` start method (None = platform
            default).
        trace: Have every worker record a span tree for its flow run
            (returned on ``FlowSummary.trace``), and the parent record
            per-level queue-wait/worker-run spans plus cache counters
            on the active tracer.  Observability only: it never enters
            the cache key, so traced and untraced sweeps share cache
            entries and results stay bit-identical either way.
        retries: Retries per task after its first attempt.  Only
            *retryable* failures (worker crashes, broken pools,
            timeouts, transient I/O — see
            :func:`repro.core.resilience.is_retryable`) consume the
            budget; config/validation errors fail immediately.
        task_timeout_s: Watchdog per-task timeout.  A task running
            longer is presumed hung: the worker pool is replaced (the
            hung worker killed), the task's attempt is charged, and
            innocent in-flight tasks are requeued without penalty.
            None disables the watchdog; it is only enforceable with
            ``jobs > 1`` (an inline run cannot preempt itself).
        backoff_base_s: First-retry backoff; doubles per further retry
            (deterministic, no jitter), capped at ``backoff_max_s``.
        backoff_max_s: Backoff ceiling.
        fail_fast: Stop scheduling new tasks after the first permanent
            cell failure; unstarted cells are reported as aborted.
            Off (the default), the sweep degrades gracefully and
            returns every cell it could compute.
        resume: Append to (rather than truncate) the sweep journal and
            log cells served from the cache as resumed.  Completed
            cells are recognised by their content-hash keys, so a
            killed sweep continues where it stopped.
        chaos: Deterministic fault-injection plan (tests/CI only); the
            ``REPRO_CHAOS`` environment variable is the CLI-side way
            to set it.  Never part of the cache key.
        cache_max_bytes: Size cap of the result cache; over it, the
            least-recently-used entries are evicted on write (see
            :class:`ResultCache`).  None means unbounded (the classic
            one-shot-sweep behaviour).
        journal: Explicit journal file path.  Unset, the journal rides
            the cache directory (``<cache_dir>/journal.jsonl``); the
            sweep service sets it so concurrent jobs sharing one cache
            each keep their own task-lifecycle journal.
        cancel_check: Polled between task submissions; returning True
            cancels the sweep cooperatively — no new cells start,
            queued/waiting cells are recorded as ``SweepCancelled``
            failures, and in-flight cells run to completion (their
            results still land in the cache).  None (default) means
            the sweep is uncancellable, as before.
        cache_read_only: Serve cache hits but never write new entries
            (``put`` becomes a no-op).  The sweep service sets this
            once a cache write has failed — a daemon on a full disk
            keeps computing and serving, it just stops trusting the
            disk with new artifacts.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    use_cache: bool = True
    derive_seeds: bool = False
    mp_context: Optional[str] = None
    trace: bool = False
    retries: int = 2
    task_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.1
    backoff_max_s: float = 30.0
    fail_fast: bool = False
    resume: bool = False
    chaos: Optional[FaultPlan] = None
    cache_max_bytes: Optional[int] = None
    journal: Optional[str] = None
    cancel_check: Optional[Callable[[], bool]] = None
    cache_read_only: bool = False

    @property
    def cache(self) -> Optional[ResultCache]:
        """The configured cache, or None when caching is off."""
        if self.cache_dir and self.use_cache:
            return ResultCache(self.cache_dir,
                               max_bytes=self.cache_max_bytes,
                               read_only=self.cache_read_only)
        return None

    @property
    def retry_policy(self) -> RetryPolicy:
        """The deterministic backoff schedule these knobs define."""
        return RetryPolicy(
            max_retries=max(0, self.retries),
            backoff_base_s=self.backoff_base_s,
            backoff_max_s=self.backoff_max_s,
        )

    def journal_path(self) -> Optional[Path]:
        """Where this sweep journals: the explicit ``journal`` path
        when set, else alongside the cache (no cache, no resume state
        to track)."""
        if self.journal:
            return Path(self.journal)
        if self.cache_dir and self.use_cache:
            return Path(self.cache_dir) / "journal.jsonl"
        return None


@dataclass
class _LevelTask:
    """One (circuit, level) unit of work.  Must stay picklable."""

    name: str
    tp_percent: float
    circuit_factory: Callable[[], Circuit]
    flow: FlowConfig
    library: Optional[Library]
    cache_key: str
    #: Record a span tree in the worker (never part of the cache key).
    trace: bool = False
    #: Retry attempt this submission represents (0 = first try).
    attempt: int = 0
    #: Scripted faults to inject in the worker (tests/CI only).
    chaos: Optional[FaultPlan] = None

    @property
    def label(self) -> str:
        """Display label of this level (trace and error contexts)."""
        return f"{self.name}@{self.tp_percent:g}%"


class SweepExecutionError(RuntimeError):
    """One or more sweep levels failed.

    Completed levels were already cached (when a cache is configured),
    so re-running the sweep resumes from the failures only.

    Attributes:
        failures: ``(circuit name, tp_percent, exception)`` per failed
            level.
    """

    def __init__(self, failures: List[Tuple[str, float, BaseException]]):
        self.failures = failures
        lines = ", ".join(
            f"{name} @ {pct:g}%: {exc!r}" for name, pct, exc in failures
        )
        super().__init__(
            f"{len(failures)} sweep level(s) failed ({lines}); "
            "completed levels are cached and will be reused on re-run"
        )


def _run_level(task: _LevelTask) -> FlowSummary:
    """Worker entry point: build a fresh netlist, run the flow.

    With ``task.trace`` set, the flow runs under a fresh tracer whose
    root spans are exactly the run's stage spans; the resulting
    :class:`~repro.obs.tracer.Trace` rides back on the summary.
    Tracing is scoped, so an inline (``jobs=1``) run leaves the
    parent's tracer untouched.  A chaos plan (task-carried, or from
    the ``REPRO_CHAOS`` environment) is activated around the flow so
    scripted stage faults fire for exactly this cell and attempt.
    """
    # Workers started via "spawn" re-import with the null event log;
    # honour REPRO_EVENTS there too so flow stage events from every
    # process land in the same JSONL sink.  One boolean check per
    # task, nothing on the stage hot path.
    if not obs.events_active():
        obs.install_events_from_env()
    plan = task.chaos if task.chaos is not None else chaos.plan_from_env()
    with chaos.active(plan, task.name, task.tp_percent, task.attempt):
        circuit = task.circuit_factory()
        library = task.library if task.library is not None else cmos130()
        if task.trace:
            with obs.tracing(label=task.label):
                result = run_flow(circuit, library, task.flow)
        else:
            result = run_flow(circuit, library, task.flow)
    return summarize(result, cache_key=task.cache_key)


def _prepare_attempt(task: _LevelTask, attempt: int,
                     derive_seeds: bool) -> _LevelTask:
    """The task spec to submit for ``attempt``.

    Attempt 0 is the task as planned.  Retries re-stamp the attempt
    number (faults and journals key on it) and, under
    ``derive_seeds``, re-derive the ATPG seed from
    ``derive_seed(cache_key, attempt)`` so a seed-sensitive failure is
    not replayed verbatim.  Without ``derive_seeds`` the configured
    seed is kept: retried cells stay bit-identical to a clean serial
    run, which the resume/golden guarantees depend on.
    """
    if attempt == 0:
        return task
    flow = task.flow
    if derive_seeds:
        flow = replace(flow, atpg=replace(
            flow.atpg, seed=derive_seed(task.cache_key, attempt)))
    return replace(task, attempt=attempt, flow=flow)


def _check_picklable(task: _LevelTask) -> None:
    """Fail early, with a pointed message, on unpicklable task specs."""
    try:
        pickle.dumps(task)
    except Exception as exc:
        raise TypeError(
            f"sweep level {task.name} @ {task.tp_percent:g}% is not "
            "picklable and cannot be sent to a worker process; use a "
            "module-level circuit factory (functools.partial(factory, "
            "scale=...) instead of a lambda), or run with jobs=1"
        ) from exc


def _plan_levels(config: ExperimentConfig,
                 executor: ExecutorConfig,
                 plan: Optional[FaultPlan] = None) -> List[_LevelTask]:
    """Expand one experiment into per-level tasks with cache keys.

    The circuit is built once per level *in the parent* purely to
    compute its structural hash (factories are deterministic, so the
    worker's fresh build hashes identically); the built netlist is
    dropped, never pickled.  The chaos plan (if any) rides on the task
    spec but never enters the cache key: a chaos run and a clean run
    of the same configs share keys, which is what lets ``--resume``
    with the plan disabled complete a chaos-holed sweep.
    """
    library = config.library or cmos130()
    tasks = []
    for pct in config.tp_percents:
        flow = replace(config.flow, tp_percent=pct)
        circuit = config.circuit_factory()
        key = flow_cache_key(
            circuit, flow, library,
            extra=f"derive_seeds={executor.derive_seeds}",
        )
        if executor.derive_seeds:
            flow = replace(flow, atpg=replace(flow.atpg,
                                              seed=derive_seed(key)))
        tasks.append(_LevelTask(
            name=config.name,
            tp_percent=pct,
            circuit_factory=config.circuit_factory,
            flow=flow,
            library=config.library,
            cache_key=key,
            trace=executor.trace,
            chaos=plan,
        ))
    return tasks


def _cache_hit(summary: FlowSummary) -> FlowSummary:
    """Rebadge a stored summary as a hit: no stage re-ran, so the
    live ``stage_seconds`` are all zero, the original timings move to
    ``cached_stage_seconds`` (see ``effective_stage_seconds``), and
    any stored trace is dropped — a trace describes work this sweep
    did not perform, and its stale wall epoch would skew a merged
    timeline."""
    return replace(
        summary,
        from_cache=True,
        cached_stage_seconds=dict(summary.stage_seconds),
        stage_seconds={k: 0.0 for k in summary.stage_seconds},
        trace=None,
    )


def _record_level(tracer, task: _LevelTask, summary: FlowSummary,
                  t_submit: float, t_done: float) -> None:
    """Record the parent-side span of one completed level.

    The ``level:`` span covers submit-to-result; when the worker
    shipped its own trace back, its wall epoch splits the interval
    into ``queue_wait`` (submit until the worker started the flow) and
    ``worker_run`` (the flow itself) child spans.
    """
    if not tracer.enabled:
        return
    start = tracer.rel_wall(t_submit)
    end = max(start, tracer.rel_wall(t_done))
    parent = tracer.record_span(
        f"level:{task.label}", start, end,
        gauges={"worker_pid": summary.worker_pid},
    )
    trace = summary.trace
    if trace is not None:
        run_start = min(max(start, tracer.rel_wall(trace.wall_epoch)), end)
        run_end = min(run_start + trace.duration_s, end)
        tracer.record_span("queue_wait", start, run_start, parent=parent)
        tracer.record_span("worker_run", run_start, run_end, parent=parent)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly hung or broken) pool down without blocking.

    ``shutdown(wait=False, cancel_futures=True)`` alone leaves a hung
    worker running forever, so the worker processes are terminated
    explicitly and briefly joined to reap them.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in processes:
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass


def _tear_cache_entry(cache: ResultCache, key: str) -> None:
    """Chaos helper: truncate a cache entry mid-bytes (a torn write)."""
    path = cache.path(key)
    try:
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
    except OSError:
        pass


class _Scheduler:
    """Fault-tolerant execution of a sweep's pending level tasks.

    Owns the retry budget, the backoff clock, the watchdog, the pool
    lifecycle and the journal trail.  Two execution modes share the
    same retry/failure bookkeeping:

    * **Serial** (``jobs <= 1``): tasks run inline; retries back off
      with ``time.sleep``.  No watchdog — an inline run cannot preempt
      itself.
    * **Parallel**: tasks fan out over a :class:`ProcessPoolExecutor`.
      A watchdog times out hung tasks by replacing the whole pool (a
      hung worker cannot be cancelled), charging only the overdue
      task's budget.  When a worker dies outright the pool breaks for
      every in-flight future without naming a culprit, so the
      implicated tasks are re-run **solo**: a task that breaks the
      pool while running alone is the crasher beyond doubt and is the
      only one charged; innocents pass through isolation unbilled.
    """

    def __init__(self, pending: List[_LevelTask], executor: ExecutorConfig,
                 cache: Optional[ResultCache], tracer,
                 journal: Optional[SweepJournal],
                 plan: Optional[FaultPlan]):
        self.pending = pending
        self.executor = executor
        self.cache = cache
        self.tracer = tracer
        self.journal = journal
        self.plan = plan
        self.policy = executor.retry_policy
        self.summaries: Dict[Tuple[str, float], FlowSummary] = {}
        self.failures: List[TaskFailure] = []
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.aborted = False
        self.cancelled = False

    def _check_cancel(self) -> None:
        """Fold an external cancellation request into the abort path."""
        check = self.executor.cancel_check
        if check is None or self.cancelled:
            return
        if check():
            self.cancelled = True
            self.aborted = True

    #: Event-log severity per journal event kind (default info).
    _EVENT_LEVELS = {
        "task_failed": "warn",
        "task_exhausted": "error",
        "task_aborted": "warn",
        "task_isolated": "warn",
    }

    # -- bookkeeping ----------------------------------------------------
    def _journal_event(self, event: str, task: _LevelTask,
                       **data) -> None:
        obs.emit(event, self._EVENT_LEVELS.get(event, "info"),
                 cell=task.label, key=task.cache_key, **data)
        if self.journal is not None:
            self.journal.record(event, key=task.cache_key, name=task.name,
                                tp_percent=task.tp_percent, **data)

    def _success(self, task: _LevelTask, attempt: int,
                 summary: FlowSummary, t_submit: float,
                 t_done: float, mono_elapsed: float = 0.0) -> None:
        _record_level(self.tracer, task, summary, t_submit, t_done)
        self.summaries[(task.name, task.tp_percent)] = summary
        # Per-stage and per-cell latency histograms: the one place
        # worker timings cross back into the parent, so serial and
        # parallel sweeps aggregate identically (and cache hits never
        # pass through here, so they cannot pollute the distribution).
        for stage, seconds in summary.stage_seconds.items():
            obs.observe("repro_stage_seconds", seconds,
                        stage=stage, circuit=task.name)
        obs.observe("repro_cell_seconds", max(0.0, mono_elapsed),
                    circuit=task.name)
        obs.inc("repro_cells_total", 1, circuit=task.name, outcome="ok")
        if self.cache:
            self._cache_result(task, summary)
        self._journal_event("task_done", task, attempt=attempt)

    def _cache_result(self, task: _LevelTask,
                      summary: FlowSummary) -> None:
        """Write a finished cell into the cache, absorbing disk
        failures: a result that cannot be cached is still a result.
        The first failed write flips the cache read-only for the rest
        of the sweep — a full disk will not get 17 more chances to
        slow every cell down — and the failure count rides the report
        so the service can enter degraded mode."""
        try:
            if self.plan is not None and self.plan.fails_cache_write(
                    task.name, task.tp_percent):
                raise OSError(
                    f"chaos: injected cache write failure for "
                    f"{task.label}")
            self.cache.put(task.cache_key, summary)
        except OSError as exc:
            self.cache.write_failures += 1
            self.cache.read_only = True
            obs.counter("cache.write_failed")
            obs.inc("repro_cache_events_total", 1, event="write_failed")
            self._journal_event("cache_write_failed", task,
                                error=f"{type(exc).__name__}: {exc}")
            return
        if self.plan is not None and self.plan.corrupts_cache(
                task.name, task.tp_percent):
            _tear_cache_entry(self.cache, task.cache_key)

    def _on_task_error(self, task: _LevelTask, attempt: int,
                       exc: BaseException) -> Optional[float]:
        """Charge one attempt; backoff delay when a retry is due,
        None when the cell is now permanently failed."""
        info = format_exception_for_journal(exc)
        will_retry = (is_retryable(exc)
                      and attempt < self.policy.max_retries
                      and not self.aborted)
        self._journal_event("task_failed", task, attempt=attempt,
                            will_retry=will_retry, **info)
        if will_retry:
            self.retries += 1
            self.tracer.counter("task.retries")
            obs.inc("repro_task_retries_total", 1, circuit=task.name)
            return self.policy.delay_s(attempt + 1)
        self.failures.append(TaskFailure.from_exception(
            task.name, task.tp_percent, attempt + 1, exc,
            cache_key=task.cache_key,
        ))
        self.tracer.counter("sweep.failed_cells")
        obs.inc("repro_cells_total", 1, circuit=task.name,
                outcome="failed")
        self._journal_event("task_exhausted", task, attempts=attempt + 1,
                            error_type=info["error_type"])
        if self.executor.fail_fast:
            self.aborted = True
        return None

    def _abort_cell(self, task: _LevelTask) -> None:
        """Record a cell an abort (fail-fast or cancel) kept from
        running.  Cancelled cells are distinguishable in the report and
        the journal so a service can tell "tenant hung up" from "sweep
        degraded"."""
        if self.cancelled:
            error_type = "SweepCancelled"
            message = "sweep cancelled before this cell ran"
        else:
            error_type = "SweepAborted"
            message = "sweep aborted (fail-fast) before this cell ran"
        self.failures.append(TaskFailure(
            name=task.name,
            tp_percent=task.tp_percent,
            attempts=0,
            error_type=error_type,
            error_message=message,
            cache_key=task.cache_key,
        ))
        self.tracer.counter("sweep.failed_cells")
        self._journal_event("task_aborted", task,
                            cancelled=self.cancelled)

    # -- serial mode ----------------------------------------------------
    def _backoff_sleep(self, delay: float) -> None:
        """Sleep a retry backoff, polling for cancellation so a
        cancelled sweep does not sit out a 30 s backoff first."""
        if self.executor.cancel_check is None:
            time.sleep(delay)
            return
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline:
            self._check_cancel()
            if self.cancelled:
                return
            time.sleep(min(0.05, max(0.0,
                                     deadline - time.monotonic())))

    def run_serial(self) -> None:
        """Inline execution with retry/backoff (no watchdog)."""
        for task in self.pending:
            self._check_cancel()
            if self.aborted:
                self._abort_cell(task)
                continue
            attempt = 0
            while True:
                prepared = _prepare_attempt(task, attempt,
                                            self.executor.derive_seeds)
                self._journal_event("task_start", task, attempt=attempt)
                t_submit = time.time()
                t_mono = time.monotonic()
                try:
                    summary = _run_level(prepared)
                except Exception as exc:
                    delay = self._on_task_error(task, attempt, exc)
                    if delay is None:
                        break
                    self._backoff_sleep(delay)
                    self._check_cancel()
                    if self.aborted:
                        self._abort_cell(task)
                        break
                    attempt += 1
                    continue
                self._success(task, attempt, summary, t_submit, time.time(),
                              time.monotonic() - t_mono)
                break

    # -- parallel mode --------------------------------------------------
    def _new_pool(self, ctx) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=ctx)

    def _submit(self, pool: ProcessPoolExecutor, in_flight: Dict,
                task: _LevelTask, attempt: int, solo: bool) -> None:
        prepared = _prepare_attempt(task, attempt,
                                    self.executor.derive_seeds)
        self._journal_event("task_start", task, attempt=attempt,
                            solo=solo)
        future = pool.submit(_run_level, prepared)
        in_flight[future] = (task, attempt, time.time(),
                             time.monotonic(), solo)

    def run_parallel(self) -> None:
        """Pool execution with retries, watchdog, and crash isolation."""
        for task in self.pending:
            _check_picklable(task)
        import multiprocessing

        ctx = (multiprocessing.get_context(self.executor.mp_context)
               if self.executor.mp_context else None)
        self.workers = min(self.executor.jobs, len(self.pending))
        timeout = self.executor.task_timeout_s
        queue: deque = deque((task, 0) for task in self.pending)
        isolate: deque = deque()  # suspects to re-run solo
        waiting: List[Tuple[float, _LevelTask, int, bool]] = []
        in_flight: Dict = {}
        pool = self._new_pool(ctx)
        try:
            while queue or isolate or waiting or in_flight:
                self._check_cancel()
                now = time.monotonic()
                # Promote retries whose backoff has elapsed.
                still: List[Tuple[float, _LevelTask, int, bool]] = []
                for ready, task, attempt, solo in waiting:
                    if ready <= now:
                        (isolate if solo else queue).append((task, attempt))
                    else:
                        still.append((ready, task, attempt, solo))
                waiting = still

                if self.aborted:
                    for task, _attempt in list(queue) + list(isolate):
                        self._abort_cell(task)
                    queue.clear()
                    isolate.clear()
                    for _ready, task, _attempt, _solo in waiting:
                        self._abort_cell(task)
                    waiting = []
                    if not in_flight:
                        break

                # Submissions.  Isolation runs strictly solo: wait for
                # the pool to go quiet, then one suspect at a time.
                solo_active = any(rec[4] for rec in in_flight.values())
                pool_broken = False
                broken_tasks: List[Tuple[_LevelTask, int, bool]] = []
                try:
                    if isolate and not in_flight:
                        task, attempt = isolate.popleft()
                        self._submit(pool, in_flight, task, attempt,
                                     solo=True)
                    elif (not isolate and not solo_active
                          and not self.aborted):
                        while queue and len(in_flight) < self.workers:
                            task, attempt = queue.popleft()
                            self._submit(pool, in_flight, task, attempt,
                                         solo=False)
                except BrokenProcessPool:
                    # Pool died under a submit; the popped task is in
                    # in_flight only if submit succeeded, so requeue it
                    # and recycle via the breakage path below.
                    queue.appendleft((task, attempt))
                    pool_broken = True

                if not in_flight and not pool_broken:
                    if waiting:
                        next_ready = min(w[0] for w in waiting)
                        time.sleep(max(0.0, min(
                            next_ready - time.monotonic(), 0.5)))
                    continue

                if in_flight and not pool_broken:
                    wait_timeout = None
                    candidates = []
                    if timeout is not None:
                        candidates.extend(
                            rec[3] + timeout - now
                            for rec in in_flight.values()
                        )
                    if waiting:
                        candidates.extend(w[0] - now for w in waiting)
                    if candidates:
                        wait_timeout = max(0.01, min(candidates) + 0.01)
                    done, _ = futures_wait(set(in_flight),
                                           timeout=wait_timeout,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        task, attempt, t_wall, t_mono, solo = \
                            in_flight.pop(future)
                        try:
                            summary = future.result()
                        except BrokenProcessPool:
                            pool_broken = True
                            broken_tasks.append((task, attempt, solo))
                        except Exception as exc:
                            delay = self._on_task_error(task, attempt, exc)
                            if delay is not None:
                                waiting.append((time.monotonic() + delay,
                                                task, attempt + 1, solo))
                        else:
                            self._success(task, attempt, summary,
                                          t_wall, time.time(),
                                          time.monotonic() - t_mono)

                if pool_broken:
                    # A dead worker poisons every in-flight future.
                    self.crashes += 1
                    self.tracer.counter("sweep.worker_crashes")
                    obs.inc("repro_worker_crashes_total")
                    for future, (task, attempt, _tw, _tm, solo) in \
                            list(in_flight.items()):
                        broken_tasks.append((task, attempt, solo))
                    in_flight.clear()
                    _terminate_pool(pool)
                    pool = self._new_pool(ctx)
                    for task, attempt, solo in broken_tasks:
                        if solo:
                            # Ran alone when the pool broke: guilty.
                            exc = WorkerCrashError(
                                f"worker process died while running "
                                f"{task.label} (attempt {attempt})"
                            )
                            delay = self._on_task_error(task, attempt, exc)
                            if delay is not None:
                                waiting.append((time.monotonic() + delay,
                                                task, attempt + 1, True))
                        else:
                            # Culprit unknown: re-run each implicated
                            # task solo; innocents pay no retry budget.
                            self._journal_event("task_isolated", task,
                                                attempt=attempt)
                            isolate.append((task, attempt))
                    continue

                # Watchdog: a task past its deadline is presumed hung.
                # Pools cannot cancel a running future, so the pool is
                # replaced; only the overdue task is charged.
                if timeout is not None and in_flight:
                    now = time.monotonic()
                    overdue = {
                        future
                        for future, rec in in_flight.items()
                        if now - rec[3] > timeout
                    }
                    if overdue:
                        victims = list(in_flight.items())
                        in_flight.clear()
                        _terminate_pool(pool)
                        pool = self._new_pool(ctx)
                        for future, (task, attempt, _tw, _tm, solo) in \
                                victims:
                            if future in overdue:
                                self.timeouts += 1
                                self.tracer.counter("task.timeouts")
                                obs.inc("repro_task_timeouts_total",
                                        1, circuit=task.name)
                                exc = TaskTimeoutError(
                                    f"{task.label} exceeded the "
                                    f"{timeout:g}s task timeout "
                                    f"(attempt {attempt})"
                                )
                                delay = self._on_task_error(
                                    task, attempt, exc)
                                if delay is not None:
                                    waiting.append(
                                        (time.monotonic() + delay,
                                         task, attempt + 1, solo))
                            else:
                                # Innocent bystander of the pool swap.
                                self._journal_event("task_requeued", task,
                                                    attempt=attempt)
                                (isolate if solo else queue).append(
                                    (task, attempt))
        finally:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass


def run_sweeps_report(
    configs: Sequence[ExperimentConfig],
    executor: Optional[ExecutorConfig] = None,
) -> SweepReport:
    """Run several circuits' sweeps fault-tolerantly; never lose cells.

    The graceful-degradation twin of :func:`run_sweeps`: every
    (circuit, level) task is retried per the executor's policy,
    watched by the per-task timeout, and journalled; cells that stay
    failed become structured
    :class:`~repro.core.resilience.TaskFailure` records on the
    returned :class:`~repro.core.resilience.SweepReport` while every
    successful cell's :class:`FlowSummary` lands in
    ``report.results`` — Tables 1/2/3 render with explicit holes
    instead of the sweep aborting.

    With a cache directory configured, a ``journal.jsonl`` is written
    next to the cache entries; ``executor.resume`` appends to it and
    serves previously completed cells (matched by content-hash key)
    from the cache, so a killed sweep continues where it stopped.
    """
    executor = executor or ExecutorConfig()
    cache = executor.cache
    tracer = obs.get_tracer()
    plan = (executor.chaos if executor.chaos is not None
            else chaos.plan_from_env())
    tasks: List[_LevelTask] = []
    for config in configs:
        tasks.extend(_plan_levels(config, executor, plan))

    started_at = time.time()
    started_mono = time.monotonic()
    # Correlation key for the structured event log: every event this
    # sweep emits (and, via bind, every flow stage event on the serial
    # path) carries the same run_id.  Pure telemetry — never part of a
    # cache key.
    run_id = uuid.uuid4().hex[:12]
    with obs.bind(run_id=run_id):
        obs.emit("sweep_start", jobs=executor.jobs, cells=len(tasks),
                 resume=executor.resume)

        journal: Optional[SweepJournal] = None
        resumed: Set[str] = set()
        jpath = executor.journal_path()
        if jpath is not None:
            if executor.resume:
                resumed = completed_keys(read_journal(jpath))
            journal = SweepJournal(jpath, resume=executor.resume)
        # The journal handle must not outlive the sweep even when a
        # scheduler or cache failure unwinds: an open handle leaks the
        # fd and (on a crashed daemon worker) can hold a torn tail
        # without its closing record.
        try:
            if journal is not None:
                journal.record(
                    "sweep_start",
                    resume=executor.resume,
                    jobs=executor.jobs,
                    retries=executor.retries,
                    task_timeout_s=executor.task_timeout_s,
                    chaos=plan is not None,
                    cells=[
                        {"name": t.name, "tp_percent": t.tp_percent,
                         "key": t.cache_key}
                        for t in tasks
                    ],
                )

            summaries: Dict[Tuple[str, float], FlowSummary] = {}
            pending: List[_LevelTask] = []
            for task in tasks:
                stored = cache.get(task.cache_key) if cache else None
                if stored is not None:
                    summaries[(task.name, task.tp_percent)] = _cache_hit(stored)
                    now = tracer.now()
                    tracer.record_span(f"cache_hit:{task.label}", now, now)
                    if journal is not None:
                        event = ("task_resumed" if task.cache_key in resumed
                                 else "task_cached")
                        journal.record(event, key=task.cache_key,
                                       name=task.name,
                                       tp_percent=task.tp_percent)
                else:
                    pending.append(task)
            if cache is not None:
                tracer.counter("cache_hits", cache.hits)
                tracer.counter("cache_misses", cache.misses)
                tracer.counter("cache_corrupt", cache.corrupt)
                obs.inc("repro_cells_total", cache.hits, outcome="cached")

            scheduler = _Scheduler(pending, executor, cache, tracer,
                                   journal, plan)
            if pending:
                if executor.jobs <= 1:
                    scheduler.run_serial()
                else:
                    scheduler.run_parallel()
            summaries.update(scheduler.summaries)
            failures = sorted(scheduler.failures,
                              key=lambda f: (f.name, f.tp_percent))

            if journal is not None:
                journal.record(
                    "sweep_end",
                    ok=not failures,
                    failed=[f.label for f in failures],
                    retries=scheduler.retries,
                    timeouts=scheduler.timeouts,
                    worker_crashes=scheduler.crashes,
                    cancelled=scheduler.cancelled,
                )
        finally:
            if journal is not None:
                journal.close()

        if cache is not None:
            for event, count in (("hit", cache.hits), ("miss", cache.misses),
                                 ("corrupt", cache.corrupt),
                                 ("evict", cache.evictions)):
                obs.inc("repro_cache_events_total", count, event=event)
        obs.emit("sweep_end", "error" if failures else "info",
                 ok=not failures, failed=[f.label for f in failures],
                 retries=scheduler.retries, timeouts=scheduler.timeouts,
                 cancelled=scheduler.cancelled)

    results: Dict[str, ExperimentResult] = {}
    for config in configs:
        runs = {
            pct: summaries[(config.name, pct)]
            for pct in config.tp_percents
            if (config.name, pct) in summaries
        }
        results[config.name] = ExperimentResult(name=config.name, runs=runs)
    return SweepReport(
        results=results,
        failures=tuple(failures),
        retries=scheduler.retries,
        timeouts=scheduler.timeouts,
        worker_crashes=scheduler.crashes,
        journal_path=str(jpath) if jpath is not None else None,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        cache_evictions=cache.evictions if cache is not None else 0,
        cancelled=scheduler.cancelled,
        cache_write_failures=(cache.write_failures
                              if cache is not None else 0),
        started_at=started_at,
        finished_at=time.time(),
        started_mono=started_mono,
        finished_mono=time.monotonic(),
    )


def run_sweeps(
    configs: Sequence[ExperimentConfig],
    executor: Optional[ExecutorConfig] = None,
) -> Dict[str, ExperimentResult]:
    """Run several circuits' sweeps, fanning all levels out together.

    Every (circuit, level) pair is an independent task; with N circuits
    of M levels each and ``jobs`` workers, up to ``jobs`` of the N*M
    flows run concurrently.  Results are assembled into per-circuit
    :class:`~repro.core.experiment.ExperimentResult` objects whose runs
    hold :class:`FlowSummary` values — the Table 1/2/3 builders work
    unchanged.

    Execution is fault-tolerant (see :func:`run_sweeps_report`, which
    this wraps): tasks are retried with deterministic backoff, hung
    workers are timed out and their pool replaced, and completed cells
    are cached/journalled as they finish.  The difference is the
    failure contract — this function raises when any cell stays
    failed, for callers that need all-or-nothing semantics.

    With ``executor.trace`` set, every worker's flow trace rides back
    on its summary, and the sweep's own scheduling (per-level
    queue-wait/run spans, cache hit/miss/corrupt counters) is recorded
    on the tracer active in *this* process — activate one around the
    call with :func:`repro.obs.tracing` to collect it.

    Raises:
        SweepExecutionError: When any level stays failed after its
            retries.  Levels that finished were already cached, so a
            re-run resumes from the failures only.
    """
    report = run_sweeps_report(configs, executor)
    if report.failures:
        raise SweepExecutionError([
            (f.name, f.tp_percent,
             f.exception or RuntimeError(f.error_message))
            for f in report.failures
        ])
    return report.results


def run_sweep(
    config: ExperimentConfig,
    executor: Optional[ExecutorConfig] = None,
) -> ExperimentResult:
    """Run one circuit's sweep through the parallel executor.

    Drop-in for :func:`~repro.core.experiment.run_experiment`: the
    returned object builds the same Table 1/2/3 rows, with
    :class:`FlowSummary` values in ``runs`` instead of full
    :class:`~repro.core.flow.FlowResult` objects.
    """
    return run_sweeps([config], executor)[config.name]
