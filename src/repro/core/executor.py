"""Parallel sweep executor with content-addressed result caching.

The paper's experiment (Section 4.1) generates six independent layouts
per circuit — one per test-point level.  Levels never share state: each
layout starts from a freshly built netlist, so the sweep is
embarrassingly parallel.  This module fans sweep levels (and whole
circuits) out over a :class:`concurrent.futures.ProcessPoolExecutor`
and memoises finished levels in an on-disk cache so re-runs and
partially-failed sweeps resume instantly.

Three ideas, in order of appearance:

* **Picklable summaries** — a worker cannot return a
  :class:`~repro.core.flow.FlowResult` (it drags the whole mutated
  netlist, placement and routing across the process boundary), so it
  returns a :class:`FlowSummary`: exactly the Table 1/2/3 quantities,
  per-stage timings and log records, nothing else.  ``FlowSummary``
  quacks like ``FlowResult`` for every accessor the table builders in
  :class:`~repro.core.experiment.ExperimentResult` use, so sweep
  results assemble through the identical code path as serial runs.

* **Content-addressed caching** — each level's cache key is the SHA-256
  of ``(circuit structural hash, FlowConfig fingerprint, library
  version, schema version)``.  Identical inputs always map to the same
  key; any change to the netlist, a config knob or the library version
  changes the key.  Entries are one pickle file per key under
  ``cache_dir``; writes are atomic (temp file + ``os.replace``) so a
  killed sweep never leaves a corrupt entry behind, and unreadable
  entries are treated as misses and deleted.

* **Determinism** — the flow's only RNG consumer is seeded from
  ``FlowConfig.atpg.seed``, and every stochastic tie-break in the code
  base derives from stable (process-independent) hashes, so a parallel
  run is bit-identical to a serial run of the same configs.
  Optionally (``ExecutorConfig.derive_seeds``) the per-level ATPG seed
  is itself derived from the cache key, decorrelating levels without
  sacrificing reproducibility; the flag is part of the cache key, so
  the two modes never alias.

Serial :func:`~repro.core.experiment.run_experiment` remains the
reference semantics; with ``derive_seeds=False`` (the default) this
executor reproduces it exactly, at any job count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro import obs
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.flow import FlowConfig, FlowResult, run_flow
from repro.core.metrics import TestDataMetrics
from repro.library.cell import Library
from repro.library.cmos130 import cmos130
from repro.netlist.circuit import Circuit
from repro.obs.tracer import Trace

#: Bump when the FlowSummary layout or key derivation changes; old
#: cache entries then miss instead of unpickling into the wrong shape.
CACHE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Picklable result summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathSummary:
    """Picklable digest of one :class:`~repro.sta.analysis.TimingPath`.

    Carries every field the Table 3 assembly reads, plus slack.
    """

    domain: str
    endpoint: str
    startpoint: str
    t_wires_ps: float
    t_intrinsic_ps: float
    t_load_dep_ps: float
    t_setup_ps: float
    t_skew_ps: float
    total_ps: float
    slack_ps: float
    n_test_points: int

    @property
    def fmax_mhz(self) -> float:
        """Highest frequency this path permits."""
        return 1e6 / self.total_ps if self.total_ps > 0 else float("inf")


@dataclass(frozen=True)
class StaSummary:
    """Picklable digest of an :class:`~repro.sta.analysis.StaResult`."""

    paths: Dict[str, Tuple[PathSummary, ...]]
    slow_nodes: Tuple[str, ...] = ()
    hold_violations: int = 0

    def critical(self, domain: str) -> Optional[PathSummary]:
        """Worst path of one domain."""
        paths = self.paths.get(domain)
        return paths[0] if paths else None


@dataclass
class FlowSummary:
    """Everything a sweep needs from one flow run, and nothing more.

    Unlike :class:`~repro.core.flow.FlowResult` this object holds no
    netlist, placement or routing, so it pickles in microseconds and
    crosses process boundaries (and the result cache) cheaply.  It
    offers the same accessor surface the Table 1/2/3 builders use:
    :meth:`test_metrics`, :meth:`area_metrics`, :attr:`n_test_points`
    and :attr:`sta`.

    Attributes:
        tp_percent: The sweep level this run executed.
        n_test_points: TSFFs actually inserted.
        test: Table 1 metrics (None when the ATPG phase was skipped).
        area: Table 2 metrics (None when the layout phase was skipped).
        sta: Table 3 digest (None when the layout phase was skipped).
        stage_seconds: Per-stage wall-clock seconds.  On a cache hit
            the executor zeroes this dict (no stage re-ran) and keeps
            the original timings in :attr:`cached_stage_seconds`.
        cached_stage_seconds: Stage timings of the run that populated
            the cache entry (empty for fresh runs).
        log: Per-stage log records emitted by the worker.
        cache_key: Content hash this summary is stored under.
        from_cache: True when served from the cache, not computed.
        worker_pid: PID of the process that ran the flow.
        trace: The run's span tree when the worker traced its flow
            (see :mod:`repro.obs`); None otherwise, and always None on
            cache hits (no stage re-ran).  The plain-class default
            keeps summaries pickled before this field existed loading
            cleanly — they read back as untraced.
    """

    tp_percent: float
    n_test_points: int
    test: Optional[TestDataMetrics] = None
    area: Optional[Dict[str, float]] = None
    sta: Optional[StaSummary] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cached_stage_seconds: Dict[str, float] = field(default_factory=dict)
    log: Tuple[str, ...] = ()
    cache_key: str = ""
    from_cache: bool = False
    worker_pid: int = 0
    trace: Optional[Trace] = None

    def effective_stage_seconds(self) -> Dict[str, float]:
        """Stage timings that actually describe this run's work.

        Live timings when the flow ran in this sweep; the original
        run's timings when the summary was served from the cache (a
        hit zeroes :attr:`stage_seconds` because no stage re-ran).
        Reporting should use this so cached sweeps still render
        sensible stage tables.
        """
        if self.from_cache and self.cached_stage_seconds:
            return dict(self.cached_stage_seconds)
        return dict(self.stage_seconds)

    def test_metrics(self) -> TestDataMetrics:
        """The paper's Table 1 row for this run."""
        if self.test is None:
            raise ValueError("flow ran without the ATPG phase")
        return self.test

    def area_metrics(self) -> Dict[str, float]:
        """The paper's Table 2 row for this run."""
        if self.area is None:
            raise ValueError("flow ran without the layout phase")
        return dict(self.area)


def summarize(result: FlowResult, cache_key: str = "") -> FlowSummary:
    """Condense a :class:`FlowResult` into a picklable summary."""
    test = None
    if result.atpg is not None and result.chains is not None:
        test = result.test_metrics()
    area = None
    if result.plan is not None and result.congestion is not None:
        area = result.area_metrics()
    sta = None
    if result.sta is not None:
        sta = StaSummary(
            paths={
                domain: tuple(
                    PathSummary(
                        domain=p.domain,
                        endpoint=p.endpoint,
                        startpoint=p.startpoint,
                        t_wires_ps=p.t_wires_ps,
                        t_intrinsic_ps=p.t_intrinsic_ps,
                        t_load_dep_ps=p.t_load_dep_ps,
                        t_setup_ps=p.t_setup_ps,
                        t_skew_ps=p.t_skew_ps,
                        total_ps=p.total_ps,
                        slack_ps=p.slack_ps,
                        n_test_points=p.n_test_points,
                    )
                    for p in paths
                )
                for domain, paths in result.sta.paths.items()
            },
            slow_nodes=tuple(sorted(result.sta.slow_nodes)),
            hold_violations=result.sta.hold_violations,
        )
    pid = os.getpid()
    log = tuple(
        f"pid {pid}: {stage}: {seconds * 1000.0:.1f} ms"
        for stage, seconds in result.stage_seconds.items()
    )
    return FlowSummary(
        tp_percent=result.config.tp_percent,
        n_test_points=result.n_test_points,
        test=test,
        area=area,
        sta=sta,
        stage_seconds=dict(result.stage_seconds),
        log=log,
        cache_key=cache_key,
        worker_pid=pid,
        trace=result.trace,
    )


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
def _canonical(obj):
    """Recursively reduce ``obj`` to an order-independent structure.

    Dataclass fields and dict items are sorted by name, sets by their
    canonical representation — so two logically equal configs always
    canonicalise identically, no matter the construction order of their
    dicts and sets.  The type name is included so distinct config
    classes with equal fields never collide.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        items = tuple(
            (f.name, _canonical(getattr(obj, f.name)))
            for f in sorted(dataclasses.fields(obj), key=lambda f: f.name)
        )
        return ("dc", type(obj).__name__, items)
    if isinstance(obj, dict):
        items = tuple(sorted(
            ((_canonical(k), _canonical(v)) for k, v in obj.items()),
            key=repr,
        ))
        return ("dict", items)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((_canonical(x) for x in obj), key=repr)))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(x) for x in obj))
    if isinstance(obj, float):
        return ("f", repr(obj))
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}: add it to "
        "repro.core.executor._canonical"
    )


def config_fingerprint(config) -> str:
    """Stable SHA-256 fingerprint of a (nested) config dataclass.

    Equal configs fingerprint equally regardless of field, dict or set
    construction order; any changed knob changes the fingerprint.
    """
    canon = repr(_canonical(config)).encode("utf-8")
    return hashlib.sha256(canon).hexdigest()


def circuit_structural_hash(circuit: Circuit) -> str:
    """SHA-256 over the netlist structure (names, cells, connectivity).

    Two circuits hash equally iff they have the same instances (name,
    cell, pin connections), nets (driver, sinks), ports and clock
    domains.  Placement and other derived state never enter the hash —
    the flow recomputes those from the netlist.
    """
    h = hashlib.sha256()

    def feed(tag: str, payload) -> None:
        h.update(tag.encode("utf-8"))
        h.update(repr(payload).encode("utf-8"))
        h.update(b"\x00")

    feed("name", circuit.name)
    feed("inputs", tuple(circuit.inputs))
    feed("outputs", tuple(
        (port, circuit.output_net(port)) for port in circuit.outputs
    ))
    feed("clocks", tuple(
        (dom.net, dom.period_ps) for dom in circuit.clocks
    ))
    for name in sorted(circuit.instances):
        inst = circuit.instances[name]
        feed("inst", (name, inst.cell.name, tuple(sorted(inst.conns.items()))))
    for name in sorted(circuit.nets):
        net = circuit.nets[name]
        feed("net", (name, net.driver, tuple(sorted(net.sinks))))
    return h.hexdigest()


def flow_cache_key(circuit: Circuit, config: FlowConfig,
                   library: Library, extra: str = "") -> str:
    """Cache key of one flow run: circuit x config x library version.

    Args:
        circuit: The pre-DFT netlist the flow would start from.
        config: Full flow configuration (the level's ``tp_percent``
            already applied).
        library: Cell library; its name and the package version stand
            in for the library contents, which are code-defined.
        extra: Executor-mode salt (e.g. the ``derive_seeds`` flag) so
            runs under different execution semantics never alias.
    """
    parts = "\n".join([
        f"schema={CACHE_SCHEMA_VERSION}",
        circuit_structural_hash(circuit),
        config_fingerprint(config),
        f"library={library.name}:{repro.__version__}",
        extra,
    ])
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()


def derive_seed(cache_key: str) -> int:
    """Deterministic 63-bit ATPG seed derived from a cache key."""
    return int(cache_key[:16], 16) & 0x7FFFFFFFFFFFFFFF


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed pickle store: one :class:`FlowSummary` per key.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` (two-level fan-out keeps
    directories small on big sweeps).  Writes go through a temp file
    and ``os.replace`` so concurrent writers and crashes can never
    leave a torn entry; unreadable entries read as misses and are
    deleted.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path(self, key: str) -> Path:
        """Entry path for ``key``."""
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[FlowSummary]:
        """Load the summary stored under ``key``, or None."""
        path = self.path(key)
        try:
            with open(path, "rb") as handle:
                summary = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn/stale entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            self.corrupt += 1
            return None
        if not isinstance(summary, FlowSummary):
            self.misses += 1
            self.corrupt += 1
            return None
        self.hits += 1
        return summary

    def put(self, key: str, summary: FlowSummary) -> None:
        """Atomically store ``summary`` under ``key``."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(summary, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
@dataclass
class ExecutorConfig:
    """How a sweep is executed.

    Attributes:
        jobs: Worker processes.  1 runs every level inline in this
            process (no pool, no pickling of task specs) — handy for
            debugging and for lambdas as circuit factories.
        cache_dir: Result-cache directory; None disables caching.
        use_cache: Master switch; False ignores ``cache_dir``.
        derive_seeds: Re-seed each level's ATPG RNG from its cache key
            instead of the configured seed.  Applied identically at
            every job count, so parallel and serial runs stay
            bit-identical; keyed into the cache so the modes never mix.
        mp_context: ``multiprocessing`` start method (None = platform
            default).
        trace: Have every worker record a span tree for its flow run
            (returned on ``FlowSummary.trace``), and the parent record
            per-level queue-wait/worker-run spans plus cache counters
            on the active tracer.  Observability only: it never enters
            the cache key, so traced and untraced sweeps share cache
            entries and results stay bit-identical either way.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    use_cache: bool = True
    derive_seeds: bool = False
    mp_context: Optional[str] = None
    trace: bool = False

    @property
    def cache(self) -> Optional[ResultCache]:
        """The configured cache, or None when caching is off."""
        if self.cache_dir and self.use_cache:
            return ResultCache(self.cache_dir)
        return None


@dataclass
class _LevelTask:
    """One (circuit, level) unit of work.  Must stay picklable."""

    name: str
    tp_percent: float
    circuit_factory: Callable[[], Circuit]
    flow: FlowConfig
    library: Optional[Library]
    cache_key: str
    #: Record a span tree in the worker (never part of the cache key).
    trace: bool = False

    @property
    def label(self) -> str:
        """Display label of this level (trace and error contexts)."""
        return f"{self.name}@{self.tp_percent:g}%"


class SweepExecutionError(RuntimeError):
    """One or more sweep levels failed.

    Completed levels were already cached (when a cache is configured),
    so re-running the sweep resumes from the failures only.

    Attributes:
        failures: ``(circuit name, tp_percent, exception)`` per failed
            level.
    """

    def __init__(self, failures: List[Tuple[str, float, BaseException]]):
        self.failures = failures
        lines = ", ".join(
            f"{name} @ {pct:g}%: {exc!r}" for name, pct, exc in failures
        )
        super().__init__(
            f"{len(failures)} sweep level(s) failed ({lines}); "
            "completed levels are cached and will be reused on re-run"
        )


def _run_level(task: _LevelTask) -> FlowSummary:
    """Worker entry point: build a fresh netlist, run the flow.

    With ``task.trace`` set, the flow runs under a fresh tracer whose
    root spans are exactly the run's stage spans; the resulting
    :class:`~repro.obs.tracer.Trace` rides back on the summary.
    Tracing is scoped, so an inline (``jobs=1``) run leaves the
    parent's tracer untouched.
    """
    circuit = task.circuit_factory()
    library = task.library if task.library is not None else cmos130()
    if task.trace:
        with obs.tracing(label=task.label):
            result = run_flow(circuit, library, task.flow)
    else:
        result = run_flow(circuit, library, task.flow)
    return summarize(result, cache_key=task.cache_key)


def _check_picklable(task: _LevelTask) -> None:
    """Fail early, with a pointed message, on unpicklable task specs."""
    try:
        pickle.dumps(task)
    except Exception as exc:
        raise TypeError(
            f"sweep level {task.name} @ {task.tp_percent:g}% is not "
            "picklable and cannot be sent to a worker process; use a "
            "module-level circuit factory (functools.partial(factory, "
            "scale=...) instead of a lambda), or run with jobs=1"
        ) from exc


def _plan_levels(config: ExperimentConfig,
                 executor: ExecutorConfig) -> List[_LevelTask]:
    """Expand one experiment into per-level tasks with cache keys.

    The circuit is built once per level *in the parent* purely to
    compute its structural hash (factories are deterministic, so the
    worker's fresh build hashes identically); the built netlist is
    dropped, never pickled.
    """
    library = config.library or cmos130()
    tasks = []
    for pct in config.tp_percents:
        flow = replace(config.flow, tp_percent=pct)
        circuit = config.circuit_factory()
        key = flow_cache_key(
            circuit, flow, library,
            extra=f"derive_seeds={executor.derive_seeds}",
        )
        if executor.derive_seeds:
            flow = replace(flow, atpg=replace(flow.atpg,
                                              seed=derive_seed(key)))
        tasks.append(_LevelTask(
            name=config.name,
            tp_percent=pct,
            circuit_factory=config.circuit_factory,
            flow=flow,
            library=config.library,
            cache_key=key,
            trace=executor.trace,
        ))
    return tasks


def _cache_hit(summary: FlowSummary) -> FlowSummary:
    """Rebadge a stored summary as a hit: no stage re-ran, so the
    live ``stage_seconds`` are all zero, the original timings move to
    ``cached_stage_seconds`` (see ``effective_stage_seconds``), and
    any stored trace is dropped — a trace describes work this sweep
    did not perform, and its stale wall epoch would skew a merged
    timeline."""
    return replace(
        summary,
        from_cache=True,
        cached_stage_seconds=dict(summary.stage_seconds),
        stage_seconds={k: 0.0 for k in summary.stage_seconds},
        trace=None,
    )


def _record_level(tracer, task: _LevelTask, summary: FlowSummary,
                  t_submit: float, t_done: float) -> None:
    """Record the parent-side span of one completed level.

    The ``level:`` span covers submit-to-result; when the worker
    shipped its own trace back, its wall epoch splits the interval
    into ``queue_wait`` (submit until the worker started the flow) and
    ``worker_run`` (the flow itself) child spans.
    """
    if not tracer.enabled:
        return
    start = tracer.rel_wall(t_submit)
    end = max(start, tracer.rel_wall(t_done))
    parent = tracer.record_span(
        f"level:{task.label}", start, end,
        gauges={"worker_pid": summary.worker_pid},
    )
    trace = summary.trace
    if trace is not None:
        run_start = min(max(start, tracer.rel_wall(trace.wall_epoch)), end)
        run_end = min(run_start + trace.duration_s, end)
        tracer.record_span("queue_wait", start, run_start, parent=parent)
        tracer.record_span("worker_run", run_start, run_end, parent=parent)


def run_sweeps(
    configs: Sequence[ExperimentConfig],
    executor: Optional[ExecutorConfig] = None,
) -> Dict[str, ExperimentResult]:
    """Run several circuits' sweeps, fanning all levels out together.

    Every (circuit, level) pair is an independent task; with N circuits
    of M levels each and ``jobs`` workers, up to ``jobs`` of the N*M
    flows run concurrently.  Results are assembled into per-circuit
    :class:`~repro.core.experiment.ExperimentResult` objects whose runs
    hold :class:`FlowSummary` values — the Table 1/2/3 builders work
    unchanged.

    With ``executor.trace`` set, every worker's flow trace rides back
    on its summary, and the sweep's own scheduling (per-level
    queue-wait/run spans, cache hit/miss/corrupt counters) is recorded
    on the tracer active in *this* process — activate one around the
    call with :func:`repro.obs.tracing` to collect it.

    Raises:
        SweepExecutionError: When any level fails.  Levels that
            finished first were already cached, so a re-run resumes.
    """
    executor = executor or ExecutorConfig()
    cache = executor.cache
    tracer = obs.get_tracer()
    tasks: List[_LevelTask] = []
    for config in configs:
        tasks.extend(_plan_levels(config, executor))

    summaries: Dict[Tuple[str, float], FlowSummary] = {}
    pending: List[_LevelTask] = []
    for task in tasks:
        stored = cache.get(task.cache_key) if cache else None
        if stored is not None:
            summaries[(task.name, task.tp_percent)] = _cache_hit(stored)
            now = tracer.now()
            tracer.record_span(f"cache_hit:{task.label}", now, now)
        else:
            pending.append(task)
    if cache is not None:
        tracer.counter("cache_hits", cache.hits)
        tracer.counter("cache_misses", cache.misses)
        tracer.counter("cache_corrupt", cache.corrupt)

    failures: List[Tuple[str, float, BaseException]] = []
    if pending:
        if executor.jobs <= 1:
            for task in pending:
                t_submit = time.time()
                try:
                    summary = _run_level(task)
                except Exception as exc:
                    failures.append((task.name, task.tp_percent, exc))
                    continue
                _record_level(tracer, task, summary, t_submit, time.time())
                summaries[(task.name, task.tp_percent)] = summary
                if cache:
                    cache.put(task.cache_key, summary)
        else:
            for task in pending:
                _check_picklable(task)
            import multiprocessing

            ctx = (multiprocessing.get_context(executor.mp_context)
                   if executor.mp_context else None)
            workers = min(executor.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=ctx) as pool:
                futures = {
                    pool.submit(_run_level, task): (task, time.time())
                    for task in pending
                }
                # Let every level run to completion even when one fails:
                # each finished level is cached immediately, so a re-run
                # resumes from the failures alone.
                for future in as_completed(futures):
                    task, t_submit = futures[future]
                    try:
                        summary = future.result()
                    except Exception as exc:
                        failures.append((task.name, task.tp_percent, exc))
                        continue
                    _record_level(tracer, task, summary, t_submit,
                                  time.time())
                    summaries[(task.name, task.tp_percent)] = summary
                    if cache:
                        cache.put(task.cache_key, summary)

    if failures:
        failures.sort(key=lambda f: (f[0], f[1]))
        raise SweepExecutionError(failures)

    results: Dict[str, ExperimentResult] = {}
    for config in configs:
        runs = {
            pct: summaries[(config.name, pct)]
            for pct in config.tp_percents
        }
        results[config.name] = ExperimentResult(name=config.name, runs=runs)
    return results


def run_sweep(
    config: ExperimentConfig,
    executor: Optional[ExecutorConfig] = None,
) -> ExperimentResult:
    """Run one circuit's sweep through the parallel executor.

    Drop-in for :func:`~repro.core.experiment.run_experiment`: the
    returned object builds the same Table 1/2/3 rows, with
    :class:`FlowSummary` values in ``runs`` instead of full
    :class:`~repro.core.flow.FlowResult` objects.
    """
    return run_sweeps([config], executor)[config.name]
