"""Test-data metrics: the paper's equations (1) and (2).

Given the scan configuration (number of chains ``n``, maximum balanced
chain length ``l_max``) and the pattern count ``p``::

    TDV = 2 * n * ((l_max + 1) * p + l_max)          (1)
    TAT = (l_max + 1) * p + 2 * l_max                (2)

TDV counts scan stimuli and responses in bits; TAT counts scan clock
cycles (shift-in overlapped with shift-out, plus the initial fill and
final drain).  Both are exactly the formulas of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass


def test_data_volume_bits(n_chains: int, l_max: int, n_patterns: int) -> int:
    """Equation (1): scan test-data volume in bits."""
    return 2 * n_chains * ((l_max + 1) * n_patterns + l_max)


def test_application_time_cycles(n_chains: int, l_max: int,
                                 n_patterns: int) -> int:
    """Equation (2): test application time in scan clock cycles."""
    return (l_max + 1) * n_patterns + 2 * l_max


@dataclass(frozen=True)
class TestDataMetrics:
    """The Table 1 data row for one layout.

    (``__test__ = False`` below keeps pytest from collecting this
    production class whose name merely starts with "Test".)

    Attributes:
        n_test_points: Inserted TSFFs (#TP).
        n_flip_flops: Total scan flip-flops, TSFFs included (#FF).
        n_chains: Scan chains.
        l_max: Longest chain.
        n_faults: Total stuck-at faults.
        fault_coverage: FC, as a fraction.
        fault_efficiency: FE, as a fraction.
        n_patterns: Compacted stuck-at pattern count.
    """

    __test__ = False

    n_test_points: int
    n_flip_flops: int
    n_chains: int
    l_max: int
    n_faults: int
    fault_coverage: float
    fault_efficiency: float
    n_patterns: int

    @property
    def tdv_bits(self) -> int:
        """Test-data volume (eq. 1)."""
        return test_data_volume_bits(self.n_chains, self.l_max,
                                     self.n_patterns)

    @property
    def tat_cycles(self) -> int:
        """Test-application time (eq. 2)."""
        return test_application_time_cycles(self.n_chains, self.l_max,
                                            self.n_patterns)


def percent_change(reference: float, value: float) -> float:
    """Signed percentage change vs a reference (0 when undefined)."""
    if reference == 0:
        return 0.0
    return 100.0 * (value - reference) / reference
