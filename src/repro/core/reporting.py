"""Plain-text rendering of the paper's tables.

The formatters take the row dictionaries produced by
:class:`repro.core.experiment.ExperimentResult` and print them with the
same columns (and column order) as Tables 1-3 of the paper, so a bench
run can be compared against the published tables line by line.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

_Row = Dict[str, float]


def _format(rows: Iterable[_Row], columns: Sequence[tuple]) -> str:
    """Render rows as a fixed-width table.

    Args:
        rows: Row dictionaries.
        columns: ``(key, header, format_spec)`` triples.
    """
    rows = list(rows)
    rendered: List[List[str]] = [[header for _, header, _ in columns]]
    for row in rows:
        rendered.append([
            format(row[key], spec) if key in row else ""
            for key, _, spec in columns
        ])
    widths = [
        max(len(line[i]) for line in rendered)
        for i in range(len(columns))
    ]
    lines = []
    for n, line in enumerate(rendered):
        lines.append("  ".join(
            cell.rjust(width) for cell, width in zip(line, widths)
        ))
        if n == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_stage_seconds(result) -> str:
    """Per-stage runtime table for one sweep, one row per TP level.

    Cache-served levels report the timings recorded when the flow
    actually ran (:meth:`~repro.core.executor.FlowSummary.
    effective_stage_seconds`), so a fully warm sweep still renders a
    meaningful table instead of a row of zeros; such rows are flagged
    in the ``cached`` column.
    """
    from repro.core.flow import STAGE_KEYS

    rows: List[Dict[str, object]] = []
    for pct in sorted(result.runs):
        run = result.runs[pct]
        if hasattr(run, "effective_stage_seconds"):
            seconds = run.effective_stage_seconds()
        else:
            seconds = dict(run.stage_seconds)
        row: Dict[str, object] = {"tp_percent": pct}
        for key in STAGE_KEYS:
            row[key] = seconds.get(key, 0.0)
        row["total"] = sum(seconds.values())
        if getattr(run, "from_cache", False):
            row["cached"] = "yes"
        rows.append(row)
    columns = [("tp_percent", "#TP(%)", "g")]
    columns += [(key, key, ".2f") for key in STAGE_KEYS]
    columns += [("total", "total(s)", ".2f"), ("cached", "cached", "s")]
    return _format(rows, tuple(columns))


def format_failures(failures: Iterable) -> str:
    """Render a sweep's :class:`~repro.core.resilience.TaskFailure`
    records as the tables' companion "holes" listing.

    One row per permanently failed (circuit, tp%) cell, with the
    attempt count and the final error — what the CLI prints under the
    Table 1/2/3 output when a degraded sweep completes.
    """
    rows: List[Dict[str, object]] = []
    for failure in failures:
        rows.append({
            "circuit": failure.name,
            "tp_percent": failure.tp_percent,
            "attempts": failure.attempts,
            "error_type": failure.error_type,
            "error": failure.error_message[:60],
        })
    return _format(rows, (
        ("circuit", "circuit", "s"),
        ("tp_percent", "#TP(%)", "g"),
        ("attempts", "attempts", "d"),
        ("error_type", "error type", "s"),
        ("error", "error", "s"),
    ))


def format_table1(rows: Iterable[_Row]) -> str:
    """Table 1: Impact of TPI on test data."""
    return _format(rows, (
        ("circuit", "circuit", "s"),
        ("tp_percent", "#TP(%)", ".0f"),
        ("n_tp", "#TP", "d"),
        ("n_ff", "#FF", "d"),
        ("n_chains", "#chains", "d"),
        ("l_max", "l_max", "d"),
        ("n_faults", "#faults", "d"),
        ("fc_percent", "FC(%)", ".2f"),
        ("fe_percent", "FE(%)", ".2f"),
        ("saf_patterns", "SAF patterns", "d"),
        ("patterns_dec_percent", "dec.(%)", ".1f"),
        ("tdv_bits", "TDV(bits)", "d"),
        ("tdv_dec_percent", "TDV dec.(%)", ".1f"),
        ("tat_cycles", "TAT(cycles)", "d"),
        ("tat_dec_percent", "TAT dec.(%)", ".1f"),
    ))


def format_table2(rows: Iterable[_Row]) -> str:
    """Table 2: Impact of TPI on silicon area."""
    return _format(rows, (
        ("circuit", "circuit", "s"),
        ("tp_percent", "#TP(%)", ".0f"),
        ("n_tp", "#TP", "d"),
        ("n_cells", "#cells", "d"),
        ("n_rows", "#rows", "d"),
        ("row_length_um", "L_rows(um)", ".0f"),
        ("core_area_um2", "core(um2)", ".0f"),
        ("core_inc_percent", "inc.(%)", ".2f"),
        ("filler_area_percent", "filler(%)", ".2f"),
        ("chip_area_um2", "chip(um2)", ".0f"),
        ("chip_inc_percent", "inc.(%)", ".2f"),
        ("wirelength_um", "L_wires(um)", ".0f"),
    ))


def format_table3(rows: Iterable[_Row]) -> str:
    """Table 3: Impact of TPI on timing."""
    return _format(rows, (
        ("circuit", "circuit", "s"),
        ("domain", "clock", "s"),
        ("tp_percent", "#TP(%)", ".0f"),
        ("n_tp_cp", "#TP_cp", "d"),
        ("t_cp_ps", "T_cp(ps)", ".0f"),
        ("t_cp_inc_percent", "inc.(%)", ".2f"),
        ("fmax_mhz", "F_max(MHz)", ".1f"),
        ("t_wires_ps", "T_wires", ".0f"),
        ("t_intrinsic_ps", "T_intr", ".0f"),
        ("t_load_dep_ps", "T_load", ".0f"),
        ("t_setup_ps", "T_setup", ".0f"),
        ("t_skew_ps", "T_skew", ".0f"),
        ("slow_nodes", "slow", "d"),
    ))
