"""Layout rendering: the paper's Figure 3 stages as SVG (and text).

Figure 3 shows the layout after (a) floorplanning, (b) placement and
(c) routing: the square chip with its IO/power/ground rings, the core
rows, the placed cells and the routed wiring.  :func:`render_svg`
reproduces those views from a flow result; :func:`ascii_density` gives
a terminal-friendly occupancy map used by tests and quick inspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.layout.floorplan import (
    Floorplan,
    GROUND_RING_UM,
    IO_RING_UM,
    POWER_RING_UM,
)
from repro.layout.placement import Placement
from repro.layout.routing import RoutedNet
from repro.library.cell import ROW_HEIGHT_UM
from repro.netlist.circuit import Circuit

#: Fill colours per cell class.
_COLOURS = {
    "tsff": "#d62728",
    "ff": "#1f77b4",
    "clkbuf": "#9467bd",
    "filler": "#dddddd",
    "comb": "#2ca02c",
}


def _cell_class(circuit: Circuit, name: str) -> str:
    cell = circuit.instances[name].cell
    if cell.is_tsff:
        return "tsff"
    if cell.is_sequential:
        return "ff"
    if cell.is_clock_buffer:
        return "clkbuf"
    if cell.is_filler:
        return "filler"
    return "comb"


def render_svg(
    circuit: Circuit,
    plan: Floorplan,
    placement: Optional[Placement] = None,
    routed: Optional[Dict[str, RoutedNet]] = None,
    stage: str = "routed",
    scale: float = 2.0,
) -> str:
    """Render one Figure 3 stage as an SVG document string.

    Args:
        circuit: The laid-out netlist.
        plan: Floorplan (rings and rows are always drawn).
        placement: Cell positions; required for the placement and
            routing stages.
        routed: Routed nets; drawn in the routing stage.
        stage: ``"floorplan"``, ``"placement"`` or ``"routed"``.
        scale: SVG pixels per um.
    """
    if stage not in ("floorplan", "placement", "routed"):
        raise ValueError(f"unknown stage {stage!r}")
    w = plan.chip.width * scale
    h = plan.chip.height * scale

    def rect(x, y, rw, rh, fill, opacity=1.0, stroke="none"):
        return (
            f'<rect x="{x * scale:.1f}" y="{(plan.chip.height - y - rh) * scale:.1f}" '
            f'width="{rw * scale:.1f}" height="{rh * scale:.1f}" '
            f'fill="{fill}" fill-opacity="{opacity}" stroke="{stroke}"/>'
        )

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" '
        f'height="{h:.0f}" viewBox="0 0 {w:.0f} {h:.0f}">',
        rect(0, 0, plan.chip.width, plan.chip.height, "#f5f0e6"),
    ]
    # Rings, outermost first: IO, power, ground.
    side = plan.chip.width
    offsets = (
        (0.0, IO_RING_UM, "#c8a165"),
        (IO_RING_UM, POWER_RING_UM, "#b03030"),
        (IO_RING_UM + POWER_RING_UM, GROUND_RING_UM, "#3050b0"),
    )
    for offset, width_ring, colour in offsets:
        inner = side - 2 * (offset + width_ring)
        parts.append(rect(offset, offset, side - 2 * offset,
                          side - 2 * offset, colour))
        parts.append(rect(offset + width_ring, offset + width_ring,
                          inner + 2 * 0, inner, "#f5f0e6"))
    # Rows.
    for row in plan.rows:
        parts.append(rect(row.x0, row.y, row.length_um, ROW_HEIGHT_UM,
                          "#ffffff", stroke="#cccccc"))
    # Cells.
    if stage in ("placement", "routed") and placement is not None:
        for name, (x, y) in placement.positions.items():
            inst = circuit.instances.get(name)
            if inst is None:
                continue
            cw = inst.cell.width_um
            parts.append(rect(
                x - cw / 2, y - ROW_HEIGHT_UM / 2, cw, ROW_HEIGHT_UM,
                _COLOURS[_cell_class(circuit, name)], opacity=0.9,
            ))
    # Wires.
    if stage == "routed" and routed is not None:
        for net in routed.values():
            for seg in net.segments:
                parts.append(
                    f'<line x1="{seg.x0 * scale:.1f}" '
                    f'y1="{(plan.chip.height - seg.y0) * scale:.1f}" '
                    f'x2="{seg.x1 * scale:.1f}" '
                    f'y2="{(plan.chip.height - seg.y1) * scale:.1f}" '
                    f'stroke="#666666" stroke-opacity="0.25" '
                    f'stroke-width="0.6"/>'
                )
    parts.append("</svg>")
    return "\n".join(parts)


def ascii_density(circuit: Circuit, placement: Placement,
                  columns: int = 64) -> str:
    """Terminal occupancy map of the core: one char per region.

    ``.`` empty, digits 1-9 for rising occupancy, ``#`` for full.
    """
    plan = placement.plan
    rows = max(1, plan.n_rows // 2)
    grid = [[0.0] * columns for _ in range(rows)]
    cell_w = plan.core.width / columns
    for name, (x, y) in placement.positions.items():
        inst = circuit.instances.get(name)
        if inst is None or inst.cell.is_filler:
            continue
        col = int((x - plan.core.x0) / cell_w)
        row = int((y - plan.core.y0) / (plan.core.height / rows))
        if 0 <= row < rows and 0 <= col < columns:
            grid[row][col] += inst.cell.width_um * ROW_HEIGHT_UM
    region_area = cell_w * (plan.core.height / rows)
    lines = []
    for row in reversed(grid):
        chars = []
        for util in row:
            f = util / region_area
            if f <= 0.02:
                chars.append(".")
            elif f >= 0.95:
                chars.append("#")
            else:
                chars.append(str(min(9, max(1, int(f * 10)))))
        lines.append("".join(chars))
    return "\n".join(lines)
