"""Scan insertion: scan-cell substitution and chain stitching.

Implements step 1 of the paper's tool flow (Fig. 2): every plain DFF is
replaced by its scan-equivalent cell, all flip-flops (TSFFs included)
are partitioned into balanced scan chains, and the global test signals
(scan-enable TE, test-point-enable TR, scan-in/scan-out ports) are
created and connected.

Chains never mix clock domains: shifting through a domain crossing
would need lock-up latches the paper's flow does not use.  Within each
domain, chains are balanced to the requested maximum length or chain
count (paper Section 4.1: "multiple, balanced scan chains"; s38417 and
circuit 1 use a maximum balanced length of 100, p26909 uses 32 chains).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.library.cell import Library
from repro.netlist.circuit import Circuit

#: Name of the global scan-enable (TE) input.
SCAN_ENABLE = "scan_enable"

#: Name of the global test-point-enable (TR) input.
TP_ENABLE = "tp_enable"


@dataclass
class ScanChains:
    """Scan-chain configuration of a circuit.

    Attributes:
        chains: Flip-flop instance names per chain, scan-in first.
        scan_in_ports: Scan-in port per chain.
        scan_out_ports: Scan-out port per chain.
        clock_of_chain: Clock domain net per chain.
    """

    chains: List[List[str]] = field(default_factory=list)
    scan_in_ports: List[str] = field(default_factory=list)
    scan_out_ports: List[str] = field(default_factory=list)
    clock_of_chain: List[str] = field(default_factory=list)

    @property
    def n_chains(self) -> int:
        """Number of scan chains."""
        return len(self.chains)

    @property
    def max_length(self) -> int:
        """Length of the longest chain (paper's l_max)."""
        return max((len(c) for c in self.chains), default=0)

    @property
    def n_flip_flops(self) -> int:
        """Total flip-flops across all chains."""
        return sum(len(c) for c in self.chains)


def insert_scan(
    circuit: Circuit,
    library: Library,
    max_chain_length: Optional[int] = None,
    n_chains: Optional[int] = None,
) -> ScanChains:
    """Convert ``circuit`` to full scan, in place.

    Args:
        circuit: Netlist to convert; plain DFFs become scan DFFs, all
            sequential cells are stitched into chains.
        library: Library providing the scan cells (``SDFF_X1``).
        max_chain_length: Balance chains to at most this many FFs.
        n_chains: Alternatively, use exactly this many chains (split
            proportionally across clock domains).

    Returns:
        The resulting chain configuration.

    Raises:
        ValueError: Neither or both sizing arguments given.
    """
    if (max_chain_length is None) == (n_chains is None):
        raise ValueError("give exactly one of max_chain_length / n_chains")

    # 1. Substitute scan cells and collect FFs per clock domain.
    sdff = library["SDFF_X1"]
    by_domain: Dict[str, List[str]] = {}
    for inst in list(circuit.instances.values()):
        if not inst.is_sequential:
            continue
        if not inst.cell.is_scan:
            circuit.swap_cell(inst.name, sdff)
        clock = circuit.clock_of(inst.name)
        if clock is None:
            raise ValueError(f"flip-flop {inst.name!r} has no clock")
        by_domain.setdefault(clock, []).append(inst.name)

    total_ffs = sum(len(v) for v in by_domain.values())
    if total_ffs == 0:
        return ScanChains()

    # 2. Global test-control nets.
    if SCAN_ENABLE not in circuit.nets:
        circuit.add_input(SCAN_ENABLE)
    has_tsff = any(
        inst.cell.is_tsff for inst in circuit.instances.values()
    )
    if has_tsff and TP_ENABLE not in circuit.nets:
        circuit.add_input(TP_ENABLE)

    # 3. Chain counts per domain.
    config = ScanChains()
    if n_chains is not None:
        remaining = n_chains
        domains = sorted(by_domain, key=lambda d: -len(by_domain[d]))
        share: Dict[str, int] = {}
        for i, domain in enumerate(domains):
            if i == len(domains) - 1:
                share[domain] = max(1, remaining)
            else:
                portion = max(
                    1, round(n_chains * len(by_domain[domain]) / total_ffs)
                )
                portion = min(portion, remaining - (len(domains) - 1 - i))
                share[domain] = portion
                remaining -= portion
    else:
        share = {
            domain: max(1, math.ceil(len(ffs) / max_chain_length))
            for domain, ffs in by_domain.items()
        }

    # 4. Stitch balanced chains within each domain.
    for domain in sorted(by_domain):
        ffs = by_domain[domain]
        k = share[domain]
        length = math.ceil(len(ffs) / k)
        for c in range(k):
            members = ffs[c * length:(c + 1) * length]
            if not members:
                continue
            chain_id = config.n_chains
            si = f"si{chain_id}"
            so = f"so{chain_id}"
            circuit.add_input(si)
            _stitch(circuit, members, si)
            last_q = circuit.instances[members[-1]].conns["Q"]
            circuit.add_output(so, last_q)
            config.chains.append(members)
            config.scan_in_ports.append(si)
            config.scan_out_ports.append(so)
            config.clock_of_chain.append(domain)

    # 5. Hook up TE / TR.
    for inst in circuit.instances.values():
        seq = inst.cell.sequential
        if seq is None:
            continue
        if seq.scan_enable and seq.scan_enable not in inst.conns:
            circuit.connect(inst.name, seq.scan_enable, SCAN_ENABLE)
        if seq.test_point_enable and seq.test_point_enable not in inst.conns:
            circuit.connect(inst.name, seq.test_point_enable, TP_ENABLE)
    return config


def _stitch(circuit: Circuit, members: List[str], scan_in_net: str) -> None:
    """Wire TI pins along one chain: scan-in, then Q-to-TI hops."""
    previous_q = scan_in_net
    for name in members:
        inst = circuit.instances[name]
        seq = inst.cell.sequential
        if seq is None or seq.scan_in is None:
            raise ValueError(f"{name!r} is not a scan cell")
        if seq.scan_in in inst.conns:
            circuit.disconnect(name, seq.scan_in)
        circuit.connect(name, seq.scan_in, previous_q)
        previous_q = inst.conns[seq.output_pin]


def restitch_chains(circuit: Circuit, config: ScanChains,
                    new_orders: List[List[str]]) -> None:
    """Rewire existing chains to new member orders (same membership).

    Used by layout-driven reordering: chain membership and ports stay,
    only the shift order changes.
    """
    if len(new_orders) != config.n_chains:
        raise ValueError("chain count mismatch")
    for chain_id, members in enumerate(new_orders):
        if sorted(members) != sorted(config.chains[chain_id]):
            raise ValueError(
                f"chain {chain_id} membership changed during reorder"
            )
        si = config.scan_in_ports[chain_id]
        so = config.scan_out_ports[chain_id]
        _stitch(circuit, members, si)
        # Move the scan-out port to the new last FF.
        last_q = circuit.instances[members[-1]].conns["Q"]
        old_net = circuit.output_net(so)
        if old_net != last_q:
            circuit.nets[old_net].remove_sink("@port", so)
            circuit.nets[last_q].add_sink("@port", so)
            circuit._output_net[so] = last_q
        config.chains[chain_id] = list(members)
