"""Scan shift and flush verification.

The paper tests the TSFF's mux-to-mux path with a *scan flush test*
(TE=1, TR=0: the scan input streams combinationally through both muxes
to the output).  This module provides behavioural simulations of the
shift and flush operations used to verify chain integrity after
stitching and reordering — the structural tests that also justify
crediting scan-path faults as detected in the fault census.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.netlist.circuit import Circuit
from repro.scan.insertion import ScanChains


def simulate_shift(circuit: Circuit, config: ScanChains,
                   stimulus: Sequence[int], chain: int) -> List[int]:
    """Shift a bit sequence through one chain and return the output.

    Models scan-shift mode (TE=1, TR=1): each cycle every flip-flop
    captures its TI value.  After ``len(stimulus) + length`` cycles the
    full stimulus emerges at scan-out, so the returned list equals the
    stimulus delayed by the chain length — the standard chain-integrity
    ("flush") check.

    Args:
        circuit: Scan-stitched netlist.
        config: Chain configuration.
        stimulus: Bits presented at the scan-in, first bit first.
        chain: Chain index.

    Returns:
        Bits observed at scan-out over ``len(stimulus) + length``
        cycles.
    """
    members = config.chains[chain]
    state: Dict[str, int] = {name: 0 for name in members}
    out: List[int] = []
    length = len(members)
    padded = list(stimulus) + [0] * length
    for cycle_bit in padded:
        out.append(state[members[-1]])
        # Shift: each FF takes its predecessor's state, head takes SI.
        for i in range(length - 1, 0, -1):
            state[members[i]] = state[members[i - 1]]
        state[members[0]] = cycle_bit
    return out[length:]


def flush_delay_ok(circuit: Circuit, config: ScanChains) -> bool:
    """Check every chain transports a walking-one pattern intact."""
    for chain in range(config.n_chains):
        probe = [1] + [0] * 4
        if simulate_shift(circuit, config, probe, chain) != probe:
            return False
    return True


def tsff_flush_paths(circuit: Circuit) -> List[str]:
    """TSFF instances whose combinational flush path (TI->Q) exists.

    In flush mode (TE=1, TR=0) a TSFF's output follows its scan input
    combinationally; the library cell must therefore expose a TI->Q
    timing arc.  Returns the TSFFs satisfying this, which the flush
    test exercises.
    """
    flushable = []
    for inst in circuit.instances.values():
        if not inst.cell.is_tsff:
            continue
        try:
            inst.cell.arc("TI", "Q")
        except KeyError:
            continue
        flushable.append(inst.name)
    return flushable
