"""Scan insertion, layout-driven chain reordering and flush tests."""

from repro.scan.flush import flush_delay_ok, simulate_shift, tsff_flush_paths
from repro.scan.insertion import (
    SCAN_ENABLE,
    TP_ENABLE,
    ScanChains,
    insert_scan,
    restitch_chains,
)
from repro.scan.reorder import (
    ReorderReport,
    chain_wirelength,
    nearest_neighbour_order,
    reorder_chains,
    two_opt,
)

__all__ = [
    "ReorderReport",
    "SCAN_ENABLE",
    "ScanChains",
    "TP_ENABLE",
    "chain_wirelength",
    "flush_delay_ok",
    "insert_scan",
    "nearest_neighbour_order",
    "reorder_chains",
    "restitch_chains",
    "simulate_shift",
    "tsff_flush_paths",
    "two_opt",
]
