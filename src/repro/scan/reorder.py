"""Layout-driven scan-chain reordering.

Step 3 of the paper's tool flow: after placement, flip-flops are
re-ordered within their chains using cell placement information so that
the scan wiring (the Q -> TI hops) is as short as possible.  The paper
notes this step "minimises the wire length for the scan chains" and may
add buffers on the scan-enable signal — both are implemented here.

The ordering heuristic is greedy nearest-neighbour from the scan-in pin
followed by bounded 2-opt refinement — the standard TSP-flavoured
approach used by layout-aware scan stitching tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.library.cell import Library
from repro.netlist.circuit import Circuit
from repro.scan.insertion import SCAN_ENABLE, ScanChains, restitch_chains

Point = Tuple[float, float]


@dataclass
class ReorderReport:
    """Outcome of the reorder pass.

    Attributes:
        wirelength_before_um: Manhattan scan-hop length before reorder.
        wirelength_after_um: Same after reorder.
        buffers_added: Scan-enable buffers inserted.
    """

    wirelength_before_um: float
    wirelength_after_um: float
    buffers_added: int = 0


def _manhattan(a: Point, b: Point) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def chain_wirelength(order: Sequence[str], positions: Dict[str, Point],
                     start: Point) -> float:
    """Total Manhattan length of one chain's shift path."""
    total = 0.0
    previous = start
    for name in order:
        current = positions[name]
        total += _manhattan(previous, current)
        previous = current
    return total


def nearest_neighbour_order(members: Sequence[str],
                            positions: Dict[str, Point],
                            start: Point) -> List[str]:
    """Greedy nearest-neighbour ordering from the scan-in location."""
    remaining = set(members)
    order: List[str] = []
    current = start
    while remaining:
        best = min(remaining, key=lambda m: _manhattan(current, positions[m]))
        order.append(best)
        remaining.discard(best)
        current = positions[best]
    return order


def two_opt(order: List[str], positions: Dict[str, Point], start: Point,
            max_passes: int = 4) -> List[str]:
    """Bounded 2-opt refinement of a chain order."""
    pts = [start] + [positions[m] for m in order]
    n = len(order)
    improved = True
    passes = 0
    while improved and passes < max_passes:
        improved = False
        passes += 1
        for i in range(n - 1):
            for j in range(i + 2, n):
                # Reversing order[i:j] replaces edges (i-1,i) and (j-1,j)
                # with (i-1,j-1) and (i,j).  pts is offset by one.
                a, b = pts[i], pts[i + 1]
                c, d = pts[j], pts[j + 1] if j + 1 <= n else None
                if d is None:
                    # Last edge is open-ended (scan-out side): reversing
                    # the tail only changes the (i-1,i) edge.
                    if _manhattan(a, pts[j]) < _manhattan(a, b):
                        order[i:j] = reversed(order[i:j])
                        pts[i + 1:j + 1] = reversed(pts[i + 1:j + 1])
                        improved = True
                    continue
                old = _manhattan(a, b) + _manhattan(c, d)
                new = _manhattan(a, c) + _manhattan(b, d)
                if new + 1e-9 < old:
                    order[i:j] = reversed(order[i:j])
                    pts[i + 1:j + 1] = reversed(pts[i + 1:j + 1])
                    improved = True
    return order


def reorder_chains(
    circuit: Circuit,
    config: ScanChains,
    positions: Dict[str, Point],
    scan_in_positions: Dict[int, Point],
    library: Library,
    max_te_fanout: int = 24,
) -> ReorderReport:
    """Reorder every chain to the placement, in place.

    Args:
        circuit: Scan-inserted netlist (rewired in place).
        config: Chain configuration from :func:`insert_scan`.
        positions: Placement location per flip-flop instance.
        scan_in_positions: Location of each chain's scan-in pad, keyed
            by chain index (e.g. the floorplan edge nearest the pad).
        library: Library providing scan-enable buffers.
        max_te_fanout: Insert scan-enable buffers when the TE net drives
            more sinks than this (prevents the slew/timing violations
            the paper mentions).

    Returns:
        Wirelength before/after and the number of buffers added.
    """
    before = 0.0
    after = 0.0
    new_orders: List[List[str]] = []
    for chain_id, members in enumerate(config.chains):
        start = scan_in_positions.get(chain_id, (0.0, 0.0))
        before += chain_wirelength(members, positions, start)
        order = nearest_neighbour_order(members, positions, start)
        order = two_opt(order, positions, start)
        after += chain_wirelength(order, positions, start)
        new_orders.append(order)
    restitch_chains(circuit, config, new_orders)
    buffers = _buffer_scan_enable(circuit, library, max_te_fanout)
    return ReorderReport(
        wirelength_before_um=before,
        wirelength_after_um=after,
        buffers_added=buffers,
    )


def _buffer_scan_enable(circuit: Circuit, library: Library,
                        max_fanout: int) -> int:
    """Split a heavily loaded scan-enable net with a buffer tree.

    Returns the number of buffers added.  Buffer placement is left to
    the ECO step (they are new unplaced cells).
    """
    if SCAN_ENABLE not in circuit.nets:
        return 0
    buffer_cell = library.family("BUF")[-1]
    added = 0
    frontier = [SCAN_ENABLE]
    while frontier:
        net_name = frontier.pop()
        net = circuit.nets[net_name]
        sinks = net.instance_sinks()
        if len(sinks) <= max_fanout:
            continue
        groups = [
            sinks[i:i + max_fanout] for i in range(0, len(sinks), max_fanout)
        ]
        for group in groups:
            new_net = circuit.split_net_before_sinks(net_name, group, "te")
            buf_name = circuit.new_instance_name("tebuf")
            circuit.add_instance(
                buf_name, buffer_cell,
                {"A": net_name, "Z": new_net.name},
            )
            added += 1
            frontier.append(new_net.name)
    return added
