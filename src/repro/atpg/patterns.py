"""Test-pattern interchange: a STIL-flavoured text format.

Writes the compacted scan test set in a simple, diffable text format
(and reads it back): a header naming the scan inputs in bit order,
then one line per pattern with the load values.  The format carries
exactly what a tester needs for the capture patterns of a full-scan
design — scan-cell load values per pattern — without the ceremony of
full STIL; real pattern volumes (Table 1's TDV) follow from it via the
chain configuration and equations (1)-(2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.atpg.engine import AtpgResult

#: Format marker written in the header.
MAGIC = "repro-patterns v1"


def to_pattern_text(result: AtpgResult,
                    circuit_name: str = "design") -> str:
    """Serialise a test set.

    Bit *j* of every pattern line (leftmost character first) is the
    value of ``result.input_nets[j]``.
    """
    n = len(result.input_nets)
    lines = [
        f"# {MAGIC}",
        f"# design: {circuit_name}",
        f"# inputs: {n}",
        f"# patterns: {result.n_patterns}",
        "inputs " + " ".join(result.input_nets),
    ]
    for pattern in result.patterns:
        bits = "".join(
            "1" if (pattern >> j) & 1 else "0" for j in range(n)
        )
        lines.append(bits)
    return "\n".join(lines) + "\n"


def from_pattern_text(text: str) -> Tuple[List[str], List[int]]:
    """Parse a pattern file back into ``(input_nets, patterns)``.

    Raises:
        ValueError: Malformed file (missing header, ragged lines,
            non-binary characters).
    """
    lines = [l for l in text.splitlines() if l and not l.startswith("#")]
    if not lines or not lines[0].startswith("inputs "):
        raise ValueError("missing 'inputs' header line")
    inputs = lines[0].split()[1:]
    n = len(inputs)
    patterns: List[int] = []
    for lineno, line in enumerate(lines[1:], start=2):
        if len(line) != n:
            raise ValueError(
                f"line {lineno}: expected {n} bits, got {len(line)}"
            )
        value = 0
        for j, ch in enumerate(line):
            if ch == "1":
                value |= 1 << j
            elif ch != "0":
                raise ValueError(
                    f"line {lineno}: invalid character {ch!r}"
                )
        patterns.append(value)
    return inputs, patterns


def scan_load_schedule(
    patterns: Sequence[int],
    input_nets: Sequence[str],
    chains: Sequence[Sequence[str]],
    q_net_of: dict,
) -> List[List[str]]:
    """Per-chain shift streams for one pattern set.

    Args:
        patterns: Integer-encoded patterns.
        input_nets: Bit order of the encoding.
        chains: Scan chains as flip-flop instance lists (scan-in
            first).
        q_net_of: Maps a flip-flop instance to its Q net (which is the
            controllable net the pattern bit addresses).

    Returns:
        For every pattern, the list of per-chain bit strings to shift
        in (first-shifted bit first, i.e. destined for the chain tail).
    """
    index = {net: j for j, net in enumerate(input_nets)}
    schedule: List[List[str]] = []
    for pattern in patterns:
        per_chain: List[str] = []
        for chain in chains:
            # The first bit shifted in ends at the chain's last FF.
            bits = []
            for name in reversed(chain):
                j = index.get(q_net_of[name])
                bits.append(
                    "1" if j is not None and (pattern >> j) & 1 else "0"
                )
            per_chain.append("".join(bits))
        schedule.append(per_chain)
    return schedule
