"""Compiled three-valued (0/1/X) node evaluation.

PODEM spends nearly all of its time re-implying node values, so the
three-valued algebra is compiled per node into flat Python expressions
over an encoded value array instead of walking expression trees.

Encoding: ``X = 0``, ``ONE = 1``, ``ZERO = 2``.  With this encoding AND
and OR reduce to two bitwise operations::

    AND(x, y) = ((x & y) & 1) | ((x | y) & 2)
    OR(x, y)  = ((x | y) & 1) | ((x & y) & 2)

(one-bits AND together, zero-bits OR together, and vice versa), while
NOT, XOR and MUX use small lookup tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.library.logic import And, Const, LogicExpr, Mux, Not, Or, Var, Xor

#: Encoded three-valued constants.
X, ONE, ZERO = 0, 1, 2

#: NOT lookup: X -> X, 1 -> 0, 0 -> 1.
NOT_TABLE = (X, ZERO, ONE)

#: XOR lookup indexed by ``a * 3 + b``.
XOR_TABLE = (
    X, X, X,        # a = X
    X, ZERO, ONE,   # a = 1
    X, ONE, ZERO,   # a = 0
)

#: MUX lookup indexed by ``s * 9 + a * 3 + b`` (s=1 selects b).
MUX_TABLE = tuple(
    (
        b if s == ONE
        else a if s == ZERO
        else (a if (a == b and a != X) else X)
    )
    for s in (X, ONE, ZERO)
    for a in (X, ONE, ZERO)
    for b in (X, ONE, ZERO)
)


def encode(value: Optional[int]) -> int:
    """Encode a Python-level value (0/1/None) into the 3-valued code."""
    if value is None:
        return X
    return ONE if value else ZERO


def decode(code: int) -> Optional[int]:
    """Decode a 3-valued code into 0/1/None."""
    if code == X:
        return None
    return 1 if code == ONE else 0


def render3(expr: LogicExpr, pin_code: Dict[str, str]) -> str:
    """Render an expression into encoded-3-valued Python source.

    Args:
        expr: Expression tree.
        pin_code: Source snippet per pin producing an encoded value.
            Table names ``_NT``/``_XT``/``_MT`` must be in scope.
    """
    if isinstance(expr, Var):
        return pin_code[expr.pin]
    if isinstance(expr, Const):
        return str(ONE if expr.value else ZERO)
    if isinstance(expr, Not):
        return f"_NT[{render3(expr.arg, pin_code)}]"
    if isinstance(expr, (And, Or)):
        is_and = isinstance(expr, And)
        acc = render3(expr.args[0], pin_code)
        for arg in expr.args[1:]:
            nxt = render3(arg, pin_code)
            if is_and:
                acc = f"((({acc})&({nxt})&1)|((({acc})|({nxt}))&2))"
            else:
                acc = f"(((({acc})|({nxt}))&1)|((({acc})&({nxt}))&2))"
        return acc
    if isinstance(expr, Xor):
        a = render3(expr.a, pin_code)
        b = render3(expr.b, pin_code)
        return f"_XT[({a})*3+({b})]"
    if isinstance(expr, Mux):
        s = render3(expr.sel, pin_code)
        a = render3(expr.a, pin_code)
        b = render3(expr.b, pin_code)
        return f"_MT[({s})*9+({a})*3+({b})]"
    raise TypeError(f"unsupported expression node {type(expr).__name__}")


def compile_node3(expr: LogicExpr, pin_index: Dict[str, int]
                  ) -> Callable[[Sequence[int]], int]:
    """Compile a node function into ``fn(values) -> encoded value``.

    Args:
        expr: The node's logic function.
        pin_index: Net-array index per input pin.

    The And/Or folding duplicates operand snippets, which is fine for
    the shallow trees of standard cells but would blow up on deep
    expressions — bind intermediate values first if that ever changes.
    """
    pin_code = {pin: f"v[{idx}]" for pin, idx in pin_index.items()}
    src = (
        f"lambda v, _NT=_NT, _XT=_XT, _MT=_MT: {render3(expr, pin_code)}"
    )
    return eval(  # noqa: S307 - source built from trusted trees
        src, {"_NT": NOT_TABLE, "_XT": XOR_TABLE, "_MT": MUX_TABLE}
    )


def eval3_encoded(expr: LogicExpr, pin_values: Dict[str, int]) -> int:
    """Interpretively evaluate with encoded pin values (slow path)."""
    if isinstance(expr, Var):
        return pin_values[expr.pin]
    if isinstance(expr, Const):
        return ONE if expr.value else ZERO
    if isinstance(expr, Not):
        return NOT_TABLE[eval3_encoded(expr.arg, pin_values)]
    if isinstance(expr, And):
        acc = eval3_encoded(expr.args[0], pin_values)
        for arg in expr.args[1:]:
            nxt = eval3_encoded(arg, pin_values)
            acc = ((acc & nxt & 1) | ((acc | nxt) & 2))
        return acc
    if isinstance(expr, Or):
        acc = eval3_encoded(expr.args[0], pin_values)
        for arg in expr.args[1:]:
            nxt = eval3_encoded(arg, pin_values)
            acc = (((acc | nxt) & 1) | ((acc & nxt) & 2))
        return acc
    if isinstance(expr, Xor):
        a = eval3_encoded(expr.a, pin_values)
        b = eval3_encoded(expr.b, pin_values)
        return XOR_TABLE[a * 3 + b]
    if isinstance(expr, Mux):
        s = eval3_encoded(expr.sel, pin_values)
        a = eval3_encoded(expr.a, pin_values)
        b = eval3_encoded(expr.b, pin_values)
        return MUX_TABLE[s * 9 + a * 3 + b]
    raise TypeError(f"unsupported expression node {type(expr).__name__}")
