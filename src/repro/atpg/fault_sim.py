"""Parallel-pattern single-fault propagation (PPSFP) fault simulation.

For each block of ``width`` patterns the good machine is simulated once
(compiled), then every active fault is injected and its divergence is
propagated event-driven, in level order, through the fanout cone only.
Faults whose divergence dies out are abandoned early; faults reaching an
observable net report the pattern bits that detect them.

This is the workhorse behind the random-pattern ATPG phase, serendipity
dropping of deterministic patterns, and reverse-order static compaction.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.atpg.faults import Fault
from repro.atpg.simulator import BitSimulator
from repro.netlist.net import PORT


class FaultSimulator:
    """Event-driven PPSFP fault simulator.

    Args:
        sim: Compiled good-machine simulator (defines block width).
    """

    def __init__(self, sim: BitSimulator):
        self.sim = sim
        view = sim.view
        self.mask = sim.mask

        # Reader index: net index -> list of (node position, node).
        self._node_pos = {id(n): i for i, n in enumerate(view.nodes)}
        self.readers: Dict[int, List[int]] = {}
        for pos, node in enumerate(view.nodes):
            for net in set(node.pin_nets.values()):
                idx = sim.net_index.get(net)
                if idx is not None:
                    self.readers.setdefault(idx, []).append(pos)
        self.levels = [node.level for node in view.nodes]
        self.out_idx = [
            sim.net_index[node.out_net] for node in view.nodes
        ]
        self.observable = {
            sim.net_index[net]
            for net in view.output_nets
            if net in sim.net_index
        }
        # Observable sink pins: (net, inst, pin) that are PPO/PO points.
        self.observable_sinks = {
            (net, ref) for net, ref in view.output_refs
        }

    # ------------------------------------------------------------------
    def in_view(self, fault: Fault) -> bool:
        """True when the fault site is simulatable in this view."""
        return fault.net in self.sim.net_index

    def detect_word(self, good: List[int], fault: Fault) -> int:
        """Pattern bits of the current block that detect ``fault``.

        Args:
            good: Good-machine values from :meth:`BitSimulator.run`.
            fault: Fault to inject (must satisfy :meth:`in_view`).

        Returns:
            A word with bit *i* set when pattern *i* detects the fault.
        """
        sim = self.sim
        site = sim.net_index[fault.net]
        stuck = sim.mask if fault.value else 0
        activated = (good[site] ^ stuck) & sim.mask
        if not activated:
            return 0

        if fault.sink is not None:
            return self._detect_branch(good, fault, site, stuck, activated)
        return self._propagate(good, {site: stuck}, activated, site)

    def _detect_branch(self, good: List[int], fault: Fault,
                       site: int, stuck: int, activated: int) -> int:
        """Branch fault: faulty value enters one sink only."""
        inst, pin = fault.sink
        if (fault.net, (inst, pin)) in self.observable_sinks or inst == PORT:
            # The faulted branch feeds an observation point directly.
            return activated
        # Find the reading node and re-evaluate it with the pin forced.
        for pos in self.readers.get(site, ()):
            node = self.sim.view.nodes[pos]
            if node.inst.name != inst or node.pin_nets.get(pin) != fault.net:
                continue
            # Only the faulted pin takes the stuck value; other pins on
            # the same net keep their good values.
            new_out = self._eval_with_pin(node, good, pin, stuck)
            out = self.out_idx[pos]
            diff_bits = (new_out ^ good[out]) & self.mask
            if not diff_bits:
                return 0
            return self._propagate(good, {out: new_out}, diff_bits, out)
        return 0

    def _eval_with_pin(self, node, good: List[int],
                       pin: str, word: int) -> int:
        """Evaluate a node with one input pin forced to ``word``."""
        pin_vals = {
            p: good[self.sim.net_index[net]]
            for p, net in node.pin_nets.items()
        }
        pin_vals[pin] = word
        return node.expr.eval2(pin_vals) & self.mask

    def _propagate(self, good: List[int], diff: Dict[int, int],
                   detected: int, start: int) -> int:
        """Propagate faulty values forward; return detection word.

        Args:
            good: Good values per net index.
            diff: Faulty values per diverged net index.
            detected: Detection bits accumulated so far (bits detected
                at the start net if it is observable).
            start: Net index where divergence begins.
        """
        det = detected if start in self.observable else 0
        node_fns = self.sim.node_fns
        out_idx = self.out_idx
        mask = self.mask

        def get(i: int) -> int:
            return diff.get(i, good[i])

        heap: List[Tuple[int, int]] = []
        queued = set()
        for pos in self.readers.get(start, ()):
            heapq.heappush(heap, (self.levels[pos], pos))
            queued.add(pos)
        while heap:
            _, pos = heapq.heappop(heap)
            queued.discard(pos)
            new_out = node_fns[pos](get) & mask
            out = out_idx[pos]
            if new_out == get(out):
                continue
            if new_out == good[out]:
                diff.pop(out, None)
            else:
                diff[out] = new_out
            if out in self.observable:
                det |= (new_out ^ good[out]) & mask
            for reader in self.readers.get(out, ()):
                if reader not in queued:
                    heapq.heappush(heap, (self.levels[reader], reader))
                    queued.add(reader)
        return det

    # ------------------------------------------------------------------
    def run_block(
        self,
        input_words: Dict[str, int],
        faults: Iterable[Fault],
        good: Optional[List[int]] = None,
    ) -> Dict[Fault, int]:
        """Simulate one pattern block against many faults.

        Args:
            input_words: Packed input words for the block.
            faults: Faults to inject (non-simulatable ones are skipped).
            good: Pre-computed good values (simulated when omitted).

        Returns:
            Detection word per fault, for faults detected at least once.
        """
        if good is None:
            good = self.sim.run(input_words)
        detections: Dict[Fault, int] = {}
        for fault in faults:
            if not self.in_view(fault):
                continue
            word = self.detect_word(good, fault)
            if word:
                detections[fault] = word
        return detections
