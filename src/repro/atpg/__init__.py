"""Stuck-at ATPG: fault model, simulation, PODEM, compaction, engine."""

from repro.atpg.compaction import pack_block, reverse_order_compaction
from repro.atpg.engine import AtpgConfig, AtpgResult, run_atpg
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import Fault, FaultList, FaultStatus, build_fault_list
from repro.atpg.patterns import from_pattern_text, scan_load_schedule, to_pattern_text
from repro.atpg.podem import PodemEngine, TestCube
from repro.atpg.simulator import BitSimulator, render_expr

__all__ = [
    "AtpgConfig",
    "from_pattern_text",
    "scan_load_schedule",
    "to_pattern_text",
    "AtpgResult",
    "BitSimulator",
    "Fault",
    "FaultList",
    "FaultSimulator",
    "FaultStatus",
    "PodemEngine",
    "TestCube",
    "build_fault_list",
    "pack_block",
    "render_expr",
    "reverse_order_compaction",
    "run_atpg",
]
