"""Single stuck-at fault model: fault universe, classes and collapsing.

The fault universe follows the pin-fault convention of industrial ATPG:
one stem fault pair per net plus one branch fault pair per fanout sink.
Faults on the scan path itself (scan-in, scan-enable, TR and clock pins)
are covered by the scan shift and flush tests rather than by capture
patterns (paper Section 3.1 describes the flush test for the TSFF mux
path), so they are classified ``scan_path`` and credited as detected by
those structural tests — which is why the paper's fault coverage rises
slightly after TPI: the added test-point faults are easy to detect.

Equivalence collapsing is structural: branch faults on fanout-free nets
collapse into their stems, and stem faults collapse through
buffer/inverter chains.  ATPG targets class representatives; detection
is credited to whole classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.levelize import CombView
from repro.netlist.net import PORT, PinRef


class FaultStatus(Enum):
    """Lifecycle of a fault during test generation."""

    UNDETECTED = "undetected"
    DETECTED = "detected"
    SCAN_TESTED = "scan_tested"  # covered by scan shift / flush tests
    REDUNDANT = "redundant"      # proven untestable
    ABORTED = "aborted"          # ATPG gave up (backtrack limit)


@dataclass(frozen=True)
class Fault:
    """One single stuck-at fault.

    Attributes:
        net: The faulted net.
        sink: ``None`` for the stem fault; a ``(instance, pin)``
            reference for a branch fault at that sink.
        value: Stuck-at value, 0 or 1.
    """

    net: str
    sink: Optional[PinRef]
    value: int

    def __str__(self) -> str:
        where = self.net if self.sink is None else (
            f"{self.net}->{self.sink[0]}.{self.sink[1]}"
        )
        return f"{where} sa{self.value}"


@dataclass
class FaultList:
    """The complete fault universe of a circuit.

    Attributes:
        faults: Every fault, in deterministic order.
        status: Current status per fault.
        representative: Maps each fault to its equivalence-class
            representative (itself for class leaders).
    """

    faults: List[Fault] = field(default_factory=list)
    status: Dict[Fault, FaultStatus] = field(default_factory=dict)
    representative: Dict[Fault, Fault] = field(default_factory=dict)
    _members: Dict[Fault, List[Fault]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def rebuild_classes(self) -> None:
        """Recompute the representative -> members index."""
        self._members = {}
        for fault, rep in self.representative.items():
            self._members.setdefault(rep, []).append(fault)

    def classes(self) -> Dict[Fault, List[Fault]]:
        """Equivalence classes: representative -> members."""
        if not self._members:
            self.rebuild_classes()
        return self._members

    def targets(self) -> List[Fault]:
        """Class representatives still awaiting detection."""
        return [
            rep
            for rep in self.classes()
            if self.status[rep] is FaultStatus.UNDETECTED
        ]

    def mark(self, fault: Fault, status: FaultStatus) -> None:
        """Set the status of ``fault``'s whole equivalence class."""
        rep = self.representative[fault]
        for member in self.classes()[rep]:
            self.status[member] = status

    def mark_many(self, faults: Iterable[Fault], status: FaultStatus) -> None:
        """Mark several faults (and their classes) at once."""
        for fault in faults:
            self.mark(fault, status)

    # ------------------------------------------------------------------
    def count(self, status: FaultStatus) -> int:
        """Number of faults currently in ``status``."""
        return sum(1 for s in self.status.values() if s is status)

    @property
    def total(self) -> int:
        """Total number of faults in the universe."""
        return len(self.faults)

    @property
    def detected(self) -> int:
        """Faults detected by capture patterns or scan/flush tests."""
        return self.count(FaultStatus.DETECTED) + self.count(
            FaultStatus.SCAN_TESTED
        )

    @property
    def fault_coverage(self) -> float:
        """FC = detected / total (paper Table 1)."""
        return self.detected / self.total if self.total else 1.0

    @property
    def fault_efficiency(self) -> float:
        """FE = (detected + proven redundant) / total (paper Table 1)."""
        if not self.total:
            return 1.0
        return (self.detected + self.count(FaultStatus.REDUNDANT)) / self.total


def _scan_path_pins(circuit: Circuit) -> Dict[str, set]:
    """Input pins per instance that belong to the scan/test path."""
    result: Dict[str, set] = {}
    for inst in circuit.instances.values():
        seq = inst.cell.sequential
        if seq is None:
            continue
        pins = {seq.clock_pin}
        if seq.scan_in is not None:
            pins.add(seq.scan_in)
        if seq.scan_enable is not None:
            pins.add(seq.scan_enable)
        if seq.test_point_enable is not None:
            pins.add(seq.test_point_enable)
        result[inst.name] = pins
    return result


def build_fault_list(circuit: Circuit, view: CombView) -> FaultList:
    """Construct the fault universe for ``circuit``.

    Args:
        circuit: The netlist (defines nets/pins and hence the universe).
        view: Its test-mode combinational view (defines which faults are
            reachable by capture patterns vs. scan-path tests).

    Returns:
        A fault list with scan-path faults pre-marked ``SCAN_TESTED``
        and structural equivalence collapsing applied.
    """
    flist = FaultList()
    scan_pins = _scan_path_pins(circuit)
    control_nets = set(view.constants) | {d.net for d in circuit.clocks}
    node_of = view.node_by_output()

    def add(fault: Fault, scan_path: bool) -> None:
        flist.faults.append(fault)
        flist.status[fault] = (
            FaultStatus.SCAN_TESTED if scan_path else FaultStatus.UNDETECTED
        )
        flist.representative[fault] = fault

    for net_name in sorted(circuit.nets):
        net = circuit.nets[net_name]
        if net.driver is None:
            continue
        net_is_control = net_name in control_nets
        in_view = net_name in node_of or net_name in view.input_nets
        stem_scan = net_is_control or not in_view
        for value in (0, 1):
            add(Fault(net_name, None, value), stem_scan)
        if net.fanout <= 1:
            continue
        for sink in net.sinks:
            inst_name, pin = sink
            branch_scan = stem_scan
            if inst_name != PORT and pin in scan_pins.get(inst_name, ()):
                branch_scan = True
            for value in (0, 1):
                add(Fault(net_name, sink, value), branch_scan)

    _collapse(circuit, view, flist)
    return flist


def _collapse(circuit: Circuit, view: CombView, flist: FaultList) -> None:
    """Structural equivalence collapsing.

    Two rules (applied only within capture-targetable faults):

    * branch faults of single-fanout nets are the stem fault (handled
      at construction: no branches are emitted for fanout-1 nets);
    * a buffer/inverter output stem fault is equivalent to its (possibly
      inverted) input stem fault when the input net is fanout-free.
    """
    by_key: Dict[Tuple[str, Optional[PinRef], int], Fault] = {
        (f.net, f.sink, f.value): f for f in flist.faults
    }

    def find(key: Tuple[str, Optional[PinRef], int]) -> Optional[Fault]:
        return by_key.get(key)

    for node in view.nodes:
        cell = node.inst.cell
        if not (cell.is_buffer_like or len(cell.input_pins) == 1):
            continue
        if cell.is_sequential:
            continue
        in_pin = cell.input_pins[0]
        in_net = node.pin_nets.get(in_pin)
        if in_net is None or circuit.nets[in_net].fanout != 1:
            continue
        inverting = cell.name.startswith("INV")
        for value in (0, 1):
            out_fault = find((node.out_net, None, value))
            in_value = 1 - value if inverting else value
            in_fault = find((in_net, None, in_value))
            if out_fault is None or in_fault is None:
                continue
            rep = flist.representative[in_fault]
            flist.representative[out_fault] = rep
            flist.status[out_fault] = flist.status[rep]
    flist.rebuild_classes()
