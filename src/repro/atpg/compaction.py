"""Static test-set compaction.

Reverse-order fault simulation: patterns are replayed newest-first
against a fresh copy of the target fault set, and only patterns that
detect at least one still-undetected fault survive.  Deterministic
patterns generated late in ATPG tend to cover many early random-phase
detections, so replaying in reverse discards the now-redundant early
patterns — the classic cheap static compaction used after dynamic
(fill-based) compaction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.atpg.faults import Fault
from repro.atpg.fault_sim import FaultSimulator


def pack_block(sim_inputs: Sequence[str], patterns: Sequence[int]
               ) -> Dict[str, int]:
    """Pack integer-encoded patterns into per-input block words.

    Args:
        sim_inputs: Input nets in bit order (bit *j* of a pattern is the
            value of ``sim_inputs[j]``).
        patterns: Up to ``width`` patterns.

    Returns:
        Word per input net, pattern *i* in bit *i*.
    """
    words = {net: 0 for net in sim_inputs}
    for i, pattern in enumerate(patterns):
        bit = 1 << i
        for j, net in enumerate(sim_inputs):
            if (pattern >> j) & 1:
                words[net] |= bit
    return words


def reverse_order_compaction(
    fsim: FaultSimulator,
    patterns: List[int],
    targets: List[Fault],
) -> List[int]:
    """Drop patterns that detect nothing new when replayed newest-first.

    Args:
        fsim: Fault simulator over the test-mode view.
        patterns: Integer-encoded patterns, oldest first.
        targets: Faults the compacted set must still detect (class
            representatives; only in-view faults are considered).

    Returns:
        The surviving patterns, in their original relative order.
    """
    width = fsim.sim.width
    inputs = fsim.sim.view.input_nets
    remaining = {f for f in targets if fsim.in_view(f)}
    keep: List[int] = []

    reversed_patterns = list(reversed(patterns))
    for start in range(0, len(reversed_patterns), width):
        block = reversed_patterns[start:start + width]
        if not remaining:
            break
        words = pack_block(inputs, block)
        detections = fsim.run_block(words, remaining)
        # Within a block, earlier bits correspond to newer patterns.
        per_bit: Dict[int, List[Fault]] = {}
        for fault, word in detections.items():
            bit = 0
            while word:
                if word & 1:
                    per_bit.setdefault(bit, []).append(fault)
                word >>= 1
                bit += 1
        for bit, pattern in enumerate(block):
            new = [
                f for f in per_bit.get(bit, ()) if f in remaining
            ]
            if new:
                keep.append(pattern)
                remaining.difference_update(new)
    keep.reverse()
    return keep
