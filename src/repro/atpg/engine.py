"""The ATPG engine: random phase, deterministic PODEM, compaction.

The flow mirrors a production scan ATPG run:

1. **Random phase** — blocks of uniform random patterns are fault
   simulated with dropping; only patterns that are the first detector
   of some fault are kept.  This cheaply clears the easy bulk of the
   fault list.
2. **Deterministic phase** — remaining class representatives are
   targeted hardest-first with PODEM.  Each test cube's unassigned
   inputs are random filled (dynamic compaction: the fill detects many
   untargeted faults for free) and the filled patterns are fault
   simulated in blocks with dropping.
3. **Static compaction** — reverse-order replay discards patterns made
   redundant by later, denser ones.

The resulting pattern count is the paper's "SAF patterns" column; fault
coverage and efficiency come from the final fault-list census.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.atpg.compaction import pack_block, reverse_order_compaction
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import Fault, FaultList, FaultStatus, build_fault_list
from repro.atpg.podem import PodemEngine
from repro.atpg.simulator import BitSimulator
from repro.netlist.circuit import Circuit
from repro.netlist.levelize import CombView, extract_comb_view
from repro.testability.cop import compute_cop
from repro.testability.scoap import compute_scoap


@dataclass
class AtpgConfig:
    """Knobs of an ATPG run.

    Attributes:
        width: Patterns per fault-simulation block.
        random_blocks: Number of random-phase blocks.  The default (0)
            gives the *compact* flow of the paper's ATPG (Geuzebroek et
            al.): purely deterministic patterns with dynamic
            compaction.  A non-zero value adds an LBIST-style random
            phase whose useful patterns are kept — cheaper, but the
            test set is then dominated by random patterns and loses
            sensitivity to test points.
        backtrack_limit: PODEM abort threshold.
        seed: RNG seed (pattern fill and random phase).
        static_compaction: Run the reverse-order pass.
        max_deterministic: Optional cap on PODEM targets (None = all).
        flush_every: Fault-simulate (and drop) after this many pending
            deterministic patterns.  Smaller values compact harder but
            cost more simulation passes.
        abort_recovery_blocks: After the deterministic phase, spend up
            to this many random blocks on PODEM-aborted faults only;
            many aborts are search failures on random-detectable
            faults, and a handful of kept patterns recovers them.
    """

    width: int = 64
    random_blocks: int = 0
    backtrack_limit: int = 96
    seed: int = 1
    static_compaction: bool = True
    max_deterministic: Optional[int] = None
    flush_every: int = 16
    abort_recovery_blocks: int = 48
    #: Secondary targets merged onto each pattern (dynamic compaction).
    merge_limit: int = 12
    #: Secondary-target attempts per pattern before giving up.
    merge_attempts: int = 24
    #: Consecutive merge failures that close a pattern.
    merge_fail_streak: int = 6
    #: Budget multiplier of the second-chance pass over aborted faults.
    second_chance_factor: int = 6


@dataclass
class AtpgResult:
    """Outcome of an ATPG run.

    Attributes:
        patterns: Final compacted test set; each pattern is an integer
            with bit *j* carrying the value of ``input_nets[j]``.
        input_nets: Bit order of the pattern encoding.
        fault_list: Final fault census (statuses updated in place).
        random_patterns_kept: Patterns contributed by the random phase
            (before static compaction).
        deterministic_patterns: Patterns contributed by PODEM.
        aborted: Faults abandoned at the backtrack limit.
        redundant: Faults proven untestable.
    """

    patterns: List[int]
    input_nets: List[str]
    fault_list: FaultList
    random_patterns_kept: int = 0
    deterministic_patterns: int = 0
    aborted: int = 0
    redundant: int = 0

    @property
    def n_patterns(self) -> int:
        """Number of scan-capture patterns in the final test set."""
        return len(self.patterns)

    @property
    def fault_coverage(self) -> float:
        """FC after the run."""
        return self.fault_list.fault_coverage

    @property
    def fault_efficiency(self) -> float:
        """FE after the run."""
        return self.fault_list.fault_efficiency


def run_atpg(
    circuit: Circuit,
    view: Optional[CombView] = None,
    config: Optional[AtpgConfig] = None,
    fault_list: Optional[FaultList] = None,
) -> AtpgResult:
    """Generate a compact stuck-at test set for ``circuit``.

    Args:
        circuit: Netlist under test (scan-inserted or not; the test-mode
            combinational view defines controllability/observability).
        view: Pre-extracted test view (extracted when omitted).
        config: Run configuration.
        fault_list: Pre-built fault universe (built when omitted).
    """
    config = config or AtpgConfig()
    rng = random.Random(config.seed)
    if view is None:
        view = extract_comb_view(circuit, "test")
    if fault_list is None:
        fault_list = build_fault_list(circuit, view)

    sim = BitSimulator(view, width=config.width)
    fsim = FaultSimulator(sim)
    inputs = list(view.input_nets)
    n_inputs = len(inputs)

    patterns: List[int] = []
    active = [
        f for f in fault_list.targets() if fsim.in_view(f)
    ]

    # ------------------------------------------------------------- 1
    with obs.span("random_phase") as sp:
        random_kept = _random_phase(
            sim, fsim, fault_list, active, patterns, rng, config
        )
        sp.counter("patterns_kept", random_kept)

    # ------------------------------------------------------------- 2
    with obs.span("podem") as sp:
        det_count, aborted, redundant = _deterministic_phase(
            circuit, view, sim, fsim, fault_list, patterns, rng, config
        )
        sp.counter("patterns", det_count)
        sp.counter("aborted_faults", aborted)
        sp.counter("redundant_faults", redundant)

    # ------------------------------------------------------------- 2b
    with obs.span("abort_recovery") as sp:
        recovered = _abort_recovery_phase(
            sim, fsim, fault_list, patterns, rng, config
        )
        aborted -= recovered
        sp.counter("recovered_faults", recovered)

    # ------------------------------------------------------------- 3
    if config.static_compaction and patterns:
        with obs.span("static_compaction") as sp:
            sp.gauge("patterns_before", len(patterns))
            detected_targets = [
                rep
                for rep in fault_list.classes()
                if fault_list.status[rep] is FaultStatus.DETECTED
            ]
            patterns = reverse_order_compaction(fsim, patterns,
                                                detected_targets)
            sp.gauge("patterns_after", len(patterns))

    return AtpgResult(
        patterns=patterns,
        input_nets=inputs,
        fault_list=fault_list,
        random_patterns_kept=random_kept,
        deterministic_patterns=det_count,
        aborted=aborted,
        redundant=redundant,
    )


def _words_to_patterns(inputs: List[str], words: Dict[str, int],
                       count: int) -> List[int]:
    """Transpose per-net block words into integer-encoded patterns."""
    patterns = [0] * count
    for j, net in enumerate(inputs):
        word = words[net]
        if not word:
            continue
        for i in range(count):
            if (word >> i) & 1:
                patterns[i] |= 1 << j
    return patterns


def _random_phase(
    sim: BitSimulator,
    fsim: FaultSimulator,
    fault_list: FaultList,
    active: List[Fault],
    patterns: List[int],
    rng: random.Random,
    config: AtpgConfig,
) -> int:
    """Random-pattern phase with fault dropping; returns kept count."""
    inputs = list(sim.view.input_nets)
    kept_total = 0
    remaining = set(active)
    for _ in range(config.random_blocks):
        if not remaining:
            break
        words = sim.random_block(rng)
        detections = fsim.run_block(words, remaining)
        if not detections:
            continue
        # Credit each fault to its first detecting pattern.
        useful_bits: Dict[int, List[Fault]] = {}
        for fault, word in detections.items():
            first = (word & -word).bit_length() - 1
            useful_bits.setdefault(first, []).append(fault)
        block_patterns = _words_to_patterns(inputs, words, sim.width)
        for bit in sorted(useful_bits):
            patterns.append(block_patterns[bit])
            kept_total += 1
        fault_list.mark_many(detections, FaultStatus.DETECTED)
        remaining.difference_update(detections)
        # Equivalence classes may have retired other representatives.
        remaining = {
            f for f in remaining
            if fault_list.status[f] is FaultStatus.UNDETECTED
        }
    active[:] = [f for f in active if f in remaining]
    return kept_total


def _abort_recovery_phase(
    sim: BitSimulator,
    fsim: FaultSimulator,
    fault_list: FaultList,
    patterns: List[int],
    rng: random.Random,
    config: AtpgConfig,
) -> int:
    """Random patterns aimed only at PODEM-aborted faults.

    Returns the number of recovered (now detected) fault classes.
    """
    inputs = list(sim.view.input_nets)
    remaining = {
        rep
        for rep in fault_list.classes()
        if fault_list.status[rep] is FaultStatus.ABORTED
        and fsim.in_view(rep)
    }
    recovered = 0
    for _ in range(config.abort_recovery_blocks):
        if not remaining:
            break
        words = sim.random_block(rng)
        detections = fsim.run_block(words, remaining)
        if not detections:
            continue
        useful_bits: Dict[int, List[Fault]] = {}
        for fault, word in detections.items():
            first = (word & -word).bit_length() - 1
            useful_bits.setdefault(first, []).append(fault)
        block_patterns = _words_to_patterns(inputs, words, sim.width)
        for bit in sorted(useful_bits):
            patterns.append(block_patterns[bit])
        fault_list.mark_many(detections, FaultStatus.DETECTED)
        recovered += len(detections)
        remaining.difference_update(detections)
    return recovered


def _deterministic_phase(
    circuit: Circuit,
    view: CombView,
    sim: BitSimulator,
    fsim: FaultSimulator,
    fault_list: FaultList,
    patterns: List[int],
    rng: random.Random,
    config: AtpgConfig,
):
    """PODEM phase with multi-target dynamic compaction.

    Each pattern starts from the hardest remaining fault's test cube,
    then secondary targets are merged onto it (PODEM constrained to the
    cube's assignments) until a failure streak or the merge limit
    closes the pattern.  Unassigned inputs are random filled and the
    pattern block is fault simulated with dropping — so per-pattern
    fault density, the quantity test points raise, directly sets the
    final pattern count.
    """
    scoap = compute_scoap(view)
    cop = compute_cop(view)
    podem = PodemEngine(
        view, scoap=scoap, backtrack_limit=config.backtrack_limit
    )
    inputs = list(view.input_nets)
    index_of = {net: j for j, net in enumerate(inputs)}
    n_inputs = len(inputs)

    def hardness(fault: Fault) -> float:
        return cop.detection_probability(fault.net, fault.value)

    targets = sorted(
        (f for f in fault_list.targets() if fsim.in_view(f)),
        key=hardness,
    )
    if config.max_deterministic is not None:
        targets = targets[:config.max_deterministic]

    det_count = aborted = redundant = 0
    pending_block: List[int] = []

    def flush_block() -> None:
        nonlocal det_count
        if not pending_block:
            return
        words = pack_block(inputs, pending_block)
        detections = fsim.run_block(
            words,
            [f for f in fault_list.targets() if fsim.in_view(f)],
        )
        fault_list.mark_many(detections, FaultStatus.DETECTED)
        patterns.extend(pending_block)
        det_count += len(pending_block)
        # One flush = one dynamic-compaction round: the kept patterns
        # per round measure how hard the dropping simulation works.
        obs.counter("compaction_rounds")
        obs.counter("compaction_patterns", len(pending_block))
        obs.counter("dropped_by_simulation", len(detections))
        pending_block.clear()

    flush_threshold = max(1, min(config.flush_every, sim.width))
    cursor = 0
    while cursor < len(targets):
        fault = targets[cursor]
        cursor += 1
        if fault_list.status[fault] is not FaultStatus.UNDETECTED:
            continue
        cube = podem.generate(fault)
        obs.counter("backtracks", cube.backtracks)
        obs.counter("restarts", cube.restarts)
        if cube.status == "redundant":
            fault_list.mark(fault, FaultStatus.REDUNDANT)
            redundant += 1
            continue
        if cube.status == "aborted":
            fault_list.mark(fault, FaultStatus.ABORTED)
            aborted += 1
            continue
        fault_list.mark(fault, FaultStatus.DETECTED)
        cube_assign = dict(cube.assignment)

        # Merge secondary targets onto the cube (dynamic compaction).
        merged = 1
        failures = 0
        attempts = 0
        scan = cursor
        while (
            scan < len(targets)
            and merged < config.merge_limit
            and failures < config.merge_fail_streak
            and attempts < config.merge_attempts
        ):
            candidate = targets[scan]
            scan += 1
            if fault_list.status[candidate] is not FaultStatus.UNDETECTED:
                continue
            attempts += 1
            extra = podem.generate(
                candidate, fixed=cube_assign,
                restarts=2, backtrack_limit=24,
            )
            obs.counter("backtracks", extra.backtracks)
            if extra.status == "detected":
                cube_assign.update(extra.assignment)
                fault_list.mark(candidate, FaultStatus.DETECTED)
                merged += 1
                failures = 0
            else:
                failures += 1
        if merged > 1:
            obs.counter("merged_targets", merged - 1)

        # Random fill of the remaining inputs.
        pattern = rng.getrandbits(n_inputs) if n_inputs else 0
        for net, value in cube_assign.items():
            j = index_of[net]
            if value:
                pattern |= 1 << j
            else:
                pattern &= ~(1 << j)
        pending_block.append(pattern)
        if len(pending_block) >= flush_threshold:
            flush_block()
    flush_block()

    # Second chance: re-target aborted faults with a much larger search
    # budget.  Aborts are mostly heuristic lock-in, not hardness; a
    # deeper randomised search recovers a large share at bounded cost.
    if config.second_chance_factor > 1:
        retry = [
            rep for rep in fault_list.classes()
            if fault_list.status[rep] is FaultStatus.ABORTED
            and fsim.in_view(rep)
        ]
        for fault in retry:
            if fault_list.status[fault] is not FaultStatus.ABORTED:
                continue
            cube = podem.generate(
                fault,
                restarts=2 * config.second_chance_factor,
                backtrack_limit=(
                    config.backtrack_limit * config.second_chance_factor
                ),
            )
            obs.counter("backtracks", cube.backtracks)
            obs.counter("restarts", cube.restarts)
            obs.counter("second_chance_targets")
            if cube.status == "redundant":
                fault_list.mark(fault, FaultStatus.REDUNDANT)
                redundant += 1
                aborted -= 1
                continue
            if cube.status != "detected":
                continue
            aborted -= 1
            fault_list.mark(fault, FaultStatus.DETECTED)
            pattern = rng.getrandbits(n_inputs) if n_inputs else 0
            for net, value in cube.assignment.items():
                j = index_of[net]
                if value:
                    pattern |= 1 << j
                else:
                    pattern &= ~(1 << j)
            pending_block.append(pattern)
            if len(pending_block) >= flush_threshold:
                flush_block()
        flush_block()
    return det_count, aborted, redundant
