"""PODEM deterministic test-pattern generation.

Classic PODEM (Goel) over the test-mode combinational view: objectives
are justified by backtracing to primary/pseudo-primary inputs only,
with five-valued reasoning carried as two three-valued machines (good
and faulty).  The search is confined to the fault's *region* — the
forward cone of the fault site plus the backward support of that cone —
and implication evaluates compiled, table-driven three-valued node
functions over flat value arrays (see :mod:`repro.atpg.threeval`),
which keeps per-decision cost at a few microseconds per region node.

Outcomes per fault: a test cube (partial input assignment guaranteed to
detect the fault under any fill), a redundancy proof (search space
exhausted), or an abort (backtrack limit), mirroring the detected /
redundant / aborted classification behind the paper's fault-efficiency
numbers.
"""

from __future__ import annotations

import heapq
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.atpg.faults import Fault
from repro.atpg.threeval import (
    ONE,
    X,
    ZERO,
    compile_node3,
    decode,
    encode,
    eval3_encoded,
)
from repro.library.logic import And, Const, LogicExpr, Mux, Not, Or, Var, Xor
from repro.netlist.levelize import CombView
from repro.netlist.net import PORT
from repro.testability.scoap import ScoapResult


@dataclass
class TestCube:
    """Result of one PODEM run.

    Attributes:
        status: ``"detected"``, ``"redundant"`` or ``"aborted"``.
        assignment: Input-net assignment (only for detected faults);
            unassigned inputs may be filled arbitrarily.
        backtracks: Number of backtracks spent.
        restarts: Number of search restarts consumed (1 = the first,
            fully deterministic search sufficed).
    """

    status: str
    assignment: Dict[str, int]
    backtracks: int = 0
    restarts: int = 0


class PodemEngine:
    """PODEM test generator bound to one combinational view.

    Chronological backtracking alone locks into failing subspaces on
    reconvergent logic, so the per-fault budget is split across several
    *restarts*: the first runs the deterministic SCOAP-guided
    heuristics, later ones randomise frontier and backtrace
    tie-breaking.  Restarts recover most would-be aborts at a fraction
    of the cost of a deep single search.

    Args:
        view: Test-mode combinational view.
        scoap: SCOAP measures used as backtrace guidance (computed on
            demand when omitted).
        backtrack_limit: Total backtrack budget per fault.
        restarts: Number of search restarts sharing the budget.
    """

    def __init__(self, view: CombView, scoap: Optional[ScoapResult] = None,
                 backtrack_limit: int = 64, restarts: int = 4):
        self.view = view
        self.backtrack_limit = backtrack_limit
        self.restarts = max(1, restarts)
        self._rng = random.Random(0xDF7)
        self._rand_active = False
        if scoap is None:
            from repro.testability.scoap import compute_scoap
            scoap = compute_scoap(view)
        self.scoap = scoap

        # Net index space.
        self.nidx: Dict[str, int] = {}
        for net in view.input_nets:
            self.nidx.setdefault(net, len(self.nidx))
        for net in view.constants:
            self.nidx.setdefault(net, len(self.nidx))
        for node in view.nodes:
            self.nidx.setdefault(node.out_net, len(self.nidx))
        self.n_nets = len(self.nidx)

        # Per-node compiled data, aligned with view.nodes order.
        self.nodes = view.nodes
        self.node_out: List[int] = []
        self.node_fn3 = []
        self.node_level: List[int] = []
        self.readers_pos: Dict[int, List[int]] = {}
        self.pos_of_outnet: Dict[str, int] = {}
        for pos, node in enumerate(view.nodes):
            out = self.nidx[node.out_net]
            self.node_out.append(out)
            self.node_level.append(node.level)
            self.pos_of_outnet[node.out_net] = pos
            pin_index = {
                pin: self.nidx[net] for pin, net in node.pin_nets.items()
            }
            self.node_fn3.append(compile_node3(node.expr, pin_index))
            for idx in set(pin_index.values()):
                self.readers_pos.setdefault(idx, []).append(pos)

        self.input_idx: Set[int] = {self.nidx[n] for n in view.input_nets}
        self.obs_idx: Set[int] = {
            self.nidx[n] for n in view.output_nets if n in self.nidx
        }
        self.observable_sinks = set(view.output_refs)

        # Template value array with constants pre-applied.
        self._template = bytearray(self.n_nets)
        for net, value in view.constants.items():
            self._template[self.nidx[net]] = encode(value)

    # ------------------------------------------------------------------
    # Region extraction
    # ------------------------------------------------------------------
    def _region(self, site: int) -> Tuple[List[int], Set[int]]:
        """Forward cone + backward support (node positions), observables."""
        forward_nets: Set[int] = {site}
        stack = [site]
        while stack:
            idx = stack.pop()
            for pos in self.readers_pos.get(idx, ()):
                out = self.node_out[pos]
                if out not in forward_nets:
                    forward_nets.add(out)
                    stack.append(out)
        positions: Set[int] = set()
        stack2 = list(forward_nets)
        seen = set(stack2)
        while stack2:
            idx = stack2.pop()
            net_name = self._name_of(idx)
            pos = self.pos_of_outnet.get(net_name)
            if pos is None or pos in positions:
                continue
            positions.add(pos)
            for pin_net in set(self.nodes[pos].pin_nets.values()):
                pidx = self.nidx[pin_net]
                if pidx not in seen:
                    seen.add(pidx)
                    stack2.append(pidx)
        ordered = sorted(positions, key=lambda p: self.node_level[p])
        return ordered, forward_nets & self.obs_idx

    def _name_of(self, idx: int) -> str:
        if not hasattr(self, "_names"):
            names = [""] * self.n_nets
            for net, i in self.nidx.items():
                names[i] = net
            self._names = names
        return self._names[idx]

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------
    def generate(self, fault: Fault,
                 fixed: Optional[Dict[str, int]] = None,
                 restarts: Optional[int] = None,
                 backtrack_limit: Optional[int] = None) -> TestCube:
        """Attempt to generate a test for ``fault``.

        Runs up to :attr:`restarts` searches; the first is fully
        deterministic, later ones randomise tie-breaking.  A redundancy
        proof from any restart is final (the search space, not the
        heuristics, was exhausted).

        Args:
            fault: Target fault.
            fixed: Input-net values that must be respected (dynamic
                compaction onto an existing test cube).  When the
                search space is exhausted *under constraints* the
                status is ``"incompatible"`` rather than
                ``"redundant"`` — the fault may still be testable on a
                fresh pattern.
            restarts: Override the engine's restart count.
            backtrack_limit: Override the engine's backtrack budget.
        """
        n_restarts = max(1, restarts if restarts is not None
                         else self.restarts)
        limit = (
            backtrack_limit if backtrack_limit is not None
            else self.backtrack_limit
        )
        budget = max(1, limit // n_restarts)
        spent = 0
        result = TestCube(status="aborted", assignment={})
        for attempt in range(n_restarts):
            self._rand_active = attempt > 0
            # Stable per-(fault, attempt) seed: ``hash()`` on strings is
            # randomised per process (PYTHONHASHSEED), which would make
            # pool workers diverge from a serial run bit for bit.
            self._rng.seed(zlib.crc32(repr(
                (fault.net, fault.sink, fault.value, attempt)
            ).encode("utf-8")))
            result = self._search(fault, budget, fixed)
            spent += result.backtracks
            result.backtracks = spent
            result.restarts = attempt + 1
            if result.status in ("detected", "redundant"):
                if result.status == "redundant" and fixed:
                    result.status = "incompatible"
                return result
        return result

    def _search(self, fault: Fault, backtrack_budget: int,
                fixed: Optional[Dict[str, int]] = None) -> TestCube:
        """One PODEM search with the current heuristic mode.

        Implication is incremental: assignments propagate event-driven
        through the fault region, every value change is recorded on a
        trail, and backtracking unwinds the trail to the decision's
        mark (DPLL-style), so each decision costs only its own cone
        instead of a full region recompute.
        """
        site = self.nidx.get(fault.net)
        if site is None:
            return TestCube(status="aborted", assignment={})
        region, region_obs = self._region(site)
        region_set = set(region)
        stuck_enc = encode(fault.value)
        stem = fault.sink is None
        branch_observed = fault.sink is not None and (
            (fault.net, fault.sink) in self.observable_sinks
            or fault.sink[0] == PORT
        )
        branch_pos: Optional[int] = None
        branch_pin: Optional[str] = None
        if fault.sink is not None and not branch_observed:
            inst, pin = fault.sink
            for pos in self.readers_pos.get(site, ()):
                node = self.nodes[pos]
                if node.inst.name == inst and node.pin_nets.get(pin) == fault.net:
                    branch_pos = pos
                    branch_pin = pin
                    break
            if branch_pos is None:
                return TestCube(status="aborted", assignment={})

        vg = bytearray(self._template)
        vf = bytearray(self._template)
        if fixed:
            for net, value in fixed.items():
                idx = self.nidx.get(net)
                if idx is None:
                    continue
                enc = ONE if value else ZERO
                vg[idx] = enc
                vf[idx] = enc
        if stem:
            # The faulty machine sees the stuck value regardless of what
            # (if anything) the good machine drives there.
            vf[site] = stuck_enc

        node_out = self.node_out
        node_fn3 = self.node_fn3
        levels = self.node_level

        def eval_node(pos: int) -> Tuple[int, int]:
            g = node_fn3[pos](vg)
            if pos == branch_pos:
                f = self._eval_branch(pos, vf, branch_pin, stuck_enc)
            else:
                f = node_fn3[pos](vf)
            if stem and node_out[pos] == site:
                f = stuck_enc
            return g, f

        # Base implication over the whole region (constants resolve).
        for pos in region:
            out = node_out[pos]
            vg[out], vf[out] = eval_node(pos)

        trail: List[Tuple[int, int, int]] = []  # (idx, old_g, old_f)

        def propagate(start_idx: int) -> None:
            heap: List[Tuple[int, int]] = []
            queued = set()
            for pos in self.readers_pos.get(start_idx, ()):
                if pos in region_set:
                    heapq.heappush(heap, (levels[pos], pos))
                    queued.add(pos)
            while heap:
                _, pos = heapq.heappop(heap)
                queued.discard(pos)
                out = node_out[pos]
                g, f = eval_node(pos)
                if g == vg[out] and f == vf[out]:
                    continue
                trail.append((out, vg[out], vf[out]))
                vg[out] = g
                vf[out] = f
                for reader in self.readers_pos.get(out, ()):
                    if reader in region_set and reader not in queued:
                        heapq.heappush(heap, (levels[reader], reader))
                        queued.add(reader)

        def assign(idx: int, value: int) -> None:
            enc = ONE if value else ZERO
            trail.append((idx, vg[idx], vf[idx]))
            vg[idx] = enc
            vf[idx] = stuck_enc if (stem and idx == site) else enc
            propagate(idx)

        def undo_to(mark: int) -> None:
            while len(trail) > mark:
                idx, old_g, old_f = trail.pop()
                vg[idx] = old_g
                vf[idx] = old_f

        # Decisions: [net_idx, value, flipped, trail_mark].
        decisions: List[List[int]] = []
        backtracks = 0

        while True:
            conflict, detected = self._classify(
                vg, vf, site, stuck_enc, branch_observed, region, region_obs,
                branch_pos,
            )
            if detected:
                return TestCube(
                    status="detected",
                    assignment={
                        self._name_of(d[0]): d[1] for d in decisions
                    },
                    backtracks=backtracks,
                )
            target: Optional[Tuple[int, int]] = None
            if not conflict:
                objective = self._objective(
                    vg, vf, site, stuck_enc, region, branch_pos, branch_pin
                )
                if objective is None:
                    conflict = True
                else:
                    target = self._backtrace(objective, vg)
                    conflict = target is None
            if conflict:
                while decisions and decisions[-1][2]:
                    undo_to(decisions.pop()[3])
                if not decisions:
                    return TestCube(
                        status="redundant",
                        assignment={},
                        backtracks=backtracks,
                    )
                backtracks += 1
                if backtracks > backtrack_budget:
                    return TestCube(
                        status="aborted",
                        assignment={},
                        backtracks=backtracks,
                    )
                last = decisions[-1]
                undo_to(last[3])
                last[1] ^= 1
                last[2] = 1
                assign(last[0], last[1])
                continue
            idx, value = target
            decisions.append([idx, value, 0, len(trail)])
            assign(idx, value)

    def _eval_branch(self, pos: int, vf: bytearray,
                     branch_pin: str, stuck_enc: int) -> int:
        """Evaluate the branch-faulted node with the pin forced."""
        node = self.nodes[pos]
        pin_values = {
            pin: (stuck_enc if pin == branch_pin else vf[self.nidx[net]])
            for pin, net in node.pin_nets.items()
        }
        return eval3_encoded(node.expr, pin_values)

    # ------------------------------------------------------------------
    # Search-state classification
    # ------------------------------------------------------------------
    def _classify(
        self,
        vg: bytearray,
        vf: bytearray,
        site: int,
        stuck_enc: int,
        branch_observed: bool,
        region: List[int],
        region_obs: Set[int],
        branch_pos: Optional[int],
    ) -> Tuple[bool, bool]:
        """Return ``(conflict, detected)`` for the current state."""
        site_g = vg[site]
        if site_g == stuck_enc:
            return True, False  # activation impossible on this path
        activated = site_g != X
        if activated and branch_observed:
            return False, True
        for idx in region_obs:
            g, f = vg[idx], vf[idx]
            if g != X and f != X and g != f:
                return False, True
        if not activated:
            return False, False  # keep justifying activation
        frontier = self._d_frontier(vg, vf, region, branch_pos, activated)
        if not frontier:
            return True, False
        if not self._x_path(frontier, vg, vf):
            return True, False
        return False, False

    def _d_frontier(self, vg: bytearray, vf: bytearray, region: List[int],
                    branch_pos: Optional[int],
                    activated: bool) -> List[int]:
        """Node positions with a D input and an undetermined output.

        For branch faults the D lives on the faulted *pin* rather than
        on any net, so the faulted node itself joins the frontier as
        soon as the fault is activated but its output is unresolved.
        """
        frontier = []
        node_out = self.node_out
        for pos in region:
            out = node_out[pos]
            if vg[out] != X and vf[out] != X:
                continue
            if pos == branch_pos and activated:
                frontier.append(pos)
                continue
            for net in self.nodes[pos].pin_nets.values():
                idx = self.nidx[net]
                g, f = vg[idx], vf[idx]
                if g != X and f != X and g != f:
                    frontier.append(pos)
                    break
        return frontier

    def _x_path(self, frontier: List[int], vg: bytearray,
                vf: bytearray) -> bool:
        """True when some frontier node reaches an observable via X nets."""
        seen: Set[int] = set()
        stack = [self.node_out[pos] for pos in frontier]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            if vg[idx] != X and vf[idx] != X and vg[idx] == vf[idx]:
                continue  # blocked: resolved identically in both machines
            if idx in self.obs_idx:
                return True
            for pos in self.readers_pos.get(idx, ()):
                out = self.node_out[pos]
                if out not in seen:
                    stack.append(out)
        return False

    # ------------------------------------------------------------------
    # Objective selection
    # ------------------------------------------------------------------
    def _objective(
        self,
        vg: bytearray,
        vf: bytearray,
        site: int,
        stuck_enc: int,
        region: List[int],
        branch_pos: Optional[int],
        branch_pin: Optional[str],
    ) -> Optional[Tuple[int, int]]:
        """Pick the next (net index, value) goal."""
        if vg[site] == X:
            return site, 0 if stuck_enc == ONE else 1
        frontier = self._d_frontier(vg, vf, region, branch_pos, True)
        if not frontier:
            return None
        frontier.sort(
            key=lambda p: self.scoap.co.get(self.nodes[p].out_net, 1e18)
        )
        if self._rand_active and len(frontier) > 1:
            self._rng.shuffle(frontier)
        for pos in frontier:
            obj = self._propagation_objective(
                pos, vg, vf,
                stuck_enc if pos == branch_pos else None,
                branch_pin if pos == branch_pos else None,
            )
            if obj is not None:
                return obj
        return None

    def _propagation_objective(
        self, pos: int, vg: bytearray, vf: bytearray,
        forced_enc: Optional[int] = None,
        forced_pin: Optional[str] = None,
    ) -> Optional[Tuple[int, int]]:
        """Choose an X side-input value that un-blocks propagation.

        For the branch-faulted node, the faulty machine is evaluated
        with the faulted pin forced to the stuck value.
        """
        node = self.nodes[pos]
        x_pins = [
            (pin, net, self.nidx[net])
            for pin, net in node.pin_nets.items()
            if vg[self.nidx[net]] == X
            and net not in self.view.constants
            and pin != forced_pin
        ]
        if not x_pins:
            return None
        fn = self.node_fn3[pos]

        def eval_faulty() -> int:
            if forced_pin is None:
                return fn(vf)
            return eval3_encoded(node.expr, {
                p: (forced_enc if p == forced_pin else vf[self.nidx[n]])
                for p, n in node.pin_nets.items()
            })

        # Look ahead: does assigning pin=v turn the output into a D?
        for pin, net, idx in x_pins:
            for enc in (ONE, ZERO):
                old_g, old_f = vg[idx], vf[idx]
                vg[idx] = enc
                vf[idx] = enc
                g = fn(vg)
                f = eval_faulty()
                vg[idx] = old_g
                vf[idx] = old_f
                if g != X and f != X and g != f:
                    return idx, 1 if enc == ONE else 0
        # Fallback: drive the easiest X input to its easier value.
        pin, net, idx = min(
            x_pins,
            key=lambda pn: min(
                self.scoap.cc0.get(pn[1], 1e18),
                self.scoap.cc1.get(pn[1], 1e18),
            ),
        )
        easier = (
            0
            if self.scoap.cc0.get(net, 1e18) <= self.scoap.cc1.get(net, 1e18)
            else 1
        )
        return idx, easier

    # ------------------------------------------------------------------
    # Backtrace
    # ------------------------------------------------------------------
    def _backtrace(self, objective: Tuple[int, int],
                   vg: bytearray) -> Optional[Tuple[int, int]]:
        """Walk an objective back to an unassigned input net."""
        idx, value = objective
        for _ in range(100000):
            if idx in self.input_idx:
                if vg[idx] != X:
                    return None  # already assigned: cannot justify
                return idx, value
            pos = self.pos_of_outnet.get(self._name_of(idx))
            if pos is None:
                return None  # constant or unreachable net
            node = self.nodes[pos]
            step = self._backtrace_expr(node.expr, value, node.pin_nets, vg)
            if step is None:
                return None
            pin, value = step
            idx = self.nidx[node.pin_nets[pin]]
        raise RuntimeError("backtrace did not terminate")

    def _backtrace_expr(
        self,
        expr: LogicExpr,
        value: int,
        pin_nets: Dict[str, str],
        vg: bytearray,
    ) -> Optional[Tuple[str, int]]:
        """Choose an X pin and target value justifying ``value``."""

        def pin_val(pin: str) -> int:
            return vg[self.nidx[pin_nets[pin]]]

        def is_x(e: LogicExpr) -> bool:
            if isinstance(e, Var):
                return pin_val(e.pin) == X
            if isinstance(e, Const):
                return False
            if isinstance(e, Not):
                return is_x(e.arg)
            if isinstance(e, (And, Or)):
                return any(is_x(a) for a in e.args)
            if isinstance(e, Xor):
                return is_x(e.a) or is_x(e.b)
            if isinstance(e, Mux):
                return is_x(e.sel) or is_x(e.a) or is_x(e.b)
            raise TypeError(type(e).__name__)

        def cc(e: LogicExpr, v: int) -> float:
            if isinstance(e, Var):
                table = self.scoap.cc1 if v else self.scoap.cc0
                return table.get(pin_nets[e.pin], 1e18)
            return 1.0  # internal operators: flat cost

        def value_of(e: LogicExpr) -> int:
            return eval3_encoded(
                e, {p: pin_val(p) for p in e.support()}
            )

        if isinstance(expr, Var):
            return expr.pin, value
        if isinstance(expr, Const):
            return None
        if isinstance(expr, Not):
            return self._backtrace_expr(expr.arg, 1 - value, pin_nets, vg)
        if isinstance(expr, (And, Or)):
            is_and = isinstance(expr, And)
            controlling = 0 if is_and else 1
            xs = [a for a in expr.args if is_x(a)]
            if not xs:
                return None
            randomize = self._rand_active and len(xs) > 1
            if value == (1 if is_and else 0):
                child = (
                    self._rng.choice(xs)
                    if randomize
                    else max(xs, key=lambda a: cc(a, 1 - controlling))
                )
                return self._backtrace_expr(
                    child, 1 - controlling, pin_nets, vg
                )
            child = (
                self._rng.choice(xs)
                if randomize
                else min(xs, key=lambda a: cc(a, controlling))
            )
            return self._backtrace_expr(child, controlling, pin_nets, vg)
        if isinstance(expr, Xor):
            a_x, b_x = is_x(expr.a), is_x(expr.b)
            a_val = decode(value_of(expr.a))
            b_val = decode(value_of(expr.b))
            if a_x and b_val is not None:
                return self._backtrace_expr(
                    expr.a, value ^ b_val, pin_nets, vg
                )
            if b_x and a_val is not None:
                return self._backtrace_expr(
                    expr.b, value ^ a_val, pin_nets, vg
                )
            if a_x:
                return self._backtrace_expr(expr.a, value, pin_nets, vg)
            if b_x:
                return self._backtrace_expr(expr.b, value, pin_nets, vg)
            return None
        if isinstance(expr, Mux):
            s_val = decode(value_of(expr.sel))
            if s_val is not None:
                branch = expr.b if s_val else expr.a
                return self._backtrace_expr(branch, value, pin_nets, vg)
            a_val = decode(value_of(expr.a))
            b_val = decode(value_of(expr.b))
            if a_val == value and is_x(expr.sel):
                return self._backtrace_expr(expr.sel, 0, pin_nets, vg)
            if b_val == value and is_x(expr.sel):
                return self._backtrace_expr(expr.sel, 1, pin_nets, vg)
            if is_x(expr.a):
                return self._backtrace_expr(expr.a, value, pin_nets, vg)
            if is_x(expr.sel):
                return self._backtrace_expr(expr.sel, 1, pin_nets, vg)
            if is_x(expr.b):
                return self._backtrace_expr(expr.b, value, pin_nets, vg)
            return None
        raise TypeError(f"unsupported expression node {type(expr).__name__}")
