"""Bit-parallel two-valued logic simulation of a combinational view.

The good machine is *compiled*: the whole levelised netlist is rendered
to one Python function evaluating every node with plain integer bitwise
operations, so a single call simulates ``width`` patterns through the
entire circuit.  Patterns are packed one-per-bit into Python integers,
which support arbitrary widths — 64 by default, matching classic PPSFP.

Per-node compiled evaluators are also exposed; the fault simulator uses
them for event-driven propagation of faulty values.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

from repro.library.logic import And, Const, LogicExpr, Mux, Not, Or, Var, Xor
from repro.netlist.levelize import CombNode, CombView


def render_expr(expr: LogicExpr, pin_code: Dict[str, str],
                mask_name: str = "m") -> str:
    """Render an expression tree to Python bitwise source code.

    Args:
        expr: Expression to render.
        pin_code: Source snippet per input pin (e.g. ``{"A": "v[3]"}``).
        mask_name: Name of the width mask variable in scope; inversions
            are masked to keep values canonical non-negative integers.
    """
    if isinstance(expr, Var):
        return pin_code[expr.pin]
    if isinstance(expr, Const):
        return mask_name if expr.value else "0"
    if isinstance(expr, Not):
        return f"(~{render_expr(expr.arg, pin_code, mask_name)} & {mask_name})"
    if isinstance(expr, And):
        return "(" + " & ".join(
            render_expr(a, pin_code, mask_name) for a in expr.args
        ) + ")"
    if isinstance(expr, Or):
        return "(" + " | ".join(
            render_expr(a, pin_code, mask_name) for a in expr.args
        ) + ")"
    if isinstance(expr, Xor):
        a = render_expr(expr.a, pin_code, mask_name)
        b = render_expr(expr.b, pin_code, mask_name)
        return f"({a} ^ {b})"
    if isinstance(expr, Mux):
        s = render_expr(expr.sel, pin_code, mask_name)
        a = render_expr(expr.a, pin_code, mask_name)
        b = render_expr(expr.b, pin_code, mask_name)
        return f"(({a} & ~{s}) | ({b} & {s}))"
    raise TypeError(f"unsupported expression node {type(expr).__name__}")


class BitSimulator:
    """Compiled bit-parallel simulator for one combinational view.

    Args:
        view: The combinational view to simulate.
        width: Patterns per simulation call (bits per word).
    """

    def __init__(self, view: CombView, width: int = 64):
        self.view = view
        self.width = width
        self.mask = (1 << width) - 1

        # Net index space: inputs, constants, then node outputs.
        self.net_index: Dict[str, int] = {}
        for net in view.input_nets:
            self.net_index[net] = len(self.net_index)
        for net in view.constants:
            if net not in self.net_index:
                self.net_index[net] = len(self.net_index)
        for node in view.nodes:
            if node.out_net not in self.net_index:
                self.net_index[node.out_net] = len(self.net_index)

        self.n_nets = len(self.net_index)
        self._const_words = {
            self.net_index[net]: (self.mask if val else 0)
            for net, val in view.constants.items()
        }
        self._good_fn = self._compile_good()
        self.node_fns: List[Callable[[Callable[[int], int]], int]] = [
            self._compile_node(node) for node in view.nodes
        ]

    # ------------------------------------------------------------------
    def _compile_good(self) -> Callable[[List[int]], None]:
        """Compile the whole view into one in-place evaluation function."""
        lines = ["def _sim(v, m):"]
        if not self.view.nodes:
            lines.append("    pass")
        for node in self.view.nodes:
            pin_code = {
                pin: f"v[{self.net_index[net]}]"
                for pin, net in node.pin_nets.items()
            }
            out = self.net_index[node.out_net]
            lines.append(
                f"    v[{out}] = {render_expr(node.expr, pin_code)}"
            )
        namespace: Dict[str, object] = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted source
        return namespace["_sim"]  # type: ignore[return-value]

    def _compile_node(self, node: CombNode
                      ) -> Callable[[Callable[[int], int]], int]:
        """Compile one node into ``fn(get) -> word``.

        ``get`` maps a net index to its current word, letting the fault
        simulator overlay faulty values without copying the good state.
        """
        pin_code = {
            pin: f"g({self.net_index[net]})"
            for pin, net in node.pin_nets.items()
        }
        src = f"lambda g, m={self.mask}: {render_expr(node.expr, pin_code)}"
        return eval(src)  # noqa: S307 - trusted source

    # ------------------------------------------------------------------
    def run(self, input_words: Dict[str, int]) -> List[int]:
        """Simulate one block of patterns.

        Args:
            input_words: Word per controllable input net; missing inputs
                default to 0.

        Returns:
            Word per net, indexed by :attr:`net_index`.
        """
        values = [0] * self.n_nets
        for idx, word in self._const_words.items():
            values[idx] = word
        for net, word in input_words.items():
            values[self.net_index[net]] = word & self.mask
        self._good_fn(values, self.mask)
        return values

    def random_block(self, rng: random.Random) -> Dict[str, int]:
        """Draw one block of uniform random patterns."""
        return {
            net: rng.getrandbits(self.width)
            for net in self.view.input_nets
        }

    def patterns_to_words(
        self, patterns: Sequence[Dict[str, int]],
        offset: int = 0,
    ) -> Dict[str, int]:
        """Pack per-pattern bit assignments into block words.

        Args:
            patterns: Up to ``width`` pattern dictionaries mapping input
                net to 0/1 (missing inputs are 0).
            offset: Bit position of the first pattern in the words.
        """
        if offset + len(patterns) > self.width:
            raise ValueError("too many patterns for one block")
        words: Dict[str, int] = {net: 0 for net in self.view.input_nets}
        for bit, pattern in enumerate(patterns):
            for net, value in pattern.items():
                if value:
                    words[net] |= 1 << (bit + offset)
        return words

    def outputs_of(self, values: List[int]) -> Dict[str, int]:
        """Extract observable-net words from a simulation result."""
        return {
            net: values[self.net_index[net]]
            for net in self.view.output_nets
        }
