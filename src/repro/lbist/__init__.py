"""Logic BIST: LFSR pattern generation, MISR compaction, the engine."""

from repro.lbist.engine import (
    LbistConfig,
    LbistResult,
    coverage_at,
    run_lbist,
)
from repro.lbist.dlbist import DlbistConfig, DlbistResult, run_dlbist
from repro.lbist.lfsr import LFSR, PRIMITIVE_TAPS
from repro.lbist.misr import MISR, signature_of

__all__ = [
    "DlbistConfig",
    "DlbistResult",
    "LFSR",
    "run_dlbist",
    "LbistConfig",
    "LbistResult",
    "MISR",
    "PRIMITIVE_TAPS",
    "coverage_at",
    "run_lbist",
    "signature_of",
]
