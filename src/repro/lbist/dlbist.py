"""Deterministic logic BIST by bit-flipping (TPI + DLBIST, Section 5).

The paper closes by recommending the combination of TPI with
*deterministic* LBIST: "The deterministic pattern generator can be
added as a shell around the circuit layout, and it provides that still
complete fault coverage is achieved" — referencing the authors' own
bit-flipping DLBIST scheme (Vranken, Meister, Wunderlich, ETW'02).

The scheme: an LFSR feeds pseudo-random scan loads; a small bit-flip
function (BFF) observes the pattern counter and inverts selected scan
bits so that chosen pseudo-random patterns *become* deterministic test
cubes for the random-resistant faults.  The BFF's silicon cost grows
with the number of embedded care bits that disagree with the underlying
pseudo-random pattern — so anything that shrinks the deterministic
top-up (test points!) shrinks the DLBIST hardware.  That interplay is
exactly what this module makes measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.atpg.compaction import pack_block
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import FaultStatus, build_fault_list
from repro.atpg.podem import PodemEngine
from repro.atpg.simulator import BitSimulator
from repro.lbist.lfsr import LFSR
from repro.netlist.circuit import Circuit
from repro.netlist.levelize import extract_comb_view

#: Estimated BFF area per flipped bit, in um^2 (an XOR plus its share
#: of the pattern-count decode, 130 nm-class).
BFF_AREA_PER_FLIP_UM2 = 24.0

#: Fixed BFF overhead (counter compare, control), in um^2.
BFF_AREA_FIXED_UM2 = 450.0


@dataclass
class DlbistConfig:
    """Knobs of a DLBIST session.

    Attributes:
        n_patterns: Pseudo-random pattern budget.
        lfsr_width: Pattern generator width.
        seed: LFSR seed.
        backtrack_limit: PODEM budget for the deterministic top-up.
        max_cubes: Cap on embedded deterministic cubes.
    """

    n_patterns: int = 2048
    lfsr_width: int = 32
    seed: int = 0xACE1
    backtrack_limit: int = 48
    max_cubes: int = 256


@dataclass
class DlbistResult:
    """Outcome of one DLBIST session.

    Attributes:
        pseudo_random_coverage: FC after the pseudo-random phase alone.
        final_coverage: FC after bit-flipped deterministic embedding.
        n_cubes: Deterministic cubes embedded.
        n_flips: Total scan bits flipped by the BFF.
        bff_area_um2: Estimated bit-flip-function silicon area.
        patterns: The final pattern set (flipped patterns included).
    """

    pseudo_random_coverage: float = 0.0
    final_coverage: float = 0.0
    n_cubes: int = 0
    n_flips: int = 0
    bff_area_um2: float = 0.0
    patterns: List[int] = field(default_factory=list)

    @property
    def flips_per_cube(self) -> float:
        """Average BFF work per embedded cube."""
        return self.n_flips / self.n_cubes if self.n_cubes else 0.0


def _hamming_on_cares(pattern: int, care_mask: int, care_value: int) -> int:
    """Disagreeing care bits between a pattern and a cube."""
    return bin((pattern & care_mask) ^ care_value).count("1")


def run_dlbist(circuit: Circuit,
               config: Optional[DlbistConfig] = None) -> DlbistResult:
    """Run bit-flipping DLBIST on a scan-inserted circuit.

    Phase 1 applies the pseudo-random budget with fault dropping.
    Phase 2 generates deterministic cubes for the surviving faults and
    embeds each into the pseudo-random pattern that needs the fewest
    bit flips; the flip count prices the BFF hardware.

    Returns:
        Coverage before/after embedding and the BFF cost model.
    """
    config = config or DlbistConfig()
    view = extract_comb_view(circuit, "test")
    sim = BitSimulator(view)
    fsim = FaultSimulator(sim)
    fault_list = build_fault_list(circuit, view)
    inputs = list(view.input_nets)
    n_inputs = len(inputs)
    index_of = {net: j for j, net in enumerate(inputs)}

    # Phase 1: pseudo-random patterns with dropping.
    lfsr = LFSR(width=config.lfsr_width, seed=config.seed)
    patterns: List[int] = []
    remaining = {f for f in fault_list.targets() if fsim.in_view(f)}
    applied = 0
    while applied < config.n_patterns:
        block_size = min(sim.width, config.n_patterns - applied)
        block = lfsr.patterns(n_inputs, block_size)
        patterns.extend(block)
        words = pack_block(inputs, block)
        detections = fsim.run_block(words, remaining)
        fault_list.mark_many(detections, FaultStatus.DETECTED)
        remaining.difference_update(detections)
        remaining = {
            f for f in remaining
            if fault_list.status[f] is FaultStatus.UNDETECTED
        }
        applied += block_size

    result = DlbistResult(
        pseudo_random_coverage=fault_list.fault_coverage,
    )

    # Phase 2: deterministic top-up, embedded by bit flipping.
    podem = PodemEngine(view, backtrack_limit=config.backtrack_limit)
    flippable = list(range(len(patterns)))
    for fault in sorted(remaining, key=str):
        if result.n_cubes >= config.max_cubes:
            break
        if fault_list.status[fault] is not FaultStatus.UNDETECTED:
            continue
        cube = podem.generate(fault)
        if cube.status != "detected":
            continue
        care_mask = 0
        care_value = 0
        for net, value in cube.assignment.items():
            bit = 1 << index_of[net]
            care_mask |= bit
            if value:
                care_value |= bit
        # Embed into the nearest pseudo-random pattern.
        best_idx = min(
            flippable,
            key=lambda i: _hamming_on_cares(
                patterns[i], care_mask, care_value
            ),
        )
        flips = _hamming_on_cares(patterns[best_idx], care_mask,
                                  care_value)
        patterns[best_idx] = (
            (patterns[best_idx] & ~care_mask) | care_value
        )
        result.n_cubes += 1
        result.n_flips += flips
        # Fault-simulate the flipped pattern: it detects the target and
        # usually more.
        words = pack_block(inputs, [patterns[best_idx]])
        detections = fsim.run_block(words, remaining)
        fault_list.mark(fault, FaultStatus.DETECTED)
        fault_list.mark_many(detections, FaultStatus.DETECTED)
        remaining = {
            f for f in remaining
            if fault_list.status[f] is FaultStatus.UNDETECTED
        }

    result.final_coverage = fault_list.fault_coverage
    result.bff_area_um2 = (
        BFF_AREA_FIXED_UM2 + BFF_AREA_PER_FLIP_UM2 * result.n_flips
    )
    result.patterns = patterns
    return result
