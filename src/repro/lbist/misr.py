"""Multiple-input signature register (MISR) response compaction.

LBIST does not ship responses off-chip: scan-out streams are folded
into a MISR whose final state (the *signature*) is compared against the
fault-free value.  This model implements the standard Galois-style MISR
over the same primitive polynomials as the LFSR, plus the textbook
aliasing-probability estimate ``2^-width``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lbist.lfsr import PRIMITIVE_TAPS


class MISR:
    """A Galois MISR.

    Args:
        width: Register width in bits.
        seed: Initial state.
    """

    def __init__(self, width: int = 32, seed: int = 0):
        if width not in PRIMITIVE_TAPS:
            raise ValueError(
                f"no primitive polynomial for width {width}; "
                f"choose one of {sorted(PRIMITIVE_TAPS)}"
            )
        self.width = width
        self._mask = (1 << width) - 1
        # Tap mask for the Galois feedback (exclude the x^width term).
        self._poly = 0
        for tap in PRIMITIVE_TAPS[width]:
            if tap != width:
                self._poly |= 1 << (tap - 1)
        self.state = seed & self._mask

    def absorb(self, word: int) -> None:
        """Clock one parallel input word into the register."""
        carry = (self.state >> (self.width - 1)) & 1
        self.state = ((self.state << 1) & self._mask) ^ (word & self._mask)
        if carry:
            self.state ^= self._poly

    def absorb_stream(self, words: Iterable[int]) -> None:
        """Clock a sequence of words."""
        for word in words:
            self.absorb(word)

    @property
    def signature(self) -> int:
        """Current compressed signature."""
        return self.state

    @property
    def aliasing_probability(self) -> float:
        """Textbook estimate: a faulty stream maps to the fault-free
        signature with probability about ``2^-width``."""
        return 2.0 ** -self.width


def signature_of(words: Sequence[int], width: int = 32,
                 seed: int = 0) -> int:
    """Convenience: the signature of a complete response stream."""
    misr = MISR(width=width, seed=seed)
    misr.absorb_stream(words)
    return misr.signature
