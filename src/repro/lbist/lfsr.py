"""Linear-feedback shift registers for pseudo-random pattern generation.

Most TPI literature (paper Section 2) targets logic BIST: an on-chip
LFSR feeds pseudo-random patterns into the scan chains, and test points
exist precisely because pure pseudo-random patterns leave the
random-pattern-resistant faults undetected.  This module provides the
pattern-generation half of that scheme: maximal-length Fibonacci LFSRs
over standard primitive polynomials.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

#: Primitive polynomial taps (exponents) per register width; each gives
#: a maximal-length sequence of 2^n - 1 states.
PRIMITIVE_TAPS: Dict[int, Sequence[int]] = {
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
    48: (48, 47, 21, 20),
    64: (64, 63, 61, 60),
}


class LFSR:
    """A Fibonacci LFSR.

    Args:
        width: Register width in bits (must be a key of
            :data:`PRIMITIVE_TAPS`).
        seed: Nonzero initial state (defaults to all-ones).
    """

    def __init__(self, width: int = 32, seed: int = 0):
        if width not in PRIMITIVE_TAPS:
            raise ValueError(
                f"no primitive polynomial for width {width}; "
                f"choose one of {sorted(PRIMITIVE_TAPS)}"
            )
        self.width = width
        self.taps = PRIMITIVE_TAPS[width]
        mask = (1 << width) - 1
        self.state = (seed & mask) or mask
        self._mask = mask

    def step(self) -> int:
        """Advance one cycle; returns the shifted-out bit.

        Right-shift Fibonacci form: a tap at exponent *t* reads state
        bit ``width - t`` (the classic ``lfsr >> (n - t)`` convention),
        and the XOR of the taps re-enters at the MSB.
        """
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.width - tap)) & 1
        out = self.state & 1
        self.state = ((self.state >> 1)
                      | (feedback << (self.width - 1))) & self._mask
        return out

    def bits(self, count: int) -> Iterator[int]:
        """Yield ``count`` output bits."""
        for _ in range(count):
            yield self.step()

    def pattern(self, n_bits: int) -> int:
        """Pack the next ``n_bits`` output bits into an integer.

        Bit *j* of the result is the *j*-th shifted-out bit — exactly
        the values a scan chain of length ``n_bits`` would hold after
        being filled from this LFSR.
        """
        value = 0
        for j in range(n_bits):
            value |= self.step() << j
        return value

    def patterns(self, n_bits: int, count: int) -> List[int]:
        """Generate ``count`` packed scan-load patterns."""
        return [self.pattern(n_bits) for _ in range(count)]
