"""Logic BIST: LFSR-driven pseudo-random testing with MISR compaction.

The context of the paper (Section 2): TPI is most often deployed with
LBIST, where "the fault coverage achieved with pseudo-random patterns
only is generally insufficient ... due to pseudo-random persistent
faults.  Test points are therefore inserted to increase the
detectability of these faults."  This engine makes that sentence
measurable: it streams LFSR patterns through the scan-view of a
circuit, fault-simulates with dropping, folds the responses into a
MISR, and reports the fault-coverage growth curve — with and without
test points, the curves are the classic LBIST motivation plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.atpg.compaction import pack_block
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import FaultList, FaultStatus, build_fault_list
from repro.atpg.simulator import BitSimulator
from repro.lbist.lfsr import LFSR
from repro.lbist.misr import MISR
from repro.netlist.circuit import Circuit
from repro.netlist.levelize import extract_comb_view


@dataclass
class LbistConfig:
    """Knobs of one LBIST session.

    Attributes:
        n_patterns: Pseudo-random patterns to apply.
        lfsr_width: Pattern-generator register width.
        misr_width: Signature register width.
        seed: LFSR seed.
        curve_points: Number of coverage-curve samples to record.
    """

    n_patterns: int = 4096
    lfsr_width: int = 32
    misr_width: int = 32
    seed: int = 0xACE1
    curve_points: int = 16


@dataclass
class LbistResult:
    """Outcome of one LBIST session.

    Attributes:
        fault_list: Final fault census.
        signature: MISR signature of the fault-free responses.
        coverage_curve: ``(patterns applied, fault coverage)`` samples.
        n_patterns: Patterns applied.
    """

    fault_list: FaultList
    signature: int
    coverage_curve: List[Tuple[int, float]] = field(default_factory=list)
    n_patterns: int = 0

    @property
    def fault_coverage(self) -> float:
        """Final pseudo-random fault coverage."""
        return self.fault_list.fault_coverage


def run_lbist(circuit: Circuit,
              config: Optional[LbistConfig] = None) -> LbistResult:
    """Apply pseudo-random LBIST patterns to ``circuit``.

    The circuit should be scan-inserted (the test-mode view supplies
    the controllable/observable points); test points inserted before
    scan stitching participate exactly as in silicon.

    Returns:
        The coverage curve, final census and fault-free signature.
    """
    config = config or LbistConfig()
    view = extract_comb_view(circuit, "test")
    sim = BitSimulator(view)
    fsim = FaultSimulator(sim)
    fault_list = build_fault_list(circuit, view)
    lfsr = LFSR(width=config.lfsr_width, seed=config.seed)
    misr = MISR(width=config.misr_width)

    inputs = list(view.input_nets)
    n_inputs = len(inputs)
    remaining = {
        f for f in fault_list.targets() if fsim.in_view(f)
    }

    result = LbistResult(fault_list=fault_list, signature=0)
    sample_every = max(1, config.n_patterns // config.curve_points)
    applied = 0
    while applied < config.n_patterns:
        block_size = min(sim.width, config.n_patterns - applied)
        block = lfsr.patterns(n_inputs, block_size)
        words = pack_block(inputs, block)
        good = sim.run(words)
        # Fault-free responses feed the signature register.
        for net in view.output_nets:
            misr.absorb(good[sim.net_index[net]])
        detections = fsim.run_block(words, remaining, good=good)
        fault_list.mark_many(detections, FaultStatus.DETECTED)
        remaining.difference_update(detections)
        remaining = {
            f for f in remaining
            if fault_list.status[f] is FaultStatus.UNDETECTED
        }
        applied += block_size
        if (applied % sample_every < sim.width
                or applied == block_size
                or applied >= config.n_patterns):
            result.coverage_curve.append(
                (applied, fault_list.fault_coverage)
            )

    result.signature = misr.signature
    result.n_patterns = applied
    return result


def coverage_at(result: LbistResult, n_patterns: int) -> float:
    """Coverage after the last sample at or before ``n_patterns``."""
    best = 0.0
    for applied, coverage in result.coverage_curve:
        if applied <= n_patterns:
            best = coverage
    return best
