"""The supported library entry point of the reproduction toolkit.

Everything a program needs to drive the paper's experiments lives
here: :func:`load_circuit` builds one of the registered benchmark
netlists, :func:`run` executes the full Figure 2 flow on it, and
:func:`sweep` runs the paper's multi-level TP sweep that regenerates
Tables 1-3.  The CLI (``python -m repro``) is a thin shell over these
same functions, so the two surfaces cannot drift apart.

Quick start::

    import repro

    result = repro.run("s38417", scale=0.05, tp_percent=2.0)
    print(result.test_metrics())

All configuration flows through :class:`repro.FlowConfig` — keyword
options given to :func:`run`/:func:`sweep` are applied with
``FlowConfig.replace`` and therefore reject unknown keys with a
did-you-mean error.
"""

from __future__ import annotations

import difflib
import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from repro.chaos import FaultPlan
from repro.circuits import control_core, dsp_core_p26909, s38417_like
from repro.core.executor import (
    ExecutorConfig,
    run_sweep as _run_sweep,
    run_sweeps_report as _run_sweeps_report,
)
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.core.flow import FlowConfig, FlowResult, run_flow
from repro.core.resilience import SweepReport
from repro.layout.placer import PLACERS, Placer, PlacerSpec, get_placer
from repro.library.cell import Library
from repro.library.cmos130 import cmos130
from repro.lint.core import LintReport
from repro.netlist.circuit import Circuit

__all__ = [
    "CIRCUITS",
    "CircuitSpec",
    "PLACERS",
    "Placer",
    "PlacerSpec",
    "get_placer",
    "lint_netlist",
    "load_circuit",
    "run",
    "sweep",
    "sweep_report",
]


def _unknown_circuit_error(name: str) -> KeyError:
    """A did-you-mean KeyError for an unregistered circuit name."""
    choices = sorted(CIRCUITS)
    close = difflib.get_close_matches(str(name), choices, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return KeyError(
        f"unknown circuit {name!r}{hint}; choose from "
        + ", ".join(choices)
    )


@dataclass(frozen=True)
class CircuitSpec:
    """One registered benchmark circuit.

    Attributes:
        factory: Builds a fresh pre-DFT netlist; takes ``scale``.
        flow_defaults: Paper-accurate :class:`FlowConfig` overrides
            for this circuit (utilisation, chain policy).
    """

    factory: Callable[..., Circuit]
    flow_defaults: Mapping[str, Any]


#: Registered benchmark circuits and their paper-accurate flow settings.
CIRCUITS: Dict[str, CircuitSpec] = {
    "s38417": CircuitSpec(
        s38417_like,
        {"target_utilization": 0.97, "max_chain_length": 100},
    ),
    "control_core": CircuitSpec(
        control_core,
        {"target_utilization": 0.97, "max_chain_length": 100},
    ),
    "p26909": CircuitSpec(
        dsp_core_p26909,
        {"target_utilization": 0.50, "max_chain_length": None,
         "n_chains": 32},
    ),
}


def load_circuit(name: str, scale: float = 0.05) -> Circuit:
    """Build a fresh registered benchmark netlist.

    Args:
        name: A key of :data:`CIRCUITS` (e.g. ``"s38417"``).
        scale: Fraction of the published circuit size (1.0 reproduces
            the paper's dimensions).

    Returns:
        The pre-DFT netlist.

    Raises:
        KeyError: Unknown circuit name (message lists the choices and
            suggests the closest registered name).
    """
    spec = CIRCUITS.get(name)
    if spec is None:
        raise _unknown_circuit_error(name)
    return spec.factory(scale=scale)


def _resolve_config(
    circuit_name: Optional[str],
    config: Union[FlowConfig, Mapping[str, Any], None],
    options: Dict[str, Any],
) -> FlowConfig:
    """Merge registry defaults, an explicit config, and overrides."""
    if config is None:
        base = FlowConfig()
        if circuit_name is not None:
            base = base.replace(**CIRCUITS[circuit_name].flow_defaults)
    elif isinstance(config, FlowConfig):
        base = config
    else:
        base = FlowConfig.from_dict(config)
    return base.replace(**options) if options else base


def run(
    circuit: Union[Circuit, str],
    library: Optional[Library] = None,
    config: Union[FlowConfig, Mapping[str, Any], None] = None,
    *,
    scale: float = 0.05,
    **options: Any,
) -> FlowResult:
    """Run the full Figure 2 flow; the one supported library call.

    Args:
        circuit: A pre-DFT :class:`Circuit` (modified in place — pass
            a clone when the original must survive), or the name of a
            registered benchmark (see :data:`CIRCUITS`).
        library: Standard-cell library; defaults to the 130 nm one.
        config: Base :class:`FlowConfig`, or a plain dict accepted by
            :meth:`FlowConfig.from_dict`.  For named circuits the
            registry's paper-accurate defaults seed the config when
            none is given.
        scale: Circuit size fraction, used only when ``circuit`` is a
            name.
        **options: :class:`FlowConfig` field overrides (e.g.
            ``tp_percent=2.0``, ``incremental_eco=False``); unknown
            keys raise a did-you-mean ``ValueError``.

    Returns:
        The populated :class:`FlowResult`.
    """
    name = circuit if isinstance(circuit, str) else None
    if isinstance(circuit, str):
        circuit = load_circuit(circuit, scale=scale)
    flow_config = _resolve_config(name, config, options)
    return run_flow(circuit, library or cmos130(), flow_config)


def lint_netlist(
    circuit: Union[Circuit, str],
    library: Optional[Library] = None,
    config: Union[FlowConfig, Mapping[str, Any], None] = None,
    *,
    scale: float = 0.05,
    tp_percent: float = 0.0,
    chains: Any = None,
    **options: Any,
) -> LintReport:
    """Audit a netlist with the netlist/DFT rule pack; never raises.

    Two modes, matching :func:`run`'s circuit argument:

    * A registered benchmark *name*: a fresh netlist is built and taken
      through the flow's stage-0 DFT prep (TPI at ``tp_percent``, scan
      insertion, electrical fix-up) under the registry's paper-accurate
      defaults, then linted — the same view the ``FlowConfig.lint``
      stage-0 gate sees.
    * A :class:`Circuit` object: linted exactly as given (no insertion);
      pass ``chains`` to enable the scan-chain rules.

    Args:
        circuit: Benchmark name or pre-built netlist.
        library: Standard-cell library; defaults to the 130 nm one.
        config: Base :class:`FlowConfig` (object or dict); for named
            circuits the registry defaults seed it when omitted.
        scale: Circuit size fraction (named circuits only).
        tp_percent: TP level for the stage-0 prep (named circuits
            only).
        chains: :class:`repro.scan.insertion.ScanChains` of an
            already-prepared circuit object.
        **options: :class:`FlowConfig` overrides, as in :func:`run`.

    Returns:
        The :class:`repro.lint.LintReport`; inspect ``report.ok`` /
        ``report.diagnostics`` or call ``report.raise_on_error()``.
    """
    from repro.lint.netlist_rules import lint_netlist as _lint

    lib = library or cmos130()
    if isinstance(circuit, str):
        name = circuit
        flow_config = _resolve_config(
            name, config, dict(options, tp_percent=tp_percent)
        )
        netlist = load_circuit(name, scale=scale)
        n_tp = round(
            flow_config.tp_percent / 100.0 * netlist.num_flip_flops
        )
        if n_tp > 0:
            from repro.tpi.insertion import TpiConfig, insert_test_points

            insert_test_points(netlist, lib, TpiConfig(
                n_test_points=n_tp,
                pd_threshold=flow_config.pd_threshold,
                exclude_nets=set(flow_config.exclude_nets),
            ))
        from repro.netlist.fanout import fix_electrical
        from repro.scan.insertion import insert_scan

        chains = insert_scan(
            netlist, lib,
            max_chain_length=flow_config.max_chain_length,
            n_chains=flow_config.n_chains,
        )
        fix_electrical(netlist, lib)
        circuit = netlist
    else:
        flow_config = _resolve_config(None, config, dict(options))
    return _lint(
        circuit,
        chains=chains,
        max_chain_length=flow_config.max_chain_length,
        n_chains=flow_config.n_chains,
    )


def _build_experiment(
    circuit: Union[str, Callable[[], Circuit]],
    library: Optional[Library],
    config: Union[FlowConfig, Mapping[str, Any], None],
    scale: float,
    tp_percents: Optional[Sequence[float]],
    name: Optional[str],
    options: Dict[str, Any],
) -> ExperimentConfig:
    """Resolve a sweep's circuit/config into an ExperimentConfig."""
    circuit_name = circuit if isinstance(circuit, str) else None
    if isinstance(circuit, str):
        spec = CIRCUITS.get(circuit)
        if spec is None:
            raise _unknown_circuit_error(circuit)
        # functools.partial (not a lambda): the sweep executor pickles
        # the factory into worker processes when jobs > 1.
        factory = functools.partial(spec.factory, scale=scale)
    else:
        factory = circuit
    flow_config = _resolve_config(circuit_name, config, options)
    return ExperimentConfig(
        name=name or circuit_name or "sweep",
        circuit_factory=factory,
        flow=flow_config,
        library=library,
        **({"tp_percents": tuple(tp_percents)} if tp_percents else {}),
    )


def _build_executor(
    jobs: int,
    cache_dir: Optional[str],
    use_cache: bool,
    trace: bool,
    retries: int,
    task_timeout_s: Optional[float],
    resume: bool,
    fail_fast: bool,
    chaos: Optional[FaultPlan],
    cache_max_bytes: Optional[int] = None,
) -> ExecutorConfig:
    if resume and not cache_dir:
        raise ValueError(
            "resume=True needs a cache_dir: resume skips completed "
            "cells via the cache and the journal stored next to it"
        )
    return ExecutorConfig(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, trace=trace,
        retries=retries, task_timeout_s=task_timeout_s, resume=resume,
        fail_fast=fail_fast, chaos=chaos, cache_max_bytes=cache_max_bytes,
    )


def sweep(
    circuit: Union[str, Callable[[], Circuit]],
    library: Optional[Library] = None,
    config: Union[FlowConfig, Mapping[str, Any], None] = None,
    *,
    scale: float = 0.05,
    tp_percents: Optional[Sequence[float]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    cache_max_bytes: Optional[int] = None,
    trace: bool = False,
    name: Optional[str] = None,
    retries: int = 2,
    task_timeout_s: Optional[float] = None,
    resume: bool = False,
    fail_fast: bool = False,
    chaos: Optional[FaultPlan] = None,
    **options: Any,
) -> ExperimentResult:
    """Run the paper's TP sweep (Tables 1-3) over one circuit.

    Args:
        circuit: Registered benchmark name, or a zero-argument factory
            returning a fresh pre-DFT netlist per level (must be
            picklable when ``jobs > 1``).
        library: Standard-cell library; defaults to the 130 nm one.
        config: Base :class:`FlowConfig` (object or dict), seeded from
            the registry for named circuits when omitted.
        scale: Circuit size fraction, used only for named circuits.
        tp_percents: TP levels to sweep (default: the paper's ladder).
        jobs: Worker processes; >1 routes through the parallel
            executor, which is bit-identical to the serial path.
        cache_dir: Content-addressed result cache directory; also
            routes through the executor (and hosts the sweep journal).
        use_cache: Read/write the cache (``False`` forces fresh runs).
        cache_max_bytes: Size cap of the result cache; when the cached
            artifacts exceed it, least-recently-used entries are
            evicted (None = unbounded, the historical behaviour).
        trace: Ask executor workers to record per-run span traces
            (serial runs inherit any ambient :func:`repro.obs.tracing`
            context instead).
        name: Experiment name (defaults to the circuit name).
        retries: Retry budget per (circuit, tp%) task for *retryable*
            failures (crashes, timeouts, transient I/O).
        task_timeout_s: Watchdog per-task timeout; a task past it is
            killed (pool replaced) and charged a retry.  Parallel
            sweeps only.
        resume: Continue a previous sweep: completed cells are served
            from the cache/journal, only the rest run.  Needs
            ``cache_dir``.
        fail_fast: Abort remaining cells after the first permanent
            failure instead of degrading gracefully.
        chaos: A :class:`repro.chaos.FaultPlan` of scripted failures
            (testing/CI; production sweeps leave it None).
        **options: :class:`FlowConfig` overrides, as in :func:`run`.

    Returns:
        The :class:`ExperimentResult` with the Table 1/2/3 rows.

    Raises:
        SweepExecutionError: A cell stayed failed after its retries.
            Use :func:`sweep_report` instead to get partial results
            plus structured failures without an exception.
    """
    experiment = _build_experiment(circuit, library, config, scale,
                                   tp_percents, name, options)
    resilient = (retries != 2 or task_timeout_s is not None or resume
                 or fail_fast or chaos is not None)
    if jobs > 1 or cache_dir or resilient:
        executor = _build_executor(jobs, cache_dir, use_cache, trace,
                                   retries, task_timeout_s, resume,
                                   fail_fast, chaos, cache_max_bytes)
        return _run_sweep(experiment, executor)
    return run_experiment(experiment)


def sweep_report(
    circuit: Union[str, Callable[[], Circuit]],
    library: Optional[Library] = None,
    config: Union[FlowConfig, Mapping[str, Any], None] = None,
    *,
    scale: float = 0.05,
    tp_percents: Optional[Sequence[float]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    cache_max_bytes: Optional[int] = None,
    trace: bool = False,
    name: Optional[str] = None,
    retries: int = 2,
    task_timeout_s: Optional[float] = None,
    resume: bool = False,
    fail_fast: bool = False,
    chaos: Optional[FaultPlan] = None,
    **options: Any,
) -> SweepReport:
    """Run the TP sweep with graceful degradation; never raises on
    cell failure.

    Same arguments as :func:`sweep`; the difference is the return
    contract.  The :class:`repro.core.resilience.SweepReport` carries
    every successful cell's summary under ``report.results`` plus one
    structured :class:`~repro.core.resilience.TaskFailure` per
    permanently failed cell — Tables 1/2/3 render with explicit holes
    instead of the sweep aborting.
    """
    experiment = _build_experiment(circuit, library, config, scale,
                                   tp_percents, name, options)
    executor = _build_executor(jobs, cache_dir, use_cache, trace,
                               retries, task_timeout_s, resume,
                               fail_fast, chaos, cache_max_bytes)
    return _run_sweeps_report([experiment], executor)
