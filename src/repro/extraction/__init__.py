"""Layout parasitic extraction (RC trees, Elmore delays)."""

from repro.extraction.rc import (
    LOCAL_WIRE_UM,
    NetParasitics,
    OHM_FF_TO_PS,
    extract_all,
    extract_incremental,
    extract_net,
)

__all__ = [
    "LOCAL_WIRE_UM",
    "NetParasitics",
    "OHM_FF_TO_PS",
    "extract_all",
    "extract_net",
]
