"""RC extraction from routed nets (the flow's HyperExtract substitute).

Every routed net becomes an RC tree: each segment contributes the
resistance and capacitance of its metal layer (half the capacitance
lumped at each end), vias add their fixed resistance, and sink pin
capacitances load the tree at the pin nodes.  Elmore delays from the
driver to every sink, and the net's total capacitance (the load seen by
the driving cell), feed static timing analysis.

Units: ohm, fF, um, ps (1 ohm x 1 fF = 0.001 ps).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.library.layers import (
    MetalLayer,
    VIA_RESISTANCE_OHM,
    metal_stack_130nm,
)
from repro.layout.geometry import Point
from repro.layout.placement import Placement
from repro.layout.routing import RoutedNet
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT, PinRef

#: ohm * fF -> ps conversion.
OHM_FF_TO_PS = 1e-3

#: Estimated intra-gcell wirelength for unrouted/local nets, in um.
LOCAL_WIRE_UM = 6.0


@dataclass
class NetParasitics:
    """Extracted parasitics of one net.

    Attributes:
        net: Net name.
        wirelength_um: Routed length.
        wire_cap_ff: Capacitance of the wire itself.
        pin_cap_ff: Total sink pin capacitance.
        elmore_ps: Driver-to-sink Elmore delay per sink pin.
    """

    net: str
    wirelength_um: float
    wire_cap_ff: float
    pin_cap_ff: float
    elmore_ps: Dict[PinRef, float] = field(default_factory=dict)

    @property
    def total_cap_ff(self) -> float:
        """Load presented to the driving cell."""
        return self.wire_cap_ff + self.pin_cap_ff

    def delay_to(self, sink: PinRef) -> float:
        """Elmore delay to one sink (0 for unknown sinks)."""
        return self.elmore_ps.get(sink, 0.0)

    def worst_elmore_ps(self) -> float:
        """Largest driver-to-sink delay."""
        return max(self.elmore_ps.values(), default=0.0)


def _quantize(p: Point) -> Tuple[int, int]:
    """Snap a point to a 0.01 um grid for node identity."""
    return int(round(p[0] * 100)), int(round(p[1] * 100))


def extract_net(
    circuit: Circuit,
    placement: Placement,
    routed: RoutedNet,
    layers: Dict[int, MetalLayer],
) -> NetParasitics:
    """Extract one net's RC tree and Elmore delays."""
    net = circuit.nets[routed.net]

    # Sink pin caps and sink node positions.
    pin_cap = 0.0
    sink_nodes: Dict[PinRef, Tuple[int, int]] = {}
    for inst, pin in net.sinks:
        if inst == PORT:
            pos = placement.plan.pad_positions.get(pin)
            cap = 2.0  # pad input capacitance
        else:
            pos = placement.positions.get(inst)
            cap = circuit.instances[inst].cell.pin_cap_ff(pin)
        pin_cap += cap
        if pos is not None:
            sink_nodes[(inst, pin)] = _quantize(pos)

    driver_pos: Optional[Point] = None
    if net.driver is not None:
        d_inst, d_pin = net.driver
        if d_inst == PORT:
            driver_pos = placement.plan.pad_positions.get(d_pin)
        else:
            driver_pos = placement.positions.get(d_inst)

    wire_cap = 0.0
    result = NetParasitics(
        net=routed.net,
        wirelength_um=routed.wirelength_um,
        wire_cap_ff=0.0,
        pin_cap_ff=pin_cap,
    )

    if driver_pos is None or not sink_nodes:
        return result

    if not routed.segments:
        # Local net: a short stub on the lowest signal layer.
        layer = layers[2]
        wire_cap = LOCAL_WIRE_UM * layer.c_ff_per_um
        r = LOCAL_WIRE_UM * layer.r_ohm_per_um
        result.wire_cap_ff = wire_cap
        for sink in sink_nodes:
            cap_here = wire_cap + pin_cap
            result.elmore_ps[sink] = r * cap_here * OHM_FF_TO_PS
        return result

    # Build the node graph of the routed tree.
    adjacency: Dict[Tuple[int, int], List[Tuple[Tuple[int, int], float, float]]]
    adjacency = defaultdict(list)
    node_cap: Dict[Tuple[int, int], float] = defaultdict(float)
    for seg in routed.segments:
        a = _quantize((seg.x0, seg.y0))
        b = _quantize((seg.x1, seg.y1))
        if a == b:
            continue
        layer = layers[seg.layer]
        r = seg.length_um * layer.r_ohm_per_um + VIA_RESISTANCE_OHM
        c = seg.length_um * layer.c_ff_per_um
        wire_cap += c
        node_cap[a] += c / 2
        node_cap[b] += c / 2
        adjacency[a].append((b, r, c))
        adjacency[b].append((a, r, c))
    result.wire_cap_ff = wire_cap

    for sink, node in sink_nodes.items():
        inst, pin = sink
        if inst == PORT:
            node_cap[node] += 2.0
        else:
            node_cap[node] += circuit.instances[inst].cell.pin_cap_ff(pin)

    root = _quantize(driver_pos)
    if root not in adjacency:
        root = min(
            adjacency,
            key=lambda n: abs(n[0] - root[0]) + abs(n[1] - root[1]),
        )

    # BFS spanning tree from the driver.
    parent: Dict[Tuple[int, int], Tuple[Optional[Tuple[int, int]], float]] = {
        root: (None, 0.0)
    }
    order = [root]
    queue = [root]
    while queue:
        current = queue.pop()
        for neighbour, r, _ in adjacency[current]:
            if neighbour not in parent:
                parent[neighbour] = (current, r)
                order.append(neighbour)
                queue.append(neighbour)

    # Downstream capacitance per node (children-first accumulation).
    down_cap: Dict[Tuple[int, int], float] = {
        node: node_cap.get(node, 0.0) for node in order
    }
    for node in reversed(order):
        up, _ = parent[node]
        if up is not None:
            down_cap[up] += down_cap[node]

    # Elmore: delay(node) = delay(parent) + R_edge * down_cap(node).
    delay: Dict[Tuple[int, int], float] = {root: 0.0}
    for node in order[1:]:
        up, r = parent[node]
        delay[node] = delay[up] + r * down_cap[node] * OHM_FF_TO_PS

    fallback = max(delay.values(), default=0.0)
    for sink, node in sink_nodes.items():
        result.elmore_ps[sink] = delay.get(node, fallback)
    return result


def extract_all(
    circuit: Circuit,
    placement: Placement,
    routed_nets: Dict[str, RoutedNet],
    stack: Optional[List[MetalLayer]] = None,
) -> Dict[str, NetParasitics]:
    """Extract every routed net; returns parasitics keyed by net name."""
    stack = stack or metal_stack_130nm()
    layers = {layer.index: layer for layer in stack}
    out: Dict[str, NetParasitics] = {}
    for name in circuit.nets:
        routed = routed_nets.get(name)
        if routed is None:
            routed = RoutedNet(net=name)
        out[name] = extract_net(circuit, placement, routed, layers)
    return out


def extract_incremental(
    circuit: Circuit,
    placement: Placement,
    routed_nets: Dict[str, RoutedNet],
    previous: Dict[str, NetParasitics],
    dirty_nets: Iterable[str],
    stack: Optional[List[MetalLayer]] = None,
) -> Dict[str, NetParasitics]:
    """Re-extract only the dirty nets, reusing prior parasitics.

    The dirty-set contract: a net's reused :class:`NetParasitics` is
    valid only if neither its route, its pin set, nor any of its pin
    positions changed since ``previous`` was extracted — callers must
    list every such net in ``dirty_nets``.  Nets absent from
    ``previous`` (newly created) are always extracted; nets deleted
    from the circuit are dropped.  Given a complete dirty set the
    result equals :func:`extract_all` exactly, because per-net
    extraction is independent.

    Args:
        circuit: Netlist after the edit.
        placement: Current placement (pin positions).
        routed_nets: Current routes for the whole design.
        previous: Parasitics from the last full or incremental pass.
        dirty_nets: Nets whose geometry may have changed.
        stack: Metal stack (defaults to the 130 nm stack).

    Returns:
        Parasitics for every net of the circuit, keyed by name.
    """
    stack = stack or metal_stack_130nm()
    layers = {layer.index: layer for layer in stack}
    dirty = set(dirty_nets)
    out: Dict[str, NetParasitics] = {}
    for name in circuit.nets:
        prior = previous.get(name)
        if prior is not None and name not in dirty:
            out[name] = prior
            continue
        routed = routed_nets.get(name)
        if routed is None:
            routed = RoutedNet(net=name)
        out[name] = extract_net(circuit, placement, routed, layers)
    return out
