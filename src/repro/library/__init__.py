"""Standard-cell library model and the concrete 130 nm-class library."""

from repro.library.cell import (
    Library,
    LibraryCell,
    PinDef,
    ROW_HEIGHT_UM,
    SITE_WIDTH_UM,
    SequentialSpec,
    TimingArc,
)
from repro.library.cmos130 import STATE_PIN, build_cmos130_library, cmos130
from repro.library.layers import (
    MetalLayer,
    average_signal_rc,
    metal_stack_130nm,
    signal_layers,
)
from repro.library.liberty import parse_liberty_cells, to_liberty
from repro.library.logic import (
    And,
    Const,
    LogicExpr,
    Mux,
    Not,
    Or,
    Var,
    Xor,
    exhaustive_truth_table,
)
from repro.library.nldm import LookupResult, NLDMTable

__all__ = [
    "And",
    "parse_liberty_cells",
    "to_liberty",
    "Const",
    "Library",
    "LibraryCell",
    "LogicExpr",
    "LookupResult",
    "MetalLayer",
    "Mux",
    "NLDMTable",
    "Not",
    "Or",
    "PinDef",
    "ROW_HEIGHT_UM",
    "SITE_WIDTH_UM",
    "STATE_PIN",
    "SequentialSpec",
    "TimingArc",
    "Var",
    "Xor",
    "average_signal_rc",
    "build_cmos130_library",
    "cmos130",
    "exhaustive_truth_table",
    "metal_stack_130nm",
    "signal_layers",
]
