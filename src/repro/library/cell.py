"""Library cell model: pins, logic function, area and timing arcs.

This is a deliberately Liberty-shaped model: enough structure that the
rest of the flow (simulation, ATPG, placement, STA) reads cells exactly
the way commercial tools read ``.lib``/``.lef`` data, without the parser
baggage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.library.logic import LogicExpr
from repro.library.nldm import NLDMTable

#: Standard-cell row height of the 130 nm-class library, in um.
ROW_HEIGHT_UM = 3.69

#: Placement site width of the 130 nm-class library, in um.
SITE_WIDTH_UM = 0.41


@dataclass(frozen=True)
class PinDef:
    """One library pin.

    Attributes:
        name: Pin name (``"A"``, ``"D"``, ``"CLK"`` ...).
        direction: ``"input"`` or ``"output"``.
        cap_ff: Input pin capacitance in fF (0 for outputs).
        is_clock: True for clock input pins of sequential cells.
    """

    name: str
    direction: str
    cap_ff: float = 0.0
    is_clock: bool = False


@dataclass(frozen=True)
class TimingArc:
    """A combinational or clock-to-output delay arc.

    Attributes:
        from_pin: Launching input pin.
        to_pin: Output pin.
        delay: NLDM delay table (ps vs input slew, output load).
        slew: NLDM output-slew table (ps).
    """

    from_pin: str
    to_pin: str
    delay: NLDMTable
    slew: NLDMTable


@dataclass(frozen=True)
class SequentialSpec:
    """Description of a flip-flop-like cell's sequential behaviour.

    Attributes:
        data_pin: Functional data input (``D``).
        clock_pin: Clock input.
        output_pin: State/bypass output (``Q``).
        scan_in: Scan data input (``TI``) or None for plain DFFs.
        scan_enable: Scan-enable input (``TE``) or None.
        test_point_enable: TSFF output-select input (``TR``) or None.
        setup_ps: Setup time at the data/scan pins, in ps.
        hold_ps: Hold time at the data/scan pins, in ps.
        next_state: Expression for the value captured at a clock edge.
        bypass: For TSFFs, the combinational output function in terms of
            the input pins and the pseudo-pin ``"@state"`` (the stored
            value); None for ordinary FFs whose output is purely state.
    """

    data_pin: str
    clock_pin: str
    output_pin: str
    scan_in: Optional[str] = None
    scan_enable: Optional[str] = None
    test_point_enable: Optional[str] = None
    setup_ps: float = 120.0
    hold_ps: float = 30.0
    next_state: Optional[LogicExpr] = None
    bypass: Optional[LogicExpr] = None


@dataclass
class LibraryCell:
    """One standard cell.

    Attributes:
        name: Cell name, e.g. ``"NAND2_X1"``.
        pins: Pin definitions, keyed by pin name.
        width_sites: Cell width in placement sites.
        drive: Relative drive strength (1, 2, 4 ...).
        functions: Combinational output functions, keyed by output pin.
            Sequential cells describe behaviour in :attr:`sequential`.
        sequential: Sequential behaviour, or None for combinational cells.
        arcs: Timing arcs (input -> output and clock -> output).
        is_filler: True for filler cells (no pins, area only).
        is_clock_buffer: True for cells reserved for clock trees.
        is_tsff: True for the transparent scan flip-flop (Fig. 1).
        is_scan: True for scan-capable flip-flops (SDFF and TSFF).
        max_cap_ff: Maximum output load the cell may legally drive.
    """

    name: str
    pins: Dict[str, PinDef]
    width_sites: int
    drive: int = 1
    functions: Dict[str, LogicExpr] = field(default_factory=dict)
    sequential: Optional[SequentialSpec] = None
    arcs: List[TimingArc] = field(default_factory=list)
    is_filler: bool = False
    is_clock_buffer: bool = False
    is_tsff: bool = False
    is_scan: bool = False
    max_cap_ff: float = 120.0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def width_um(self) -> float:
        """Physical cell width in um."""
        return self.width_sites * SITE_WIDTH_UM

    @property
    def height_um(self) -> float:
        """Physical cell height (one row) in um."""
        return ROW_HEIGHT_UM

    @property
    def area_um2(self) -> float:
        """Cell area in um^2."""
        return self.width_um * self.height_um

    # ------------------------------------------------------------------
    # Pins
    # ------------------------------------------------------------------
    @property
    def input_pins(self) -> List[str]:
        """Names of input pins, in declaration order."""
        return [p.name for p in self.pins.values() if p.direction == "input"]

    @property
    def output_pins(self) -> List[str]:
        """Names of output pins, in declaration order."""
        return [p.name for p in self.pins.values() if p.direction == "output"]

    def pin_is_output(self, pin: str) -> bool:
        """True when ``pin`` is an output of this cell."""
        return self.pins[pin].direction == "output"

    def pin_cap_ff(self, pin: str) -> float:
        """Input capacitance of ``pin`` in fF."""
        return self.pins[pin].cap_ff

    @property
    def clock_pin(self) -> Optional[str]:
        """Clock pin name for sequential cells, else None."""
        return self.sequential.clock_pin if self.sequential else None

    @property
    def is_sequential(self) -> bool:
        """True for flip-flop-like cells."""
        return self.sequential is not None

    @property
    def is_buffer_like(self) -> bool:
        """True for single-input single-output non-inverting cells."""
        return (
            not self.is_sequential
            and len(self.input_pins) == 1
            and len(self.output_pins) == 1
        )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def arcs_to(self, out_pin: str) -> List[TimingArc]:
        """All arcs ending at ``out_pin``."""
        return [a for a in self.arcs if a.to_pin == out_pin]

    def arc(self, from_pin: str, to_pin: str) -> TimingArc:
        """The unique arc ``from_pin -> to_pin`` (KeyError if absent)."""
        for a in self.arcs:
            if a.from_pin == from_pin and a.to_pin == to_pin:
                return a
        raise KeyError(f"{self.name}: no arc {from_pin} -> {to_pin}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LibraryCell {self.name}>"


class Library:
    """A named collection of :class:`LibraryCell` objects.

    Provides drive-strength families (``NAND2_X1`` / ``NAND2_X2`` ...)
    and lookup helpers used by synthesis-like steps (TPI, CTS, scan).
    """

    def __init__(self, name: str):
        self.name = name
        self.cells: Dict[str, LibraryCell] = {}

    def add(self, cell: LibraryCell) -> LibraryCell:
        """Register a cell; names must be unique."""
        if cell.name in self.cells:
            raise ValueError(f"cell {cell.name!r} already in library")
        self.cells[cell.name] = cell
        return cell

    def __getitem__(self, name: str) -> LibraryCell:
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def family(self, base: str) -> List[LibraryCell]:
        """Drive-strength family of ``base``, weakest first.

        ``family("NAND2")`` returns ``[NAND2_X1, NAND2_X2, ...]``.
        """
        members = [
            c
            for n, c in self.cells.items()
            if n == base or n.startswith(base + "_X")
        ]
        return sorted(members, key=lambda c: c.drive)

    def fillers(self) -> List[LibraryCell]:
        """Filler cells, narrowest first."""
        cells = [c for c in self.cells.values() if c.is_filler]
        return sorted(cells, key=lambda c: c.width_sites)

    def clock_buffers(self) -> List[LibraryCell]:
        """Clock buffer cells, weakest first."""
        cells = [c for c in self.cells.values() if c.is_clock_buffer]
        return sorted(cells, key=lambda c: c.drive)
