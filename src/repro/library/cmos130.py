"""The synthetic 130 nm-class standard-cell library.

Stands in for the Philips 130 nm CMOS library of the paper: the same
cell classes (simple gates at several drive strengths, muxes, plain and
scan flip-flops, the TSFF test-point cell of Fig. 1, clock buffers and
fillers), with areas on the real 0.41 um site grid and NLDM timing
tables of 130 nm-plausible magnitudes.

Absolute delays and areas need not match the unpublished Philips data;
what matters for the reproduction is that the *ratios* are right:
a TSFF is a scan FF plus one mux (area), the application-mode penalty of
a test point is two mux hops (timing), and delay grows with load and
input slew the way NLDM cells do.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.library.cell import Library, LibraryCell, PinDef, SequentialSpec, TimingArc
from repro.library.logic import And, LogicExpr, Mux, Not, Or, Var, Xor
from repro.library.nldm import NLDMTable

#: Pseudo-pin naming the stored FF value inside bypass expressions.
STATE_PIN = "@state"


def _arc(from_pin: str, to_pin: str, intrinsic: float, drive: int,
         base_ps_per_ff: float, slew_sens: float = 0.15) -> TimingArc:
    """Build one timing arc from first-order parameters.

    Output slew is modelled as roughly twice the load-dependent delay
    plus a floor, which keeps slews growing down long unbuffered nets —
    the mechanism behind the paper's "slow nodes".
    """
    ps_per_ff = base_ps_per_ff / drive
    delay = NLDMTable.linear(intrinsic, ps_per_ff, slew_sens)
    slew = NLDMTable.linear(0.6 * intrinsic + 10.0, 1.5 * ps_per_ff, 0.10)
    return TimingArc(from_pin, to_pin, delay, slew)


def _comb_cell(
    lib: Library,
    name: str,
    inputs: Sequence[str],
    function: LogicExpr,
    width_sites: int,
    intrinsic: float,
    drive: int,
    base_ps_per_ff: float,
    in_cap: float,
    out_pin: str = "Z",
) -> LibraryCell:
    """Register a combinational cell with uniform per-input arcs."""
    pins: Dict[str, PinDef] = {
        p: PinDef(p, "input", cap_ff=in_cap * (0.5 + 0.5 * drive))
        for p in inputs
    }
    pins[out_pin] = PinDef(out_pin, "output")
    cell = LibraryCell(
        name=name,
        pins=pins,
        width_sites=width_sites,
        drive=drive,
        functions={out_pin: function},
        arcs=[
            _arc(p, out_pin, intrinsic, drive, base_ps_per_ff) for p in inputs
        ],
        max_cap_ff=8.0 + 14.0 * drive,
    )
    return lib.add(cell)


def _flip_flop(
    lib: Library,
    name: str,
    *,
    scan: bool,
    tsff: bool,
    width_sites: int,
    drive: int = 1,
) -> LibraryCell:
    """Register a DFF / SDFF / TSFF cell.

    The TSFF (paper Fig. 1) is a scan flip-flop with an extra output
    multiplexer: ``Q = TR ? state : (TE ? TI : D)``.  Its functional
    (application-mode, TE=TR=0) path is D -> Q through both muxes.
    """
    pins: Dict[str, PinDef] = {
        "D": PinDef("D", "input", cap_ff=2.0),
        "CLK": PinDef("CLK", "input", cap_ff=1.6, is_clock=True),
    }
    next_state: LogicExpr = Var("D")
    bypass: Optional[LogicExpr] = None
    if scan:
        pins["TI"] = PinDef("TI", "input", cap_ff=2.0)
        pins["TE"] = PinDef("TE", "input", cap_ff=1.8)
        next_state = Mux("TE", Var("D"), Var("TI"))
    if tsff:
        pins["TR"] = PinDef("TR", "input", cap_ff=1.8)
        bypass = Mux("TR", Mux("TE", Var("D"), Var("TI")), Var(STATE_PIN))
    pins["Q"] = PinDef("Q", "output")

    arcs = [_arc("CLK", "Q", 190.0, drive, 24.0)]
    if tsff:
        # Application-mode pass-through: two mux hops from D to Q.
        arcs.append(_arc("D", "Q", 165.0, drive, 26.0))
        arcs.append(_arc("TI", "Q", 165.0, drive, 26.0))

    cell = LibraryCell(
        name=name,
        pins=pins,
        width_sites=width_sites,
        drive=drive,
        sequential=SequentialSpec(
            data_pin="D",
            clock_pin="CLK",
            output_pin="Q",
            scan_in="TI" if scan else None,
            scan_enable="TE" if scan else None,
            test_point_enable="TR" if tsff else None,
            setup_ps=130.0 if scan else 120.0,
            hold_ps=30.0,
            next_state=next_state,
            bypass=bypass,
        ),
        arcs=arcs,
        is_tsff=tsff,
        is_scan=scan,
        max_cap_ff=8.0 + 14.0 * drive,
    )
    return lib.add(cell)


def build_cmos130_library() -> Library:
    """Construct the full 130 nm-class library.

    Returns a fresh :class:`Library`; callers typically hold one shared
    instance per process (see :func:`cmos130`).
    """
    lib = Library("cmos130")

    # Inverters and buffers, three drive strengths each.
    for drive, width in ((1, 3), (2, 4), (4, 6)):
        _comb_cell(lib, f"INV_X{drive}", ["A"], Not("A"),
                   width, 28.0, drive, 14.0, 1.8)
        _comb_cell(lib, f"BUF_X{drive}", ["A"], Var("A"),
                   width + 1, 55.0, drive, 14.0, 1.8)

    # NAND / NOR at two strengths; 2..4 inputs for NAND, 2..3 for NOR.
    for n in (2, 3, 4):
        ins = ["A", "B", "C", "D"][:n]
        for drive, extra in ((1, 0), (2, 2)):
            _comb_cell(lib, f"NAND{n}_X{drive}", ins, Not(And(*ins)),
                       3 + n + extra, 32.0 + 6.0 * n, drive, 16.0, 2.1)
    for n in (2, 3):
        ins = ["A", "B", "C"][:n]
        for drive, extra in ((1, 0), (2, 2)):
            _comb_cell(lib, f"NOR{n}_X{drive}", ins, Not(Or(*ins)),
                       3 + n + extra, 36.0 + 7.0 * n, drive, 18.0, 2.1)

    # AND/OR (buffered), complex gates, XOR family, mux.
    for drive, extra in ((1, 0), (2, 2)):
        _comb_cell(lib, f"AND2_X{drive}", ["A", "B"], And("A", "B"),
                   5 + extra, 62.0, drive, 15.0, 2.0)
        _comb_cell(lib, f"OR2_X{drive}", ["A", "B"], Or("A", "B"),
                   5 + extra, 64.0, drive, 15.0, 2.0)
        _comb_cell(lib, f"AOI21_X{drive}", ["A", "B", "C"],
                   Not(Or(And("A", "B"), Var("C"))),
                   6 + extra, 48.0, drive, 18.0, 2.2)
        _comb_cell(lib, f"OAI21_X{drive}", ["A", "B", "C"],
                   Not(And(Or("A", "B"), Var("C"))),
                   6 + extra, 48.0, drive, 18.0, 2.2)
        _comb_cell(lib, f"XOR2_X{drive}", ["A", "B"], Xor("A", "B"),
                   8 + extra, 78.0, drive, 19.0, 2.6)
        _comb_cell(lib, f"XNOR2_X{drive}", ["A", "B"], Not(Xor("A", "B")),
                   8 + extra, 80.0, drive, 19.0, 2.6)
        _comb_cell(lib, f"MUX2_X{drive}", ["S", "A", "B"],
                   Mux("S", Var("A"), Var("B")),
                   7 + extra, 74.0, drive, 17.0, 2.3)

    # Flip-flops: plain, scan, and the TSFF test point of Fig. 1.
    _flip_flop(lib, "DFF_X1", scan=False, tsff=False, width_sites=18)
    _flip_flop(lib, "SDFF_X1", scan=True, tsff=False, width_sites=23)
    _flip_flop(lib, "TSFF_X1", scan=True, tsff=True, width_sites=30)

    # Clock buffers: balanced rise/fall, stronger drives.
    for drive, width in ((2, 5), (4, 7), (8, 11)):
        cell = _comb_cell(lib, f"CLKBUF_X{drive}", ["A"], Var("A"),
                          width, 48.0, drive, 12.0, 2.4)
        # Reconstruct as clock buffer (dataclass field flip).
        cell.is_clock_buffer = True

    # Fillers: pure area, no pins.
    for width in (1, 2, 4, 8):
        lib.add(LibraryCell(
            name=f"FILL{width}",
            pins={},
            width_sites=width,
            is_filler=True,
        ))
    return lib


_SHARED: Optional[Library] = None


def cmos130() -> Library:
    """Shared read-only instance of the 130 nm-class library."""
    global _SHARED
    if _SHARED is None:
        _SHARED = build_cmos130_library()
    return _SHARED
