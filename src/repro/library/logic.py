"""Logic-function trees for library cells.

Every combinational cell carries a :class:`LogicExpr` per output pin.
The same tree drives three evaluators:

* :meth:`LogicExpr.eval2` — 64-way bit-parallel two-valued simulation on
  numpy ``uint64`` words (logic simulation, fault simulation).
* :meth:`LogicExpr.eval3` — three-valued (0/1/X) simulation using the
  dual-rail encoding ``(ones, zeros)`` where a signal is X when neither
  bit is set (PODEM implication, unknown handling).
* :meth:`LogicExpr.eval_prob` — signal-probability propagation under the
  COP independence assumption (testability analysis).

Keeping one canonical function tree guarantees the simulator, the ATPG
engine and the testability measures never disagree about a cell.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

Word = np.ndarray  # uint64 vector, one bit per pattern
Tri = Tuple[np.ndarray, np.ndarray]  # (ones, zeros) dual-rail words


def _full(template: Word, value: int) -> Word:
    """All-zeros / all-ones word shaped like ``template``."""
    fill = np.uint64(0xFFFFFFFFFFFFFFFF) if value else np.uint64(0)
    return np.full_like(template, fill)


class LogicExpr:
    """Base class of logic-function tree nodes."""

    def eval2(self, env: Dict[str, Word]) -> Word:
        """Two-valued bit-parallel evaluation; ``env`` maps pin -> word."""
        raise NotImplementedError

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        """Three-valued evaluation on dual-rail ``(ones, zeros)`` words."""
        raise NotImplementedError

    def eval_prob(self, env: Dict[str, float]) -> float:
        """P(output = 1) assuming independent inputs (COP model)."""
        raise NotImplementedError

    def support(self) -> List[str]:
        """Input pin names referenced by the expression, in order."""
        seen: List[str] = []
        self._collect_support(seen)
        return seen

    def _collect_support(self, acc: List[str]) -> None:
        raise NotImplementedError


class Var(LogicExpr):
    """A reference to an input pin."""

    def __init__(self, pin: str):
        self.pin = pin

    def eval2(self, env: Dict[str, Word]) -> Word:
        return env[self.pin]

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        return env[self.pin]

    def eval_prob(self, env: Dict[str, float]) -> float:
        return env[self.pin]

    def _collect_support(self, acc: List[str]) -> None:
        if self.pin not in acc:
            acc.append(self.pin)

    def __repr__(self) -> str:
        return self.pin


class Not(LogicExpr):
    """Logical inversion."""

    def __init__(self, arg: Union[LogicExpr, str]):
        self.arg = Var(arg) if isinstance(arg, str) else arg

    def eval2(self, env: Dict[str, Word]) -> Word:
        return ~self.arg.eval2(env)

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        ones, zeros = self.arg.eval3(env)
        return zeros, ones

    def eval_prob(self, env: Dict[str, float]) -> float:
        return 1.0 - self.arg.eval_prob(env)

    def _collect_support(self, acc: List[str]) -> None:
        self.arg._collect_support(acc)

    def __repr__(self) -> str:
        return f"!({self.arg!r})"


class _NaryExpr(LogicExpr):
    """Shared machinery for AND/OR over two or more operands."""

    def __init__(self, *args: Union[LogicExpr, str]):
        if len(args) < 2:
            raise ValueError("n-ary gate needs at least two operands")
        self.args = [Var(a) if isinstance(a, str) else a for a in args]

    def _collect_support(self, acc: List[str]) -> None:
        for arg in self.args:
            arg._collect_support(acc)


class And(_NaryExpr):
    """Logical AND of two or more operands."""

    def eval2(self, env: Dict[str, Word]) -> Word:
        out = self.args[0].eval2(env)
        for arg in self.args[1:]:
            out = out & arg.eval2(env)
        return out

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        ones, zeros = self.args[0].eval3(env)
        for arg in self.args[1:]:
            o, z = arg.eval3(env)
            ones = ones & o
            zeros = zeros | z
        return ones, zeros

    def eval_prob(self, env: Dict[str, float]) -> float:
        p = 1.0
        for arg in self.args:
            p *= arg.eval_prob(env)
        return p

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.args)) + ")"


class Or(_NaryExpr):
    """Logical OR of two or more operands."""

    def eval2(self, env: Dict[str, Word]) -> Word:
        out = self.args[0].eval2(env)
        for arg in self.args[1:]:
            out = out | arg.eval2(env)
        return out

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        ones, zeros = self.args[0].eval3(env)
        for arg in self.args[1:]:
            o, z = arg.eval3(env)
            ones = ones | o
            zeros = zeros & z
        return ones, zeros

    def eval_prob(self, env: Dict[str, float]) -> float:
        q = 1.0
        for arg in self.args:
            q *= 1.0 - arg.eval_prob(env)
        return 1.0 - q

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.args)) + ")"


class Xor(LogicExpr):
    """Two-input exclusive OR."""

    def __init__(self, a: Union[LogicExpr, str], b: Union[LogicExpr, str]):
        self.a = Var(a) if isinstance(a, str) else a
        self.b = Var(b) if isinstance(b, str) else b

    def eval2(self, env: Dict[str, Word]) -> Word:
        return self.a.eval2(env) ^ self.b.eval2(env)

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        ao, az = self.a.eval3(env)
        bo, bz = self.b.eval3(env)
        ones = (ao & bz) | (az & bo)
        zeros = (ao & bo) | (az & bz)
        return ones, zeros

    def eval_prob(self, env: Dict[str, float]) -> float:
        pa = self.a.eval_prob(env)
        pb = self.b.eval_prob(env)
        return pa * (1.0 - pb) + pb * (1.0 - pa)

    def _collect_support(self, acc: List[str]) -> None:
        self.a._collect_support(acc)
        self.b._collect_support(acc)

    def __repr__(self) -> str:
        return f"({self.a!r} ^ {self.b!r})"


class Mux(LogicExpr):
    """Two-way multiplexer: output = ``b`` when ``sel`` is 1, else ``a``."""

    def __init__(
        self,
        sel: Union[LogicExpr, str],
        a: Union[LogicExpr, str],
        b: Union[LogicExpr, str],
    ):
        self.sel = Var(sel) if isinstance(sel, str) else sel
        self.a = Var(a) if isinstance(a, str) else a
        self.b = Var(b) if isinstance(b, str) else b

    def eval2(self, env: Dict[str, Word]) -> Word:
        s = self.sel.eval2(env)
        return (self.a.eval2(env) & ~s) | (self.b.eval2(env) & s)

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        so, sz = self.sel.eval3(env)
        ao, az = self.a.eval3(env)
        bo, bz = self.b.eval3(env)
        # Known select picks one input; unknown select still yields a
        # known output when both inputs agree on a known value.
        ones = (sz & ao) | (so & bo) | (ao & bo)
        zeros = (sz & az) | (so & bz) | (az & bz)
        return ones, zeros

    def eval_prob(self, env: Dict[str, float]) -> float:
        ps = self.sel.eval_prob(env)
        return (1.0 - ps) * self.a.eval_prob(env) + ps * self.b.eval_prob(env)

    def _collect_support(self, acc: List[str]) -> None:
        self.sel._collect_support(acc)
        self.a._collect_support(acc)
        self.b._collect_support(acc)

    def __repr__(self) -> str:
        return f"mux({self.sel!r} ? {self.b!r} : {self.a!r})"


class Const(LogicExpr):
    """Constant 0 or 1 (tie cells)."""

    def __init__(self, value: int):
        if value not in (0, 1):
            raise ValueError("constant must be 0 or 1")
        self.value = value

    def eval2(self, env: Dict[str, Word]) -> Word:
        template = next(iter(env.values())) if env else np.zeros(1, np.uint64)
        return _full(template, self.value)

    def eval3(self, env: Dict[str, Tri]) -> Tri:
        if env:
            template = next(iter(env.values()))[0]
        else:  # standalone constant evaluation
            template = np.zeros(1, np.uint64)
        return _full(template, self.value), _full(template, 1 - self.value)

    def eval_prob(self, env: Dict[str, float]) -> float:
        return float(self.value)

    def _collect_support(self, acc: List[str]) -> None:
        pass

    def __repr__(self) -> str:
        return str(self.value)


def exhaustive_truth_table(expr: LogicExpr, pins: Sequence[str]) -> List[int]:
    """Exhaustive 2-valued truth table of ``expr`` over ``pins``.

    Returns a list of 0/1 output values indexed by the input minterm
    (pin 0 is the least-significant bit).  Used by tests and by SCOAP
    controllability computation for arbitrary cell functions.
    """
    n = len(pins)
    if n > 16:
        raise ValueError("truth table limited to 16 inputs")
    rows = 1 << n
    env = {}
    for bit, pin in enumerate(pins):
        bits = np.array(
            [(row >> bit) & 1 for row in range(rows)], dtype=np.uint64
        )
        env[pin] = bits  # one pattern per word LSB; mask below
    out = expr.eval2(env)
    return [int(v & np.uint64(1)) for v in out]
