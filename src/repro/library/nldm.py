"""Non-linear delay model (NLDM) lookup tables.

Cell delay and output slew are functions of input slew and output load,
stored as 2-D tables exactly as in Liberty files.  Values inside the
table range are bilinearly interpolated; values outside are linearly
extrapolated from the nearest table edge — and flagged, because the
paper (Section 4.4) calls cells evaluated by extrapolation *slow nodes*
and warns their numbers are less accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LookupResult:
    """Result of one NLDM table lookup.

    Attributes:
        value: Interpolated (or extrapolated) table value, in ps.
        extrapolated: True when (slew, load) fell outside the table
            range, i.e. the evaluated cell is a *slow node*.
    """

    value: float
    extrapolated: bool


class NLDMTable:
    """A 2-D lookup table indexed by input slew (ps) and load (fF).

    Args:
        slews: Strictly increasing input-slew index, in ps.
        loads: Strictly increasing output-load index, in fF.
        values: Table values in ps, shape ``(len(slews), len(loads))``.
    """

    def __init__(
        self,
        slews: Sequence[float],
        loads: Sequence[float],
        values: Sequence[Sequence[float]],
    ):
        self.slews = np.asarray(slews, dtype=float)
        self.loads = np.asarray(loads, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.slews.ndim != 1 or self.loads.ndim != 1:
            raise ValueError("table indices must be one-dimensional")
        if np.any(np.diff(self.slews) <= 0) or np.any(np.diff(self.loads) <= 0):
            raise ValueError("table indices must be strictly increasing")
        if self.values.shape != (len(self.slews), len(self.loads)):
            raise ValueError(
                f"values shape {self.values.shape} does not match indices "
                f"({len(self.slews)}, {len(self.loads)})"
            )

    @classmethod
    def linear(
        cls,
        intrinsic_ps: float,
        ps_per_ff: float,
        ps_per_ps_slew: float,
        slews: Sequence[float] = (5.0, 50.0, 250.0, 1100.0),
        loads: Sequence[float] = (1.0, 10.0, 40.0, 170.0),
    ) -> "NLDMTable":
        """Build a table from a first-order delay model.

        ``delay = intrinsic + ps_per_ff * load + ps_per_ps_slew * slew``
        sampled on the given index grid, with a mild quadratic bend on
        the largest loads so interpolation is exercised realistically.
        """
        s = np.asarray(slews, dtype=float)
        c = np.asarray(loads, dtype=float)
        grid = (
            intrinsic_ps
            + ps_per_ff * c[None, :]
            + ps_per_ps_slew * s[:, None]
            + 0.002 * ps_per_ff * c[None, :] ** 1.5
        )
        return cls(s, c, grid)

    @property
    def max_slew(self) -> float:
        """Largest input slew covered by the table, in ps."""
        return float(self.slews[-1])

    @property
    def max_load(self) -> float:
        """Largest output load covered by the table, in fF."""
        return float(self.loads[-1])

    def lookup(self, slew_ps: float, load_ff: float) -> LookupResult:
        """Interpolate the table at ``(slew_ps, load_ff)``.

        Bilinear interpolation inside the grid; linear extrapolation
        (slope of the outermost segment) outside, with the result
        flagged as extrapolated.
        """
        extrapolated = (
            slew_ps < self.slews[0]
            or slew_ps > self.slews[-1]
            or load_ff < self.loads[0]
            or load_ff > self.loads[-1]
        )
        i, ws = self._bracket(self.slews, slew_ps)
        j, wl = self._bracket(self.loads, load_ff)
        v = self.values
        value = (
            v[i, j] * (1 - ws) * (1 - wl)
            + v[i + 1, j] * ws * (1 - wl)
            + v[i, j + 1] * (1 - ws) * wl
            + v[i + 1, j + 1] * ws * wl
        )
        return LookupResult(value=float(value), extrapolated=bool(extrapolated))

    @staticmethod
    def _bracket(index: np.ndarray, x: float) -> Tuple[int, float]:
        """Segment number and fractional position of ``x`` in ``index``.

        The fraction is not clamped, which makes the bilinear formula
        extrapolate linearly outside the grid.
        """
        i = int(np.searchsorted(index, x) - 1)
        i = max(0, min(i, len(index) - 2))
        frac = (x - index[i]) / (index[i + 1] - index[i])
        return i, float(frac)

    def intrinsic_ps(self) -> float:
        """Delay at near-zero slew and no load (paper's T_intrinsic).

        Extrapolates the table to ``slew = 0, load = 0``, matching the
        paper's definition of intrinsic delay ("input signal with
        near-zero slew ... without load on the cell output").
        """
        return self.lookup(0.0, 0.0).value
