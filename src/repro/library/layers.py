"""Metal layer stack of the 130 nm-class process.

Six metal layers, matching the paper's Philips 130 nm CMOS library.
Odd layers route horizontally, even layers vertically (HVH scheme with
M1 mostly reserved for intra-cell wiring).  Per-layer unit resistance
and capacitance feed the RC extractor; available routing tracks per
layer feed the global router's congestion model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class MetalLayer:
    """One metal layer.

    Attributes:
        name: Layer name (``"M1"`` ... ``"M6"``).
        index: 1-based layer number.
        direction: Preferred routing direction: ``"H"`` or ``"V"``.
        r_ohm_per_um: Wire resistance per um of length.
        c_ff_per_um: Wire capacitance per um of length.
        pitch_um: Track pitch, in um.
        signal_fraction: Fraction of tracks available to signal routing
            (the rest carry power/clock straps).
    """

    name: str
    index: int
    direction: str
    r_ohm_per_um: float
    c_ff_per_um: float
    pitch_um: float
    signal_fraction: float


#: Via resistance between adjacent layers, in ohm.
VIA_RESISTANCE_OHM = 4.0

#: Via capacitance, in fF (small, lumped at the via location).
VIA_CAPACITANCE_FF = 0.05


def metal_stack_130nm() -> List[MetalLayer]:
    """The six-layer stack used throughout this reproduction.

    Lower layers are thin (resistive, dense); upper layers are thick
    (fast, sparse).  M1 is intra-cell only; M6 carries power and the
    clock-tree trunks, so its signal fraction is low.
    """
    return [
        MetalLayer("M1", 1, "H", 0.40, 0.20, 0.41, 0.10),
        MetalLayer("M2", 2, "V", 0.85, 0.21, 0.41, 0.80),
        MetalLayer("M3", 3, "H", 0.85, 0.21, 0.41, 0.80),
        MetalLayer("M4", 4, "V", 0.35, 0.22, 0.55, 0.75),
        MetalLayer("M5", 5, "H", 0.35, 0.22, 0.55, 0.75),
        MetalLayer("M6", 6, "V", 0.05, 0.25, 0.82, 0.30),
    ]


def signal_layers(stack: List[MetalLayer]) -> List[MetalLayer]:
    """Layers available for signal routing (M2..M5 in this stack)."""
    return [layer for layer in stack if 2 <= layer.index <= 5]


def average_signal_rc(stack: List[MetalLayer]) -> Tuple[float, float]:
    """Track-weighted average (r_ohm_per_um, c_ff_per_um) of signal layers.

    Used for quick pre-route wire estimates; the extractor uses the real
    per-layer values of the routed segments.
    """
    layers = signal_layers(stack)
    weights = [layer.signal_fraction / layer.pitch_um for layer in layers]
    total = sum(weights)
    r = sum(l.r_ohm_per_um * w for l, w in zip(layers, weights)) / total
    c = sum(l.c_ff_per_um * w for l, w in zip(layers, weights)) / total
    return r, c
