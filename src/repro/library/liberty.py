"""Liberty (.lib) export of the cell library.

Writes the timing subset of the Liberty format — cells, pins with
directions and capacitances, NLDM ``cell_rise``/``rise_transition``
lookup groups per timing arc, sequential ``ff`` groups with setup/hold
constraints — so the synthetic 130 nm-class library can be inspected
with standard tooling and diffed like a real vendor deck.

A small reader (:func:`parse_liberty_cells`) recovers the structural
inventory from the text; it exists for round-trip tests, not as a full
Liberty parser.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.library.cell import Library, LibraryCell
from repro.library.nldm import NLDMTable


def _format_table(name: str, table: NLDMTable, indent: str) -> List[str]:
    slews = ", ".join(f"{v:.3f}" for v in table.slews)
    loads = ", ".join(f"{v:.4f}" for v in table.loads)
    rows = [
        '\\\n' + indent + '    "'
        + ", ".join(f"{v:.4f}" for v in row) + '"'
        for row in table.values
    ]
    return [
        f"{indent}{name} (delay_template) {{",
        f'{indent}  index_1 ("{slews}");',
        f'{indent}  index_2 ("{loads}");',
        f"{indent}  values ({', '.join(r.strip() for r in rows)});",
        f"{indent}}}",
    ]


def _cell_block(cell: LibraryCell) -> List[str]:
    lines = [f"  cell ({cell.name}) {{"]
    lines.append(f"    area : {cell.area_um2:.4f};")
    if cell.is_filler:
        lines.append("    cell_leakage_power : 0.0;")
        lines.append("  }")
        return lines
    seq = cell.sequential
    if seq is not None:
        lines.append(f'    ff ("IQ", "IQN") {{')
        lines.append(f'      clocked_on : "{seq.clock_pin}";')
        lines.append(f'      next_state : "{seq.data_pin}";')
        lines.append("    }")
    for pin in cell.pins.values():
        lines.append(f"    pin ({pin.name}) {{")
        lines.append(f"      direction : {pin.direction};")
        if pin.direction == "input":
            lines.append(f"      capacitance : {pin.cap_ff:.4f};")
            if pin.is_clock:
                lines.append("      clock : true;")
            if seq is not None and pin.name == seq.data_pin:
                lines.append("      timing () {")
                lines.append("        timing_type : setup_rising;")
                lines.append(
                    f"        related_pin : \"{seq.clock_pin}\";"
                )
                lines.append(
                    f"        /* setup {seq.setup_ps:.1f} ps,"
                    f" hold {seq.hold_ps:.1f} ps */"
                )
                lines.append("      }")
        else:
            lines.append(f"      max_capacitance : {cell.max_cap_ff:.2f};")
            for arc in cell.arcs_to(pin.name):
                lines.append("      timing () {")
                lines.append(f'        related_pin : "{arc.from_pin}";')
                lines.extend(_format_table(
                    "cell_rise", arc.delay, "        "
                ))
                lines.extend(_format_table(
                    "rise_transition", arc.slew, "        "
                ))
                lines.append("      }")
        lines.append("    }")
    lines.append("  }")
    return lines


def to_liberty(library: Library) -> str:
    """Render the library as Liberty text."""
    lines = [
        f"library ({library.name}) {{",
        "  delay_model : table_lookup;",
        "  time_unit : \"1ps\";",
        "  capacitive_load_unit (1, ff);",
        "  lu_table_template (delay_template) {",
        "    variable_1 : input_net_transition;",
        "    variable_2 : total_output_net_capacitance;",
        "  }",
    ]
    for name in sorted(library.cells):
        lines.extend(_cell_block(library.cells[name]))
    lines.append("}")
    return "\n".join(lines) + "\n"


_CELL_RE = re.compile(r"^\s*cell \((\w+)\) \{")
_PIN_RE = re.compile(r"^\s*pin \((\w+)\) \{")
_AREA_RE = re.compile(r"^\s*area : ([0-9.]+);")


def parse_liberty_cells(text: str) -> Dict[str, Dict]:
    """Recover the cell inventory from Liberty text (round-trip aid).

    Returns, per cell: its area and pin-name list.
    """
    cells: Dict[str, Dict] = {}
    current = None
    for line in text.splitlines():
        cell_match = _CELL_RE.match(line)
        if cell_match:
            current = cell_match.group(1)
            cells[current] = {"area": None, "pins": []}
            continue
        if current is None:
            continue
        area_match = _AREA_RE.match(line)
        if area_match and cells[current]["area"] is None:
            cells[current]["area"] = float(area_match.group(1))
        pin_match = _PIN_RE.match(line)
        if pin_match:
            cells[current]["pins"].append(pin_match.group(1))
    return cells
