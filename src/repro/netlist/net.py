"""Net: a single electrical node connecting one driver to many sinks.

A :class:`Net` stores connectivity only; electrical data (extracted RC,
routed segments) live in the layout/extraction layers and reference nets
by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: A pin reference: ``(instance_name, pin_name)``.  Ports (primary inputs
#: and outputs) use the reserved instance name ``"@port"``.
PinRef = Tuple[str, str]

#: Reserved pseudo-instance name used for circuit ports in pin references.
PORT = "@port"


@dataclass
class Net:
    """One net in a gate-level netlist.

    Attributes:
        name: Unique net name within the circuit.
        driver: The pin driving this net, or ``None`` while unconnected.
            Primary inputs are driven by ``(PORT, <port_name>)``.
        sinks: Pins reading this net.  A primary output appears as the
            sink ``(PORT, <port_name>)``.
    """

    name: str
    driver: Optional[PinRef] = None
    sinks: List[PinRef] = field(default_factory=list)

    def add_sink(self, inst: str, pin: str) -> None:
        """Attach a sink pin; duplicate attachments are rejected."""
        ref = (inst, pin)
        if ref in self.sinks:
            raise ValueError(f"pin {ref} already a sink of net {self.name!r}")
        self.sinks.append(ref)

    def remove_sink(self, inst: str, pin: str) -> None:
        """Detach a sink pin; missing attachments are rejected."""
        try:
            self.sinks.remove((inst, pin))
        except ValueError:
            raise ValueError(
                f"pin ({inst!r}, {pin!r}) is not a sink of net {self.name!r}"
            ) from None

    @property
    def fanout(self) -> int:
        """Number of sink pins on the net."""
        return len(self.sinks)

    @property
    def is_primary_input(self) -> bool:
        """True when the net is driven directly by a circuit port."""
        return self.driver is not None and self.driver[0] == PORT

    @property
    def drives_primary_output(self) -> bool:
        """True when at least one sink is a circuit output port."""
        return any(inst == PORT for inst, _ in self.sinks)

    def instance_sinks(self) -> List[PinRef]:
        """Sinks that are real instance pins (ports filtered out)."""
        return [ref for ref in self.sinks if ref[0] != PORT]
