"""Synthesis-style electrical DRC fixes: fanout buffering, driver sizing.

The paper's netlists come out of logic synthesis, which bounds net
fanout and sizes drivers to their loads before layout ever starts.  The
profile-generated netlists (and the nets TPI/scan insertion create —
a TSFF output inherits its net's whole fanout, and the TR/TE control
nets fan out to every test cell) need the same treatment, otherwise
slews snowball and the timing results mean nothing.

Two passes, both run before floorplanning:

* :func:`fix_fanout` — nets driving more than ``max_fanout`` sinks get
  a balanced buffer tree (applied recursively, so very large nets get
  multiple levels);
* :func:`upsize_drivers` — cells whose estimated output load exceeds
  their legal maximum are swapped to a stronger drive of the same
  family.

Clock nets are skipped: clock-tree synthesis owns them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.library.cell import Library, LibraryCell
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT


@dataclass
class DrcReport:
    """Outcome of the electrical fix passes.

    Attributes:
        buffers_added: Buffer instances inserted by fanout fixing.
        drivers_upsized: Cells swapped to a stronger drive.
    """

    buffers_added: int = 0
    drivers_upsized: int = 0


def _clock_nets(circuit: Circuit) -> Set[str]:
    return {dom.net for dom in circuit.clocks}


def estimated_load_ff(circuit: Circuit, net_name: str,
                      wire_ff_per_sink: float = 4.0) -> float:
    """Pre-route load estimate: pin caps plus a wireload allowance.

    The wireload term mirrors synthesis wireload models: each sink adds
    a per-connection wiring allowance (4 fF ~ a few tens of um of
    mid-stack metal), which is what drives pre-layout sizing.
    """
    net = circuit.nets[net_name]
    load = 0.0
    for inst, pin in net.sinks:
        if inst == PORT:
            load += 2.0
        else:
            load += circuit.instances[inst].cell.pin_cap_ff(pin)
    return load + wire_ff_per_sink * len(net.sinks)


def fix_fanout(circuit: Circuit, library: Library,
               max_fanout: int = 8) -> DrcReport:
    """Bound every data net's fanout with buffer trees, in place.

    Args:
        circuit: Netlist to fix.
        library: Library providing buffers (the strongest ``BUF``
            drive is used).
        max_fanout: Maximum sinks per net after the pass.

    Returns:
        Insertion counts.
    """
    report = DrcReport()
    buffer_cell = library.family("BUF")[-1]
    clock_nets = _clock_nets(circuit)
    worklist = [
        name for name, net in circuit.nets.items()
        if len(net.sinks) > max_fanout and name not in clock_nets
    ]
    while worklist:
        net_name = worklist.pop()
        net = circuit.nets.get(net_name)
        if net is None or len(net.sinks) <= max_fanout:
            continue
        sinks = list(net.sinks)
        groups = [
            sinks[i:i + max_fanout]
            for i in range(0, len(sinks), max_fanout)
        ]
        for group in groups:
            new_net = circuit.split_net_before_sinks(net_name, group, "fo")
            buf = circuit.new_instance_name("fobuf")
            circuit.add_instance(
                buf, buffer_cell, {"A": net_name, "Z": new_net.name}
            )
            report.buffers_added += 1
        # The original net now drives only the buffers; if there are
        # more than max_fanout buffer groups, recurse on it.
        if len(circuit.nets[net_name].sinks) > max_fanout:
            worklist.append(net_name)
    return report


def _family_base(cell: LibraryCell) -> str:
    name = cell.name
    if "_X" in name:
        return name.rsplit("_X", 1)[0]
    return name


def upsize_drivers(circuit: Circuit, library: Library) -> DrcReport:
    """Swap overloaded drivers to stronger drives, in place.

    A cell is upsized when the estimated load on its output exceeds the
    cell's ``max_cap_ff``; the weakest family member that can legally
    drive the load is chosen.  Cells without stronger variants (e.g.
    flip-flops in this library) are left alone — they become the slow
    nodes the paper reports rather than fixes.
    """
    report = DrcReport()
    for inst in list(circuit.instances.values()):
        cell = inst.cell
        if cell.is_sequential or cell.is_filler:
            continue
        over = False
        worst_load = 0.0
        # Upsize at 60% of the legal maximum: synthesis margins both
        # the max-cap and max-transition rules, and the unknown routed
        # wire cap lands on top of this estimate.
        threshold = 0.6 * cell.max_cap_ff
        for _, net in inst.output_conns():
            load = estimated_load_ff(circuit, net)
            worst_load = max(worst_load, load)
            if load > threshold:
                over = True
        if not over:
            continue
        family = library.family(_family_base(cell))
        for candidate in family:
            if candidate.drive > cell.drive and (
                0.6 * candidate.max_cap_ff >= worst_load
                or candidate is family[-1]
            ):
                circuit.swap_cell(inst.name, candidate)
                report.drivers_upsized += 1
                break
    return report


def fix_electrical(circuit: Circuit, library: Library,
                   max_fanout: int = 8) -> DrcReport:
    """Run both passes; returns the combined report."""
    report = fix_fanout(circuit, library, max_fanout=max_fanout)
    sized = upsize_drivers(circuit, library)
    report.drivers_upsized = sized.drivers_upsized
    return report
