"""Levelisation and combinational views of a sequential netlist.

Full-scan DFT reasons about the *combinational core*: every flip-flop
output is a pseudo primary input (controllable through the scan chain)
and every flip-flop data input is a pseudo primary output (observable
through scan capture).  This module extracts that view, in two flavours:

* ``mode="test"`` — scan-capture mode (TE=0, TR=1).  All sequential
  cells, including TSFFs, are cut: their Q nets become pseudo inputs,
  their D pins pseudo outputs.  This is the view ATPG and testability
  analysis use, and it is exactly why a TSFF is simultaneously a control
  point and an observation point (paper Section 3.1).
* ``mode="functional"`` — application mode (TE=0, TR=0).  Plain and
  scan flip-flops are cut as before, but TSFFs are *transparent*: their
  Q combinationally equals their D.  This view is used to check that
  test-point insertion does not alter circuit function.

The view also records which nets are held constant (clocks, global
scan-enable / TR nets) so simulators never treat them as free inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.library.logic import LogicExpr, Var
from repro.netlist.circuit import Circuit
from repro.netlist.instance import Instance
from repro.netlist.net import PORT, PinRef


@dataclass(eq=False)
class CombNode:
    """One evaluable node of a combinational view.

    Attributes:
        inst: The underlying instance.
        out_net: Net driven by the node.
        expr: Logic function producing the output from input *pins*.
        pin_nets: Mapping pin -> net for the expression's support.
        level: Topological level (inputs are level 0).
    """

    inst: Instance
    out_net: str
    expr: LogicExpr
    pin_nets: Dict[str, str]
    level: int = 0


@dataclass
class CombView:
    """A levelised combinational view of a circuit.

    Attributes:
        circuit: The underlying netlist.
        mode: ``"test"`` or ``"functional"``.
        input_nets: Controllable nets (PIs and pseudo-PIs), in order.
        output_refs: Observable points as ``(net, (inst, pin))`` pairs:
            primary outputs use the ``(PORT, name)`` pin reference,
            pseudo outputs reference the capturing flip-flop data pin.
        nodes: Evaluable nodes in topological order.
        constants: Nets held at fixed values in this mode.
    """

    circuit: Circuit
    mode: str
    input_nets: List[str] = field(default_factory=list)
    output_refs: List[Tuple[str, PinRef]] = field(default_factory=list)
    nodes: List[CombNode] = field(default_factory=list)
    constants: Dict[str, int] = field(default_factory=dict)

    @property
    def output_nets(self) -> List[str]:
        """Observable net names (one per output reference)."""
        return [net for net, _ in self.output_refs]

    def node_by_output(self) -> Dict[str, CombNode]:
        """Index nodes by their driven net."""
        return {node.out_net: node for node in self.nodes}

    def fanout_index(self) -> Dict[str, List[CombNode]]:
        """Map each net to the view nodes reading it."""
        index: Dict[str, List[CombNode]] = {}
        for node in self.nodes:
            for net in node.pin_nets.values():
                index.setdefault(net, []).append(node)
        return index

    def max_level(self) -> int:
        """Deepest node level (0 when the view has no nodes)."""
        return max((node.level for node in self.nodes), default=0)


class CombinationalLoopError(ValueError):
    """Raised when the extracted view contains a combinational cycle."""


def _control_nets(circuit: Circuit) -> Set[str]:
    """Nets that carry clocks or global test-control signals."""
    controls: Set[str] = {dom.net for dom in circuit.clocks}
    for inst in circuit.instances.values():
        seq = inst.cell.sequential
        if seq is None:
            continue
        for pin in (seq.clock_pin, seq.scan_enable, seq.test_point_enable):
            if pin is not None and pin in inst.conns:
                controls.add(inst.conns[pin])
    return controls


def extract_comb_view(circuit: Circuit, mode: str = "test") -> CombView:
    """Build the levelised combinational view of ``circuit``.

    Args:
        circuit: Netlist to analyse.
        mode: ``"test"`` for the scan-capture view, ``"functional"``
            for the application-mode view with transparent TSFFs.

    Raises:
        CombinationalLoopError: The view contains a combinational cycle
            (possible in functional mode if TSFF transparency closes a
            loop through sequential bypasses).
    """
    if mode not in ("test", "functional"):
        raise ValueError(f"unknown mode {mode!r}")
    view = CombView(circuit=circuit, mode=mode)
    controls = _control_nets(circuit)

    # Mode constants: clocks idle low, TE=0 always; TR=1 in capture so
    # TSFF outputs come from the flop, TR=0 in application mode.
    tr_value = 1 if mode == "test" else 0
    for net in controls:
        view.constants[net] = 0
    for inst in circuit.instances.values():
        seq = inst.cell.sequential
        if seq is None or seq.test_point_enable is None:
            continue
        tr_net = inst.conns.get(seq.test_point_enable)
        if tr_net is not None:
            view.constants[tr_net] = tr_value

    # Controllable nets: non-control primary inputs, plus FF outputs
    # (except transparent TSFFs in functional mode).
    for name in circuit.inputs:
        if name not in controls:
            view.input_nets.append(name)

    pending: List[CombNode] = []
    for inst in circuit.instances.values():
        cell = inst.cell
        if cell.is_filler:
            continue
        seq = cell.sequential
        if seq is not None:
            transparent = mode == "functional" and cell.is_tsff
            q_net = inst.conns.get(seq.output_pin)
            if transparent:
                d_net = inst.conns.get(seq.data_pin)
                if q_net is not None and d_net is not None:
                    pending.append(CombNode(
                        inst=inst,
                        out_net=q_net,
                        expr=Var(seq.data_pin),
                        pin_nets={seq.data_pin: d_net},
                    ))
            else:
                if q_net is not None:
                    view.input_nets.append(q_net)
                d_net = inst.conns.get(seq.data_pin)
                if d_net is not None:
                    view.output_refs.append(
                        (d_net, (inst.name, seq.data_pin))
                    )
            continue
        # Combinational cell: one node per connected output pin.
        for out_pin, net in inst.output_conns():
            expr = cell.functions[out_pin]
            pin_nets = {}
            for pin in expr.support():
                pin_net = inst.conns.get(pin)
                if pin_net is None:
                    raise ValueError(
                        f"{inst.name}.{pin} is unconnected but used by "
                        f"the function of {cell.name}"
                    )
                pin_nets[pin] = pin_net
            pending.append(CombNode(
                inst=inst, out_net=net, expr=expr, pin_nets=pin_nets
            ))

    # Primary outputs are observable.
    for port in circuit.outputs:
        view.output_refs.append((circuit.output_net(port), (PORT, port)))

    view.nodes = _topo_sort(pending, view)
    return view


def _topo_sort(pending: List[CombNode], view: CombView) -> List[CombNode]:
    """Kahn topological sort of view nodes; assigns levels."""
    known: Dict[str, int] = {net: 0 for net in view.input_nets}
    for net in view.constants:
        known.setdefault(net, 0)

    by_input: Dict[str, List[CombNode]] = {}
    missing: Dict[int, int] = {}
    for idx, node in enumerate(pending):
        # First-seen-order dedupe (dict.fromkeys), NOT set(): set
        # iteration order depends on the process hash seed, and the
        # order here decides the ready-queue order and therefore the
        # within-level node order every downstream consumer sees.
        needed = [n for n in dict.fromkeys(node.pin_nets.values())
                  if n not in known]
        missing[idx] = len(needed)
        for net in needed:
            by_input.setdefault(net, []).append(node)

    index_of = {id(node): idx for idx, node in enumerate(pending)}
    ready = [node for node in pending if missing[index_of[id(node)]] == 0]
    ordered: List[CombNode] = []
    while ready:
        node = ready.pop()
        node.level = 1 + max(
            (known[n] for n in node.pin_nets.values()), default=0
        )
        known[node.out_net] = node.level
        ordered.append(node)
        for waiter in by_input.get(node.out_net, []):
            widx = index_of[id(waiter)]
            missing[widx] -= 1
            if missing[widx] == 0:
                ready.append(waiter)

    if len(ordered) != len(pending):
        done = {id(n) for n in ordered}
        stuck = [n.inst.name for n in pending if id(n) not in done][:10]
        raise CombinationalLoopError(
            f"combinational cycle or undriven net; unresolved nodes "
            f"include {stuck}"
        )
    ordered.sort(key=lambda n: n.level)
    return ordered
