"""Netlist sanity checks run between flow steps.

Rewriting passes (TPI, scan stitching, ECO) edit the netlist in place;
:func:`validate` is the cheap structural audit that catches a bad edit
before it turns into a mysterious downstream failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT


@dataclass
class ValidationReport:
    """Outcome of a netlist validation pass.

    Attributes:
        errors: Structural violations that make the netlist unusable.
        warnings: Suspicious but legal constructs (dangling outputs...).
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def raise_on_error(self) -> None:
        """Raise ``ValueError`` listing the first few errors, if any."""
        if self.errors:
            shown = "; ".join(self.errors[:5])
            more = f" (+{len(self.errors) - 5} more)" if len(self.errors) > 5 else ""
            raise ValueError(f"netlist validation failed: {shown}{more}")


def validate(circuit: Circuit) -> ValidationReport:
    """Run all structural checks on ``circuit``.

    Checks: every net driven, every non-filler instance pin connected,
    sink/driver back-references consistent, clock pins tied to declared
    clock domains, ports consistent.
    """
    report = ValidationReport()
    clock_nets = {dom.net for dom in circuit.clocks}

    for name, net in circuit.nets.items():
        if net.driver is None:
            report.errors.append(f"net {name!r} has no driver")
        elif net.driver[0] != PORT:
            inst_name, pin = net.driver
            inst = circuit.instances.get(inst_name)
            if inst is None:
                report.errors.append(
                    f"net {name!r} driven by missing instance {inst_name!r}"
                )
            elif inst.conns.get(pin) != name:
                report.errors.append(
                    f"driver back-reference of net {name!r} is stale"
                )
        if not net.sinks:
            report.warnings.append(f"net {name!r} has no sinks (dangling)")
        for inst_name, pin in net.sinks:
            if inst_name == PORT:
                continue
            inst = circuit.instances.get(inst_name)
            if inst is None:
                report.errors.append(
                    f"net {name!r} read by missing instance {inst_name!r}"
                )
            elif inst.conns.get(pin) != name:
                report.errors.append(
                    f"sink back-reference ({inst_name}.{pin}) of net "
                    f"{name!r} is stale"
                )

    for name, inst in circuit.instances.items():
        if inst.cell.is_filler:
            continue
        for pin_name, pin in inst.cell.pins.items():
            if pin_name not in inst.conns:
                report.errors.append(
                    f"pin {name}.{pin_name} ({inst.cell.name}) unconnected"
                )
            elif pin.is_clock and inst.conns[pin_name] not in clock_nets:
                # Clock pins may legally hang off clock-tree buffers, so
                # accept nets driven by clock buffers too.
                driver = circuit.driver_instance(inst.conns[pin_name])
                if driver is None or not driver.cell.is_clock_buffer:
                    report.errors.append(
                        f"clock pin {name}.{pin_name} tied to "
                        f"{inst.conns[pin_name]!r}, not a clock domain "
                        f"or clock-tree net"
                    )

    for port in circuit.outputs:
        net = circuit.output_net(port)
        if net not in circuit.nets:
            report.errors.append(f"output port {port!r} reads missing net")
        elif (PORT, port) not in circuit.nets[net].sinks:
            report.errors.append(f"output port {port!r} not a sink of {net!r}")
    for port in circuit.inputs:
        if port not in circuit.nets:
            report.errors.append(f"input port {port!r} has no net")
        elif circuit.nets[port].driver != (PORT, port):
            report.errors.append(f"input net {port!r} not driven by its port")

    return report
