"""Netlist sanity checks run between flow steps.

Rewriting passes (TPI, scan stitching, ECO) edit the netlist in place;
:func:`validate` is the cheap structural audit that catches a bad edit
before it turns into a mysterious downstream failure.

Since the introduction of :mod:`repro.lint`, the checks themselves live
in the netlist rule pack (:mod:`repro.lint.netlist_rules`, the rules
marked *structural*) and this module is a thin façade: it runs that
subset through the shared engine and wraps the result in the
historical :class:`ValidationReport` shape, whose ``errors`` /
``warnings`` string lists many call sites still read.  New code should
prefer the :class:`repro.lint.Diagnostic` view (:attr:`diagnostics`),
which carries rule IDs, severities and fix hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.lint.core import ERROR, LintReport, WARNING, Diagnostic
from repro.netlist.circuit import Circuit


@dataclass
class ValidationReport:
    """Outcome of a netlist validation pass.

    Attributes:
        report: The underlying engine report with full
            :class:`~repro.lint.Diagnostic` findings.
    """

    report: LintReport = field(default_factory=LintReport)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """All findings, most severe first."""
        return self.report.diagnostics

    @property
    def errors(self) -> List[str]:
        """Error messages (back-compat string view).

        The full structured findings — rule IDs, objects, hints — stay
        available via :attr:`diagnostics`.
        """
        return [d.message for d in self.report.error_diagnostics]

    @property
    def warnings(self) -> List[str]:
        """Warning messages (back-compat string view)."""
        return [d.message for d in self.report.warning_diagnostics]

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return self.report.ok

    def raise_on_error(self) -> None:
        """Raise :class:`repro.lint.LintError` when errors are present.

        The exception message lists the first few findings *with their
        rule IDs*; the complete list stays reachable through the
        exception's ``report`` / ``diagnostics`` attributes (and via
        this report), so nothing is lost to message truncation.
        """
        self.report.raise_on_error(context="netlist validation")


def validate(circuit: Circuit) -> ValidationReport:
    """Run the structural checks on ``circuit``.

    Checks (rule IDs from the netlist pack): every net driven exactly
    once (NL001/NL002), dangling nets (NL003), every non-filler
    instance pin connected (NL004), sink/driver back-references
    consistent (NL005), ports consistent (NL006), and clock pins tied
    to declared clock domains or clock-tree nets (DFT002).

    The full DFT audit — combinational loops, scan-chain continuity,
    chain balance, test-enable fanout, test-point clock domains — is
    the wider pack behind :func:`repro.lint.lint_netlist` and the
    ``FlowConfig.lint`` gate.
    """
    from repro.lint.netlist_rules import lint_netlist

    return ValidationReport(
        report=lint_netlist(circuit, structural_only=True)
    )
