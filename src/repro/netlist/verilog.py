"""Structural Verilog export / import of flat gate-level netlists.

The dialect is the strict subset every physical-design tool exchanges:
one flat module, ``input``/``output``/``wire`` declarations, and named
port instantiations of library cells::

    module top (clk, a, b, y);
      input clk;
      input a, b;
      output y;
      wire n1;
      NAND2_X1 u1 (.A(a), .B(b), .Z(n1));
      DFF_X1 r1 (.D(n1), .CLK(clk), .Q(y));
    endmodule

Clock-domain periods are carried in a ``// repro:clock`` comment so a
write/read round trip is lossless.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.library.cell import Library
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT

_IDENT = r"[A-Za-z_][A-Za-z0-9_$\[\]\.]*"
_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(rf"(input|output|wire)\s+(.*?);", re.S)
_INST_RE = re.compile(rf"({_IDENT})\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_CONN_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")
_CLOCK_RE = re.compile(rf"//\s*repro:clock\s+({_IDENT})\s+([0-9.]+)")


def to_verilog(circuit: Circuit) -> str:
    """Render ``circuit`` as structural Verilog text."""
    ports = circuit.inputs + circuit.outputs
    lines: List[str] = []
    for dom in circuit.clocks:
        lines.append(f"// repro:clock {dom.net} {dom.period_ps}")
    lines.append(f"module {circuit.name} ({', '.join(ports)});")
    for name in circuit.inputs:
        lines.append(f"  input {name};")
    for name in circuit.outputs:
        lines.append(f"  output {name};")
    port_nets = set(circuit.inputs) | {
        p for p in circuit.outputs if circuit.output_net(p) == p
    }
    for name in circuit.nets:
        if name not in port_nets:
            lines.append(f"  wire {name};")
    # Output ports that alias an internal net need an assign.
    for port in circuit.outputs:
        net = circuit.output_net(port)
        if net != port:
            lines.append(f"  assign {port} = {net};")
    for inst in circuit.instances.values():
        conns = ", ".join(
            f".{pin}({net})" for pin, net in sorted(inst.conns.items())
        )
        lines.append(f"  {inst.cell.name} {inst.name} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def from_verilog(text: str, library: Library) -> Circuit:
    """Parse structural Verilog back into a :class:`Circuit`.

    Args:
        text: Verilog source in the subset produced by :func:`to_verilog`,
            including ``assign port = net;`` aliases of output ports.
        library: Library resolving cell names.
    """
    text = re.sub(r"//(?!\s*repro:clock).*", "", text)
    clocks: Dict[str, float] = {
        m.group(1): float(m.group(2)) for m in _CLOCK_RE.finditer(text)
    }
    text = re.sub(r"//.*", "", text)

    module = _MODULE_RE.search(text)
    if module is None:
        raise ValueError("no module declaration found")
    circuit = Circuit(module.group(1))
    body = text[module.end():]

    inputs: List[str] = []
    outputs: List[str] = []
    wires: List[str] = []
    for kind, names in _DECL_RE.findall(body):
        split = [n.strip() for n in names.split(",") if n.strip()]
        {"input": inputs, "output": outputs, "wire": wires}[kind].extend(split)

    for name in inputs:
        if name in clocks:
            circuit.add_clock(name, clocks[name])
        else:
            circuit.add_input(name)
    for name in wires:
        circuit.add_net(name)

    assign_re = re.compile(rf"assign\s+({_IDENT})\s*=\s*({_IDENT})\s*;")
    aliases = {lhs: rhs for lhs, rhs in assign_re.findall(body)}
    for name in outputs:
        if name not in aliases and name not in circuit.nets:
            circuit.add_net(name)

    decl_or_module = re.compile(
        r"^\s*(module|input|output|wire|endmodule|assign)\b"
    )
    for match in _INST_RE.finditer(body):
        cell_name, inst_name, conn_text = match.groups()
        if decl_or_module.match(match.group(0)):
            continue
        if cell_name not in library:
            raise KeyError(f"unknown library cell {cell_name!r}")
        conns = {pin: net for pin, net in _CONN_RE.findall(conn_text)}
        circuit.add_instance(inst_name, library[cell_name], conns)

    for name in outputs:
        net = aliases.get(name, name)
        circuit.nets[net].add_sink(PORT, name)
        circuit.outputs.append(name)
        circuit._output_net[name] = net
    return circuit
