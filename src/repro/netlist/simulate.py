"""Cycle-accurate sequential simulation.

Simulates a full netlist clock by clock: combinational settling via the
application-mode (functional) view, then an edge on selected clock
domains updating every flip-flop from its ``next_state`` expression
(which honours TE for scan shifting).  Bit-parallel like the rest of
the stack: each signal carries one word, so 64 independent sequences
simulate at once.

This is the ground truth the DFT machinery is tested against: scan
shift really shifts, scan capture really captures what the functional
logic computed, and TSFFs really behave per Fig. 1 — all observed on
the sequential machine rather than inferred from combinational views.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.atpg.simulator import BitSimulator
from repro.library.cmos130 import STATE_PIN
from repro.netlist.circuit import Circuit
from repro.netlist.levelize import extract_comb_view


class SequentialSimulator:
    """Clocked simulation of a flat netlist.

    Args:
        circuit: Netlist to simulate (scan cells supported).
        width: Patterns simulated in parallel (bits per word).
    """

    def __init__(self, circuit: Circuit, width: int = 64):
        self.circuit = circuit
        self.width = width
        self.mask = (1 << width) - 1
        # The functional view treats TSFF outputs via their bypass; for
        # cycle accuracy we need the *test* view (every FF is a state
        # boundary) plus explicit bypass evaluation for TSFF outputs.
        self.view = extract_comb_view(circuit, "test")
        self.sim = BitSimulator(self.view, width=width)
        self.state: Dict[str, int] = {
            inst.name: 0
            for inst in circuit.instances.values()
            if inst.is_sequential
        }
        self.inputs: Dict[str, int] = {
            name: 0 for name in circuit.inputs
        }
        self._values: Optional[List[int]] = None

    # ------------------------------------------------------------------
    def set_input(self, name: str, word: int) -> None:
        """Drive a primary input with a pattern word."""
        if name not in self.inputs:
            raise KeyError(f"unknown input {name!r}")
        self.inputs[name] = word & self.mask
        self._values = None

    def _settle(self) -> List[int]:
        """Combinational settling under the current state and inputs."""
        if self._values is not None:
            return self._values
        words = dict(self.inputs)
        # Constants of the view (clock lines, TR) are overridden by the
        # real input values the testbench drives.
        for inst in self.circuit.instances.values():
            seq = inst.cell.sequential
            if seq is None:
                continue
            q_net = inst.conns.get(seq.output_pin)
            if q_net is None:
                continue
            if inst.cell.is_tsff:
                # Q = bypass(D, TI, TE, TR, state): evaluate after the
                # first settling pass using the pin values seen there.
                continue
            words[q_net] = self.state[inst.name]
        values = self.sim.run(words)

        # TSFF bypass outputs need a fixed-point pass: their Q values
        # feed logic which may feed other TSFFs.  Levels are respected
        # by iterating until stable (small numbers of TSFFs converge in
        # one or two rounds).
        tsffs = [
            inst for inst in self.circuit.instances.values()
            if inst.cell.is_tsff
        ]
        for _ in range(max(1, len(tsffs))):
            changed = False
            for inst in tsffs:
                seq = inst.cell.sequential
                env = {}
                for pin in seq.bypass.support():
                    if pin == STATE_PIN:
                        env[pin] = self.state[inst.name]
                    else:
                        net = inst.conns[pin]
                        env[pin] = values[self.sim.net_index[net]]
                q = seq.bypass.eval2(env) & self.mask
                q_net = inst.conns[seq.output_pin]
                idx = self.sim.net_index[q_net]
                if values[idx] != q:
                    words[q_net] = q
                    changed = True
            if not changed:
                break
            values = self.sim.run(words)
        self._values = values
        return values

    # ------------------------------------------------------------------
    def net_value(self, net: str) -> int:
        """Settled value of a net under the current state/inputs."""
        values = self._settle()
        return values[self.sim.net_index[net]] & self.mask

    def output_value(self, port: str) -> int:
        """Settled value at a primary output port."""
        return self.net_value(self.circuit.output_net(port))

    def clock_edge(self, domains: Optional[Iterable[str]] = None) -> None:
        """Apply one rising edge on the given clock domains (all by
        default): every flip-flop in them captures its next state."""
        values = self._settle()
        if domains is None:
            domains = [d.net for d in self.circuit.clocks]
        domain_set = set(domains)
        new_state: Dict[str, int] = {}
        for inst in self.circuit.instances.values():
            seq = inst.cell.sequential
            if seq is None:
                continue
            clock = self.circuit.clock_of(inst.name)
            if clock not in domain_set:
                continue
            env = {}
            for pin in seq.next_state.support():
                net = inst.conns[pin]
                env[pin] = values[self.sim.net_index[net]]
            new_state[inst.name] = seq.next_state.eval2(env) & self.mask
        self.state.update(new_state)
        self._values = None

    def load_state(self, state: Dict[str, int]) -> None:
        """Overwrite flip-flop contents (e.g. a parallel scan load)."""
        for name, word in state.items():
            if name not in self.state:
                raise KeyError(f"unknown flip-flop {name!r}")
            self.state[name] = word & self.mask
        self._values = None
