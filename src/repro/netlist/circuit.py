"""Circuit: a flat gate-level netlist of library-cell instances and nets.

The circuit is the central mutable object of the whole flow: test-point
insertion, scan stitching and ECO steps all rewrite it in place, while
analysis passes (testability, ATPG, STA) read it.

Conventions
-----------
* A primary input port ``p`` drives the net named ``p`` (driver
  ``(PORT, p)``).
* A primary output port ``p`` is the sink ``(PORT, p)`` on some net.
* Clock nets are regular nets listed in :attr:`Circuit.clocks` together
  with their target period; flip-flop CLK pins connect to them.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.netlist.instance import Instance
from repro.netlist.net import PORT, Net, PinRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.library.cell import LibraryCell


@dataclass
class ClockDomain:
    """A clock net together with its target period.

    Attributes:
        net: Name of the clock net (also a primary input).
        period_ps: Target clock period in picoseconds.
    """

    net: str
    period_ps: float


class Circuit:
    """A flat gate-level netlist.

    Args:
        name: Circuit (module) name.
    """

    def __init__(self, name: str):
        self.name = name
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._output_net: Dict[str, str] = {}
        self.clocks: List[ClockDomain] = []
        self._name_counter = itertools.count()
        # Dirty-set tracker: every mutation records the nets and
        # instances it touched, so incremental ECO passes (scoped
        # re-route / re-extract / re-STA) know exactly what changed
        # since the last reset_dirty() snapshot.
        self._dirty_nets: Set[str] = set()
        self._dirty_instances: Set[str] = set()

    # ------------------------------------------------------------------
    # Dirty-set tracking (incremental ECO contract)
    # ------------------------------------------------------------------
    @property
    def dirty_nets(self) -> FrozenSet[str]:
        """Nets touched since the last :meth:`reset_dirty` snapshot.

        A net is *touched* when it is created or removed, gains or
        loses a driver or sink, or is explicitly marked via
        :meth:`mark_nets_dirty` (e.g. because a connected instance
        moved during ECO placement).  Names of since-deleted nets may
        appear; consumers must tolerate them.
        """
        return frozenset(self._dirty_nets)

    @property
    def dirty_instances(self) -> FrozenSet[str]:
        """Instances touched since the last :meth:`reset_dirty`.

        An instance is *touched* when it is created or removed, a pin
        is (dis)connected or rewired, or its library cell is swapped.
        Pure placement moves do not dirty the instance (its timing
        arcs are unchanged); they dirty its nets instead.
        """
        return frozenset(self._dirty_instances)

    def mark_nets_dirty(self, names: Iterable[str]) -> None:
        """Explicitly mark nets as changed (e.g. after a cell moved)."""
        self._dirty_nets.update(names)

    def mark_instances_dirty(self, names: Iterable[str]) -> None:
        """Explicitly mark instances as changed."""
        self._dirty_instances.update(names)

    def reset_dirty(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Snapshot and clear the dirty sets.

        Returns:
            ``(dirty_nets, dirty_instances)`` accumulated since the
            previous reset (or construction).
        """
        snapshot = (frozenset(self._dirty_nets),
                    frozenset(self._dirty_instances))
        self._dirty_nets.clear()
        self._dirty_instances.clear()
        return snapshot

    # ------------------------------------------------------------------
    # Construction primitives
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> Net:
        """Create an unconnected net.  Names must be unique."""
        if name in self.nets:
            raise ValueError(f"net {name!r} already exists in {self.name!r}")
        net = Net(name)
        self.nets[name] = net
        self._dirty_nets.add(name)
        return net

    def new_net(self, prefix: str = "n") -> Net:
        """Create a net with a fresh auto-generated name."""
        while True:
            name = f"{prefix}_{next(self._name_counter)}"
            if name not in self.nets:
                return self.add_net(name)

    def new_instance_name(self, prefix: str) -> str:
        """Return a fresh instance name with the given prefix."""
        while True:
            name = f"{prefix}_{next(self._name_counter)}"
            if name not in self.instances:
                return name

    def add_input(self, name: str) -> Net:
        """Declare a primary input port and its same-named net."""
        net = self.add_net(name)
        net.driver = (PORT, name)
        self.inputs.append(name)
        return net

    def add_output(self, name: str, net: Optional[str] = None) -> None:
        """Declare a primary output port reading ``net`` (default: same name)."""
        net_name = net if net is not None else name
        if net_name not in self.nets:
            raise KeyError(f"net {net_name!r} does not exist")
        self.nets[net_name].add_sink(PORT, name)
        self.outputs.append(name)
        self._output_net[name] = net_name

    def add_clock(self, name: str, period_ps: float) -> Net:
        """Declare a clock port: a primary input tracked as a clock domain."""
        net = self.add_input(name)
        self.clocks.append(ClockDomain(net=name, period_ps=period_ps))
        return net

    def output_net(self, port: str) -> str:
        """Net observed by primary output port ``port``."""
        return self._output_net[port]

    def add_instance(
        self,
        name: str,
        cell: "LibraryCell",
        conns: Optional[Dict[str, str]] = None,
    ) -> Instance:
        """Instantiate ``cell`` and connect the given pins.

        Args:
            name: Unique instance name.
            cell: Library cell to instantiate.
            conns: Pin-to-net mapping; every referenced net must exist.
        """
        if name in self.instances:
            raise ValueError(f"instance {name!r} already exists")
        inst = Instance(name=name, cell=cell)
        self.instances[name] = inst
        self._dirty_instances.add(name)
        for pin, net in (conns or {}).items():
            self.connect(name, pin, net)
        return inst

    def connect(self, inst_name: str, pin: str, net_name: str) -> None:
        """Connect an instance pin to a net, registering driver/sink."""
        inst = self.instances[inst_name]
        net = self.nets[net_name]
        if pin in inst.conns:
            raise ValueError(f"pin {inst_name}.{pin} is already connected")
        if pin not in inst.cell.pins:
            raise KeyError(f"cell {inst.cell.name!r} has no pin {pin!r}")
        inst.conns[pin] = net_name
        self._dirty_nets.add(net_name)
        self._dirty_instances.add(inst_name)
        if inst.cell.pin_is_output(pin):
            if net.driver is not None:
                raise ValueError(
                    f"net {net_name!r} already driven by {net.driver}; "
                    f"cannot add driver {inst_name}.{pin}"
                )
            net.driver = (inst_name, pin)
        else:
            net.add_sink(inst_name, pin)

    def disconnect(self, inst_name: str, pin: str) -> str:
        """Disconnect an instance pin; returns the net it was on."""
        inst = self.instances[inst_name]
        net_name = inst.conns.pop(pin)
        net = self.nets[net_name]
        self._dirty_nets.add(net_name)
        self._dirty_instances.add(inst_name)
        if inst.cell.pin_is_output(pin):
            net.driver = None
        else:
            net.remove_sink(inst_name, pin)
        return net_name

    def remove_instance(self, name: str) -> None:
        """Delete an instance, detaching all of its pins."""
        inst = self.instances[name]
        for pin in list(inst.conns):
            self.disconnect(name, pin)
        del self.instances[name]
        self._dirty_instances.add(name)

    def remove_net(self, name: str) -> None:
        """Delete a net; it must be completely unconnected."""
        net = self.nets[name]
        if net.driver is not None or net.sinks:
            raise ValueError(f"net {name!r} is still connected")
        del self.nets[name]
        self._dirty_nets.add(name)

    # ------------------------------------------------------------------
    # Netlist editing used by TPI / scan / ECO
    # ------------------------------------------------------------------
    def split_net_before_sinks(
        self, net_name: str, sinks: Iterable[PinRef], new_prefix: str = "tp"
    ) -> Net:
        """Detach ``sinks`` from a net and move them to a fresh net.

        This is the primitive behind test-point insertion: the inserted
        cell's input is connected to the original net and its output to
        the returned net, which now feeds the moved sinks.

        Args:
            net_name: The net to split.
            sinks: Subset of the net's current sinks to move.
            new_prefix: Prefix for the freshly created net's name.

        Returns:
            The new net carrying the moved sinks (undriven on return).
        """
        net = self.nets[net_name]
        moved = list(sinks)
        for inst, pin in moved:
            if (inst, pin) not in net.sinks:
                raise ValueError(f"({inst}, {pin}) is not a sink of {net_name!r}")
        new_net = self.new_net(prefix=new_prefix)
        self._dirty_nets.add(net_name)
        for inst, pin in moved:
            net.remove_sink(inst, pin)
            if inst == PORT:
                new_net.add_sink(PORT, pin)
                self._output_net[pin] = new_net.name
            else:
                self.instances[inst].conns[pin] = new_net.name
                new_net.add_sink(inst, pin)
                self._dirty_instances.add(inst)
        return new_net

    def swap_cell(self, inst_name: str, new_cell: "LibraryCell") -> None:
        """Replace an instance's library cell, keeping same-named pins.

        Pins present on the old cell but absent on the new one must be
        unconnected; pins new to the new cell start unconnected.  Used
        for scan substitution (DFF -> SDFF) and drive-strength changes.
        """
        inst = self.instances[inst_name]
        for pin in inst.conns:
            if pin not in new_cell.pins:
                raise ValueError(
                    f"pin {pin!r} of {inst_name!r} is connected but cell "
                    f"{new_cell.name!r} has no such pin"
                )
            if new_cell.pin_is_output(pin) != inst.cell.pin_is_output(pin):
                raise ValueError(
                    f"pin {pin!r} changes direction between {inst.cell.name!r} "
                    f"and {new_cell.name!r}"
                )
        inst.cell = new_cell
        self._dirty_instances.add(inst_name)
        self._dirty_nets.update(inst.conns.values())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def driver_instance(self, net_name: str) -> Optional[Instance]:
        """Instance driving a net, or None for ports/undriven nets."""
        driver = self.nets[net_name].driver
        if driver is None or driver[0] == PORT:
            return None
        return self.instances[driver[0]]

    def flip_flops(self) -> List[Instance]:
        """All sequential instances, in deterministic (insertion) order."""
        return [inst for inst in self.instances.values() if inst.is_sequential]

    def combinational_cells(self) -> List[Instance]:
        """All non-sequential, non-filler instances."""
        return [
            inst
            for inst in self.instances.values()
            if not inst.is_sequential and not inst.cell.is_filler
        ]

    @property
    def num_flip_flops(self) -> int:
        """Number of sequential instances."""
        return sum(1 for inst in self.instances.values() if inst.is_sequential)

    @property
    def num_cells(self) -> int:
        """Number of instances of every kind (fillers included)."""
        return len(self.instances)

    def clock_of(self, inst_name: str) -> Optional[str]:
        """Clock net of a sequential instance, or None."""
        inst = self.instances[inst_name]
        clk_pin = inst.cell.clock_pin
        if clk_pin is None:
            return None
        return inst.conns.get(clk_pin)

    def clock_period_ps(self, clock_net: str) -> float:
        """Target period of a declared clock domain."""
        for dom in self.clocks:
            if dom.net == clock_net:
                return dom.period_ps
        raise KeyError(f"{clock_net!r} is not a declared clock")

    def total_cell_area(self) -> float:
        """Sum of the library areas of all instances, in um^2."""
        return sum(inst.cell.area_um2 for inst in self.instances.values())

    def stats(self) -> Dict[str, int]:
        """Headline size statistics used in reports and tests."""
        n_ff = self.num_flip_flops
        return {
            "cells": self.num_cells,
            "flip_flops": n_ff,
            "combinational": self.num_cells - n_ff,
            "nets": len(self.nets),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
        }

    def clone(self, name: Optional[str] = None) -> "Circuit":
        """Deep copy of the netlist (library cells are shared).

        The clone starts with empty dirty sets: dirty tracking is a
        per-object snapshot, not part of the netlist state.
        """
        dup = Circuit(name or self.name)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup._output_net = dict(self._output_net)
        dup.clocks = [ClockDomain(c.net, c.period_ps) for c in self.clocks]
        dup.nets = {
            n: Net(net.name, net.driver, list(net.sinks))
            for n, net in self.nets.items()
        }
        dup.instances = {
            i: Instance(inst.name, inst.cell, dict(inst.conns))
            for i, inst in self.instances.items()
        }
        dup._name_counter = itertools.count(next(copy.copy(self._name_counter)))
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<Circuit {self.name!r}: {s['cells']} cells "
            f"({s['flip_flops']} FFs), {s['nets']} nets>"
        )
