"""Gate-level netlist data model.

Public surface: :class:`Circuit` (the mutable netlist), :class:`Net`,
:class:`Instance`, combinational-view extraction for DFT reasoning,
structural-Verilog interchange, and validation.
"""

from repro.netlist.circuit import Circuit, ClockDomain
from repro.netlist.instance import Instance
from repro.netlist.levelize import (
    CombinationalLoopError,
    CombNode,
    CombView,
    extract_comb_view,
)
from repro.netlist.net import PORT, Net, PinRef
from repro.netlist.simulate import SequentialSimulator
from repro.netlist.fanout import DrcReport, estimated_load_ff, fix_electrical, fix_fanout, upsize_drivers
from repro.netlist.validate import ValidationReport, validate
from repro.netlist.verilog import from_verilog, to_verilog

__all__ = [
    "Circuit",
    "ClockDomain",
    "CombNode",
    "CombView",
    "CombinationalLoopError",
    "Instance",
    "Net",
    "PORT",
    "PinRef",
    "SequentialSimulator",
    "DrcReport",
    "estimated_load_ff",
    "fix_electrical",
    "fix_fanout",
    "upsize_drivers",
    "ValidationReport",
    "extract_comb_view",
    "from_verilog",
    "to_verilog",
    "validate",
]
