"""Instance: one placed occurrence of a library cell in a netlist."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.library.cell import LibraryCell


@dataclass
class Instance:
    """One instantiated standard cell.

    Attributes:
        name: Unique instance name within the circuit.
        cell: The library cell this instance realises.
        conns: Mapping from library pin name to net name.  Pins may be
            unconnected (absent) transiently during netlist editing, but
            :mod:`repro.netlist.validate` rejects unconnected pins on a
            finished netlist.
    """

    name: str
    cell: "LibraryCell"
    conns: Dict[str, str] = field(default_factory=dict)

    @property
    def cell_name(self) -> str:
        """Library cell name (e.g. ``"NAND2_X1"``)."""
        return self.cell.name

    @property
    def is_sequential(self) -> bool:
        """True for flip-flop-like cells (DFF, scan FF, TSFF)."""
        return self.cell.is_sequential

    def net_of(self, pin: str) -> Optional[str]:
        """Net connected to ``pin``, or ``None`` when unconnected."""
        return self.conns.get(pin)

    def input_conns(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(pin, net)`` for every connected input pin."""
        for pin in self.cell.input_pins:
            net = self.conns.get(pin)
            if net is not None:
                yield pin, net

    def output_conns(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(pin, net)`` for every connected output pin."""
        for pin in self.cell.output_pins:
            net = self.conns.get(pin)
            if net is not None:
                yield pin, net
