"""Static timing analysis (the flow's Pearl substitute).

Propagates arrivals and slews through the application-mode timing graph
using NLDM cell delays and Elmore wire delays from extraction, then
checks setup at every flip-flop data pin against its domain's clock
period.  Clock insertion delays are measured through the real routed
clock tree, so the skew term is physical, not assumed.

Every reported path carries the paper's eq. (3) decomposition::

    T_cp = T_wires + T_intrinsic + T_load-dep + T_setup + T_skew

with T_skew = (launch clock arrival) - (capture clock arrival).  Cells
evaluated outside their NLDM table range are collected as *slow nodes*
(paper Section 4.4) and left unfixed, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.extraction.rc import NetParasitics
from repro.netlist.circuit import Circuit
from repro.sta.delay import evaluate_arc, wire_degraded_slew
from repro.sta.graph import TimingNode, build_timing_nodes


@dataclass
class StaConfig:
    """Analysis knobs.

    Attributes:
        input_slew_ps: Transition time assumed at primary inputs.
        derate: Worst-case PVT multiplier on cell delays (the paper
            analyses worst-case process/temperature/voltage).
        paths_per_domain: Worst paths retained per clock domain.
    """

    input_slew_ps: float = 60.0
    derate: float = 1.25
    paths_per_domain: int = 8


@dataclass
class _Arrival:
    """Worst (or best) arrival state at a net."""

    time_ps: float
    slew_ps: float
    wires_ps: float = 0.0
    intrinsic_ps: float = 0.0
    load_dep_ps: float = 0.0
    launch_ps: float = 0.0
    domain: Optional[str] = None
    pred: Optional[Tuple[str, TimingNode]] = None
    n_tsff: int = 0


@dataclass
class TimingPath:
    """One register-to-register (or input-to-register) path.

    Attributes:
        domain: Capturing clock domain.
        endpoint: Capturing flip-flop instance.
        startpoint: Launching FF instance or primary input net.
        t_wires_ps: Interconnect delay along the path.
        t_intrinsic_ps: Sum of cell intrinsic delays.
        t_load_dep_ps: Sum of load-dependent cell delays.
        t_setup_ps: Capturing flip-flop setup time.
        t_skew_ps: Launch minus capture clock arrival.
        total_ps: The paper's T_cp (eq. 3 sum).
        slack_ps: Domain period minus total.
        nets: Nets traversed (used by timing-aware TPI exclusion).
        n_test_points: TSFFs traversed (paper Table 3, #TP_cp).
    """

    domain: str
    endpoint: str
    startpoint: str
    t_wires_ps: float
    t_intrinsic_ps: float
    t_load_dep_ps: float
    t_setup_ps: float
    t_skew_ps: float
    total_ps: float
    slack_ps: float
    nets: List[str] = field(default_factory=list)
    n_test_points: int = 0

    @property
    def fmax_mhz(self) -> float:
        """Highest frequency this path permits."""
        return 1e6 / self.total_ps if self.total_ps > 0 else float("inf")


@dataclass
class StaResult:
    """Outcome of one STA run.

    Attributes:
        paths: Worst paths per clock domain (worst first).
        slow_nodes: Instances evaluated by table extrapolation.
        hold_violations: Endpoints failing the hold check.
    """

    paths: Dict[str, List[TimingPath]] = field(default_factory=dict)
    slow_nodes: Set[str] = field(default_factory=set)
    hold_violations: int = 0
    #: Per-violating-endpoint hold slack in ps (negative = violating).
    hold_slacks: Dict[str, float] = field(default_factory=dict)

    def critical(self, domain: str) -> Optional[TimingPath]:
        """Worst path of one domain."""
        paths = self.paths.get(domain)
        return paths[0] if paths else None

    def worst_path(self) -> Optional[TimingPath]:
        """Most negative-slack path across all domains."""
        best: Optional[TimingPath] = None
        for paths in self.paths.values():
            for path in paths:
                if best is None or path.slack_ps < best.slack_ps:
                    best = path
        return best

    def all_paths(self) -> List[TimingPath]:
        """All retained paths, flattened."""
        return [p for paths in self.paths.values() for p in paths]


def _propagate(
    circuit: Circuit,
    nodes: List[TimingNode],
    parasitics: Dict[str, NetParasitics],
    config: StaConfig,
    worst: bool,
    slow_nodes: Optional[Set[str]] = None,
) -> Dict[str, _Arrival]:
    """Arrival propagation; ``worst`` picks max (setup) vs min (hold)."""
    arrivals: Dict[str, _Arrival] = {}
    clock_nets = {dom.net for dom in circuit.clocks}
    for name in circuit.inputs:
        arrivals[name] = _Arrival(
            time_ps=0.0,
            slew_ps=config.input_slew_ps,
            domain=name if name in clock_nets else None,
        )

    better = (lambda a, b: a > b) if worst else (lambda a, b: a < b)
    for node in nodes:
        inst = node.inst
        out_net = node.out_net
        load = parasitics[out_net].total_cap_ff
        best: Optional[_Arrival] = None
        for arc in node.arcs:
            from_net = inst.conns[arc.from_pin]
            arr = arrivals.get(from_net)
            if arr is None:
                continue
            elmore = parasitics[from_net].delay_to((inst.name, arc.from_pin))
            pin_slew = wire_degraded_slew(arr.slew_ps, elmore)
            ad = evaluate_arc(arc, pin_slew, load, config.derate)
            if slow_nodes is not None and ad.extrapolated:
                slow_nodes.add(inst.name)
            time = arr.time_ps + elmore + ad.delay_ps
            if node.is_launch:
                candidate = _Arrival(
                    time_ps=time,
                    slew_ps=ad.out_slew_ps,
                    wires_ps=0.0,
                    intrinsic_ps=ad.intrinsic_ps,
                    load_dep_ps=ad.load_dependent_ps,
                    launch_ps=arr.time_ps + elmore,
                    domain=arr.domain,
                    pred=None,
                    n_tsff=0,
                )
            else:
                candidate = _Arrival(
                    time_ps=time,
                    slew_ps=ad.out_slew_ps,
                    wires_ps=arr.wires_ps + elmore,
                    intrinsic_ps=arr.intrinsic_ps + ad.intrinsic_ps,
                    load_dep_ps=arr.load_dep_ps + ad.load_dependent_ps,
                    launch_ps=arr.launch_ps,
                    domain=arr.domain,
                    pred=(from_net, node),
                    n_tsff=arr.n_tsff + (1 if inst.cell.is_tsff else 0),
                )
            if best is None or better(candidate.time_ps, best.time_ps):
                best = candidate
        if best is not None:
            arrivals[out_net] = best
    return arrivals


def _path_nets(arrivals: Dict[str, _Arrival], end_net: str) -> List[str]:
    """Nets along the worst path into ``end_net``, endpoint first."""
    nets = [end_net]
    seen = {end_net}
    current = arrivals.get(end_net)
    while current is not None and current.pred is not None:
        from_net, _ = current.pred
        if from_net in seen:
            break  # defensive: malformed pred chain
        nets.append(from_net)
        seen.add(from_net)
        current = arrivals.get(from_net)
    return nets


def _startpoint(circuit: Circuit, arrivals: Dict[str, _Arrival],
                end_net: str) -> str:
    """Launching FF instance (or input net) of the worst path."""
    nets = _path_nets(arrivals, end_net)
    first = nets[-1]
    driver = circuit.nets[first].driver
    if driver is None or driver[0] == "@port":
        return first
    return driver[0]


def run_sta(
    circuit: Circuit,
    parasitics: Dict[str, NetParasitics],
    config: Optional[StaConfig] = None,
) -> StaResult:
    """Run setup and hold analysis on a laid-out netlist.

    Args:
        circuit: Netlist including clock trees and scan logic.
        parasitics: Extracted RC per net.
        config: Analysis configuration.

    Returns:
        Per-domain worst paths with eq. (3) decompositions, slow nodes
        and the hold-violation count.
    """
    config = config or StaConfig()
    result = StaResult()
    nodes = build_timing_nodes(circuit)
    arrivals = _propagate(
        circuit, nodes, parasitics, config, worst=True,
        slow_nodes=result.slow_nodes,
    )
    min_arrivals = _propagate(
        circuit, nodes, parasitics, config, worst=False
    )
    periods = {dom.net: dom.period_ps for dom in circuit.clocks}

    candidates: Dict[str, List[TimingPath]] = {d: [] for d in periods}
    for inst in circuit.instances.values():
        seq = inst.cell.sequential
        if seq is None or inst.cell.is_tsff:
            # TSFF capture paths exist only in test mode: blocked.
            continue
        d_net = inst.conns.get(seq.data_pin)
        clk_net = inst.conns.get(seq.clock_pin)
        if d_net is None or clk_net is None:
            continue
        arr = arrivals.get(d_net)
        clk_arr = arrivals.get(clk_net)
        if arr is None or clk_arr is None or clk_arr.domain is None:
            continue
        domain = clk_arr.domain
        if arr.domain is not None and arr.domain != domain:
            continue  # cross-domain: treated as false path
        elmore_d = parasitics[d_net].delay_to((inst.name, seq.data_pin))
        elmore_c = parasitics[clk_net].delay_to((inst.name, seq.clock_pin))
        capture_clk = clk_arr.time_ps + elmore_c
        setup = seq.setup_ps * config.derate
        t_skew = arr.launch_ps - capture_clk
        total = (
            arr.wires_ps + elmore_d
            + arr.intrinsic_ps + arr.load_dep_ps
            + setup + t_skew
        )
        path = TimingPath(
            domain=domain,
            endpoint=inst.name,
            startpoint=_startpoint(circuit, arrivals, d_net),
            t_wires_ps=arr.wires_ps + elmore_d,
            t_intrinsic_ps=arr.intrinsic_ps,
            t_load_dep_ps=arr.load_dep_ps,
            t_setup_ps=setup,
            t_skew_ps=t_skew,
            total_ps=total,
            slack_ps=periods.get(domain, 0.0) - total,
            nets=_path_nets(arrivals, d_net),
            n_test_points=arr.n_tsff,
        )
        candidates.setdefault(domain, []).append(path)

        # Hold: earliest data edge must not beat the capture edge.
        min_arr = min_arrivals.get(d_net)
        if min_arr is not None and (
            min_arr.domain is None or min_arr.domain == domain
        ):
            hold = seq.hold_ps
            early = (
                min_arr.time_ps
                + parasitics[d_net].delay_to((inst.name, seq.data_pin))
            )
            slack = (early - capture_clk) - hold
            if slack < 0:
                result.hold_violations += 1
                result.hold_slacks[inst.name] = slack

    for domain, paths in candidates.items():
        paths.sort(key=lambda p: p.slack_ps)
        result.paths[domain] = paths[:config.paths_per_domain]
    return result
