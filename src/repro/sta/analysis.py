"""Static timing analysis (the flow's Pearl substitute).

Propagates arrivals and slews through the application-mode timing graph
using NLDM cell delays and Elmore wire delays from extraction, then
checks setup at every flip-flop data pin against its domain's clock
period.  Clock insertion delays are measured through the real routed
clock tree, so the skew term is physical, not assumed.

Every reported path carries the paper's eq. (3) decomposition::

    T_cp = T_wires + T_intrinsic + T_load-dep + T_setup + T_skew

with T_skew = (launch clock arrival) - (capture clock arrival).  Cells
evaluated outside their NLDM table range are collected as *slow nodes*
(paper Section 4.4) and left unfixed, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.extraction.rc import NetParasitics
from repro.netlist.circuit import Circuit
from repro.netlist.instance import Instance
from repro.sta.delay import evaluate_arc, wire_degraded_slew
from repro.sta.graph import TimingNode, build_timing_nodes, nodes_for_instance

#: Key identifying one timing node across rebuilds: (instance, out pin).
NodeKey = Tuple[str, str]


@dataclass
class StaConfig:
    """Analysis knobs.

    Attributes:
        input_slew_ps: Transition time assumed at primary inputs.
        derate: Worst-case PVT multiplier on cell delays (the paper
            analyses worst-case process/temperature/voltage).
        paths_per_domain: Worst paths retained per clock domain.
        hold_margin_ps: Extra hold slack demanded at every endpoint
            (subtracted from the measured slack).  The paper's check
            uses 0; a positive margin hardens the hold-fix ECO and is
            what the incremental-engine benches use to provoke
            multi-round repair loops.
    """

    input_slew_ps: float = 60.0
    derate: float = 1.25
    paths_per_domain: int = 8
    hold_margin_ps: float = 0.0


@dataclass
class _Arrival:
    """Worst (or best) arrival state at a net."""

    time_ps: float
    slew_ps: float
    wires_ps: float = 0.0
    intrinsic_ps: float = 0.0
    load_dep_ps: float = 0.0
    launch_ps: float = 0.0
    domain: Optional[str] = None
    pred: Optional[Tuple[str, TimingNode]] = None
    n_tsff: int = 0


@dataclass
class TimingPath:
    """One register-to-register (or input-to-register) path.

    Attributes:
        domain: Capturing clock domain.
        endpoint: Capturing flip-flop instance.
        startpoint: Launching FF instance or primary input net.
        t_wires_ps: Interconnect delay along the path.
        t_intrinsic_ps: Sum of cell intrinsic delays.
        t_load_dep_ps: Sum of load-dependent cell delays.
        t_setup_ps: Capturing flip-flop setup time.
        t_skew_ps: Launch minus capture clock arrival.
        total_ps: The paper's T_cp (eq. 3 sum).
        slack_ps: Domain period minus total.
        nets: Nets traversed (used by timing-aware TPI exclusion).
        n_test_points: TSFFs traversed (paper Table 3, #TP_cp).
    """

    domain: str
    endpoint: str
    startpoint: str
    t_wires_ps: float
    t_intrinsic_ps: float
    t_load_dep_ps: float
    t_setup_ps: float
    t_skew_ps: float
    total_ps: float
    slack_ps: float
    nets: List[str] = field(default_factory=list)
    n_test_points: int = 0

    @property
    def fmax_mhz(self) -> float:
        """Highest frequency this path permits."""
        return 1e6 / self.total_ps if self.total_ps > 0 else float("inf")


@dataclass
class StaResult:
    """Outcome of one STA run.

    Attributes:
        paths: Worst paths per clock domain (worst first).
        slow_nodes: Instances evaluated by table extrapolation.
        hold_violations: Endpoints failing the hold check.
    """

    paths: Dict[str, List[TimingPath]] = field(default_factory=dict)
    slow_nodes: Set[str] = field(default_factory=set)
    hold_violations: int = 0
    #: Per-violating-endpoint hold slack in ps (negative = violating).
    hold_slacks: Dict[str, float] = field(default_factory=dict)

    def critical(self, domain: str) -> Optional[TimingPath]:
        """Worst path of one domain."""
        paths = self.paths.get(domain)
        return paths[0] if paths else None

    def worst_path(self) -> Optional[TimingPath]:
        """Most negative-slack path across all domains."""
        best: Optional[TimingPath] = None
        for paths in self.paths.values():
            for path in paths:
                if best is None or path.slack_ps < best.slack_ps:
                    best = path
        return best

    def all_paths(self) -> List[TimingPath]:
        """All retained paths, flattened."""
        return [p for paths in self.paths.values() for p in paths]


def _input_arrival(name: str, clock_nets: Set[str],
                   config: StaConfig) -> _Arrival:
    """The fixed arrival assumed at one primary input."""
    return _Arrival(
        time_ps=0.0,
        slew_ps=config.input_slew_ps,
        domain=name if name in clock_nets else None,
    )


def _eval_node(
    circuit: Circuit,
    node: TimingNode,
    arrivals: Dict[str, _Arrival],
    parasitics: Dict[str, NetParasitics],
    config: StaConfig,
    worst: bool,
) -> Tuple[Optional[_Arrival], bool]:
    """Evaluate one timing node from its current input arrivals.

    Returns ``(best, extrapolated)``: the worst (setup) or best (hold)
    arrival at the node's output net — None when no input has an
    arrival — and whether any evaluated arc fell outside its NLDM
    table range (the paper's *slow node* census).  Both the full and
    the incremental propagation funnel through this function, so a
    re-evaluated node with unchanged inputs reproduces its previous
    arrival bit for bit.
    """
    inst = node.inst
    load = parasitics[node.out_net].total_cap_ff
    better = (lambda a, b: a > b) if worst else (lambda a, b: a < b)
    best: Optional[_Arrival] = None
    extrapolated = False
    for arc in node.arcs:
        from_net = inst.conns[arc.from_pin]
        arr = arrivals.get(from_net)
        if arr is None:
            continue
        elmore = parasitics[from_net].delay_to((inst.name, arc.from_pin))
        pin_slew = wire_degraded_slew(arr.slew_ps, elmore)
        ad = evaluate_arc(arc, pin_slew, load, config.derate)
        if ad.extrapolated:
            extrapolated = True
        time = arr.time_ps + elmore + ad.delay_ps
        if node.is_launch:
            candidate = _Arrival(
                time_ps=time,
                slew_ps=ad.out_slew_ps,
                wires_ps=0.0,
                intrinsic_ps=ad.intrinsic_ps,
                load_dep_ps=ad.load_dependent_ps,
                launch_ps=arr.time_ps + elmore,
                domain=arr.domain,
                pred=None,
                n_tsff=0,
            )
        else:
            candidate = _Arrival(
                time_ps=time,
                slew_ps=ad.out_slew_ps,
                wires_ps=arr.wires_ps + elmore,
                intrinsic_ps=arr.intrinsic_ps + ad.intrinsic_ps,
                load_dep_ps=arr.load_dep_ps + ad.load_dependent_ps,
                launch_ps=arr.launch_ps,
                domain=arr.domain,
                pred=(from_net, node),
                n_tsff=arr.n_tsff + (1 if inst.cell.is_tsff else 0),
            )
        if best is None or better(candidate.time_ps, best.time_ps):
            best = candidate
    return best, extrapolated


def _same_arrival(a: Optional[_Arrival], b: Optional[_Arrival]) -> bool:
    """Whether two arrivals are observably identical (early cutoff)."""
    if a is None or b is None:
        return a is b
    if (a.pred is None) != (b.pred is None):
        return False
    if a.pred is not None and b.pred is not None and a.pred[0] != b.pred[0]:
        return False
    return (
        a.time_ps == b.time_ps
        and a.slew_ps == b.slew_ps
        and a.wires_ps == b.wires_ps
        and a.intrinsic_ps == b.intrinsic_ps
        and a.load_dep_ps == b.load_dep_ps
        and a.launch_ps == b.launch_ps
        and a.domain == b.domain
        and a.n_tsff == b.n_tsff
    )


def _propagate(
    circuit: Circuit,
    nodes: List[TimingNode],
    parasitics: Dict[str, NetParasitics],
    config: StaConfig,
    worst: bool,
    node_slow: Optional[Dict[NodeKey, bool]] = None,
) -> Dict[str, _Arrival]:
    """Arrival propagation; ``worst`` picks max (setup) vs min (hold)."""
    arrivals: Dict[str, _Arrival] = {}
    clock_nets = {dom.net for dom in circuit.clocks}
    for name in circuit.inputs:
        arrivals[name] = _input_arrival(name, clock_nets, config)
    for node in nodes:
        best, extrapolated = _eval_node(
            circuit, node, arrivals, parasitics, config, worst
        )
        if node_slow is not None:
            node_slow[(node.inst.name, node.out_pin)] = extrapolated
        if best is not None:
            arrivals[node.out_net] = best
    return arrivals


def _path_nets(arrivals: Dict[str, _Arrival], end_net: str) -> List[str]:
    """Nets along the worst path into ``end_net``, endpoint first."""
    nets = [end_net]
    seen = {end_net}
    current = arrivals.get(end_net)
    while current is not None and current.pred is not None:
        from_net, _ = current.pred
        if from_net in seen:
            break  # defensive: malformed pred chain
        nets.append(from_net)
        seen.add(from_net)
        current = arrivals.get(from_net)
    return nets


def _startpoint(circuit: Circuit, arrivals: Dict[str, _Arrival],
                end_net: str) -> str:
    """Launching FF instance (or input net) of the worst path."""
    nets = _path_nets(arrivals, end_net)
    first = nets[-1]
    driver = circuit.nets[first].driver
    if driver is None or driver[0] == "@port":
        return first
    return driver[0]


def _endpoint_record(
    circuit: Circuit,
    inst: Instance,
    arrivals: Dict[str, _Arrival],
    min_arrivals: Dict[str, _Arrival],
    parasitics: Dict[str, NetParasitics],
    config: StaConfig,
    periods: Dict[str, float],
) -> Tuple[Optional[TimingPath], Optional[float]]:
    """Setup path and hold slack at one capturing flip-flop.

    Returns ``(path, hold_slack)``.  ``path`` is None when the
    instance is not an application-mode endpoint (combinational cell,
    TSFF, unclocked or cross-domain flop, or no data arrival);
    ``hold_slack`` is None when no early-mode arrival reaches the data
    pin.  Both the full and the incremental analysis build their
    endpoint censuses through this function.
    """
    seq = inst.cell.sequential
    if seq is None or inst.cell.is_tsff:
        # TSFF capture paths exist only in test mode: blocked.
        return None, None
    d_net = inst.conns.get(seq.data_pin)
    clk_net = inst.conns.get(seq.clock_pin)
    if d_net is None or clk_net is None:
        return None, None
    arr = arrivals.get(d_net)
    clk_arr = arrivals.get(clk_net)
    if arr is None or clk_arr is None or clk_arr.domain is None:
        return None, None
    domain = clk_arr.domain
    if arr.domain is not None and arr.domain != domain:
        return None, None  # cross-domain: treated as false path
    elmore_d = parasitics[d_net].delay_to((inst.name, seq.data_pin))
    elmore_c = parasitics[clk_net].delay_to((inst.name, seq.clock_pin))
    capture_clk = clk_arr.time_ps + elmore_c
    setup = seq.setup_ps * config.derate
    t_skew = arr.launch_ps - capture_clk
    total = (
        arr.wires_ps + elmore_d
        + arr.intrinsic_ps + arr.load_dep_ps
        + setup + t_skew
    )
    path = TimingPath(
        domain=domain,
        endpoint=inst.name,
        startpoint=_startpoint(circuit, arrivals, d_net),
        t_wires_ps=arr.wires_ps + elmore_d,
        t_intrinsic_ps=arr.intrinsic_ps,
        t_load_dep_ps=arr.load_dep_ps,
        t_setup_ps=setup,
        t_skew_ps=t_skew,
        total_ps=total,
        slack_ps=periods.get(domain, 0.0) - total,
        nets=_path_nets(arrivals, d_net),
        n_test_points=arr.n_tsff,
    )
    # Hold: earliest data edge must not beat the capture edge.
    hold_slack: Optional[float] = None
    min_arr = min_arrivals.get(d_net)
    if min_arr is not None and (
        min_arr.domain is None or min_arr.domain == domain
    ):
        early = min_arr.time_ps + elmore_d
        hold_slack = (
            (early - capture_clk) - seq.hold_ps - config.hold_margin_ps
        )
    return path, hold_slack


@dataclass
class StaState:
    """Full analysis state carried between incremental STA updates.

    Where :class:`StaResult` keeps only the worst few paths per
    domain, the state retains *every* endpoint's record plus the
    complete arrival maps and node index, so a scoped re-propagation
    can splice updated values into otherwise-untouched results.

    The dirty-set contract: :func:`run_sta_incremental` reproduces a
    full re-analysis exactly, provided ``dirty_nets`` covers every net
    whose parasitics object changed and ``dirty_instances`` covers
    every instance whose pins, connections or cell changed since the
    state was built.

    Attributes:
        config: Configuration the state was built with.
        nodes: Timing node per :data:`NodeKey`.
        node_inputs: Input nets per node, frozen at registration.
        inst_nodes: Node keys contributed by each instance.
        consumers: Node keys with an arc *from* each net.
        driver_node: Node key driving each net.
        arrivals: Late-mode (setup) arrival per net.
        min_arrivals: Early-mode (hold) arrival per net.
        node_slow: NLDM-extrapolation flag per node (slow-node census).
        endpoint_paths: Setup path per endpoint instance (all of them).
        endpoint_holds: Hold slack per endpoint instance (all of them).
        periods: Clock period per domain.
        cone_size: Nodes re-evaluated by the last incremental update.
        endpoints_rechecked: Endpoints re-examined by the last update.
    """

    config: StaConfig
    nodes: Dict[NodeKey, TimingNode] = field(default_factory=dict)
    node_inputs: Dict[NodeKey, frozenset] = field(default_factory=dict)
    inst_nodes: Dict[str, List[NodeKey]] = field(default_factory=dict)
    consumers: Dict[str, Set[NodeKey]] = field(default_factory=dict)
    driver_node: Dict[str, NodeKey] = field(default_factory=dict)
    arrivals: Dict[str, _Arrival] = field(default_factory=dict)
    min_arrivals: Dict[str, _Arrival] = field(default_factory=dict)
    node_slow: Dict[NodeKey, bool] = field(default_factory=dict)
    endpoint_paths: Dict[str, TimingPath] = field(default_factory=dict)
    endpoint_holds: Dict[str, float] = field(default_factory=dict)
    periods: Dict[str, float] = field(default_factory=dict)
    cone_size: int = 0
    endpoints_rechecked: int = 0


def _register_node(state: StaState, node: TimingNode) -> NodeKey:
    """Index one timing node into the state's lookup maps."""
    key = (node.inst.name, node.out_pin)
    state.nodes[key] = node
    inputs = frozenset(node.inst.conns[a.from_pin] for a in node.arcs)
    state.node_inputs[key] = inputs
    for net in inputs:
        state.consumers.setdefault(net, set()).add(key)
    state.driver_node[node.out_net] = key
    state.inst_nodes.setdefault(node.inst.name, []).append(key)
    return key


def _unregister_instance(state: StaState, name: str) -> None:
    """Drop every node an instance contributed to the state."""
    for key in state.inst_nodes.pop(name, []):
        node = state.nodes.pop(key, None)
        if node is None:
            continue
        for net in state.node_inputs.pop(key, ()):
            group = state.consumers.get(net)
            if group is not None:
                group.discard(key)
        if state.driver_node.get(node.out_net) == key:
            del state.driver_node[node.out_net]
        state.node_slow.pop(key, None)


def _assemble(circuit: Circuit, state: StaState) -> StaResult:
    """Build the public :class:`StaResult` view of the state."""
    config = state.config
    result = StaResult()
    result.slow_nodes = {
        inst for (inst, _pin), flag in state.node_slow.items() if flag
    }
    candidates: Dict[str, List[TimingPath]] = {d: [] for d in state.periods}
    for name in circuit.instances:
        path = state.endpoint_paths.get(name)
        if path is not None:
            candidates.setdefault(path.domain, []).append(path)
        hold = state.endpoint_holds.get(name)
        if hold is not None and hold < 0:
            result.hold_violations += 1
            result.hold_slacks[name] = hold
    for domain, paths in candidates.items():
        paths.sort(key=lambda p: p.slack_ps)
        result.paths[domain] = paths[:config.paths_per_domain]
    return result


def run_sta_with_state(
    circuit: Circuit,
    parasitics: Dict[str, NetParasitics],
    config: Optional[StaConfig] = None,
) -> Tuple[StaResult, StaState]:
    """Full analysis that also returns the reusable :class:`StaState`.

    The returned state seeds :func:`run_sta_incremental`; the result
    is identical to :func:`run_sta`'s.
    """
    config = config or StaConfig()
    state = StaState(config=config)
    nodes = build_timing_nodes(circuit)
    for node in nodes:
        _register_node(state, node)
    state.arrivals = _propagate(
        circuit, nodes, parasitics, config, worst=True,
        node_slow=state.node_slow,
    )
    state.min_arrivals = _propagate(
        circuit, nodes, parasitics, config, worst=False
    )
    state.periods = {dom.net: dom.period_ps for dom in circuit.clocks}
    for name, inst in circuit.instances.items():
        path, hold = _endpoint_record(
            circuit, inst, state.arrivals, state.min_arrivals,
            parasitics, config, state.periods,
        )
        if path is not None:
            state.endpoint_paths[name] = path
        if hold is not None:
            state.endpoint_holds[name] = hold
    return _assemble(circuit, state), state


def run_sta(
    circuit: Circuit,
    parasitics: Dict[str, NetParasitics],
    config: Optional[StaConfig] = None,
) -> StaResult:
    """Run setup and hold analysis on a laid-out netlist.

    Args:
        circuit: Netlist including clock trees and scan logic.
        parasitics: Extracted RC per net.
        config: Analysis configuration.

    Returns:
        Per-domain worst paths with eq. (3) decompositions, slow nodes
        and the hold-violation count.
    """
    result, _state = run_sta_with_state(circuit, parasitics, config)
    return result


def run_sta_incremental(
    circuit: Circuit,
    parasitics: Dict[str, NetParasitics],
    state: StaState,
    dirty_nets: Iterable[str],
    dirty_instances: Iterable[str] = (),
    config: Optional[StaConfig] = None,
) -> Tuple[StaResult, StaState]:
    """Update a previous analysis after a scoped netlist/layout edit.

    Arrivals are re-propagated only through the forward cone of the
    dirty nets, with early cutoff where a re-evaluated node reproduces
    its stored arrival; endpoints are re-examined only where an input
    arrival or parasitic changed.  Given complete dirty sets (see
    :class:`StaState`), the result equals a full re-analysis.

    Args:
        circuit: The netlist after the edit.
        parasitics: Current parasitics for *every* net (only the dirty
            entries may differ from the previous extraction).
        state: State from :func:`run_sta_with_state` or a previous
            incremental update; mutated in place and returned.
        dirty_nets: Nets whose parasitics (pin positions, routes or
            sink sets) changed.
        dirty_instances: Instances whose connectivity or cell changed.
        config: Analysis configuration (defaults to the state's).

    Returns:
        ``(result, state)``; ``state.cone_size`` and
        ``state.endpoints_rechecked`` census the work done.
    """
    config = config or state.config
    state.config = config
    dirty_nets = set(dirty_nets)
    dirty_instances = set(dirty_instances)

    # 1. Rebuild the nodes of netlist-dirty instances.
    changed_keys: Set[NodeKey] = set()
    for name in dirty_instances:
        _unregister_instance(state, name)
        inst = circuit.instances.get(name)
        if inst is None:
            state.endpoint_paths.pop(name, None)
            state.endpoint_holds.pop(name, None)
            continue
        for node in nodes_for_instance(inst):
            changed_keys.add(_register_node(state, node))

    # Drop arrivals of deleted nets; refresh primary-input arrivals.
    clock_nets = {dom.net for dom in circuit.clocks}
    for net in list(dirty_nets):
        if net not in circuit.nets:
            state.arrivals.pop(net, None)
            state.min_arrivals.pop(net, None)
            state.consumers.pop(net, None)
    for name in circuit.inputs:
        if name not in state.arrivals:
            state.arrivals[name] = _input_arrival(name, clock_nets, config)
            state.min_arrivals[name] = _input_arrival(
                name, clock_nets, config
            )
            dirty_nets.add(name)

    # 2. Seed nodes: consumers of dirty nets see changed input elmore
    # and slew; drivers of dirty nets see a changed output load.
    seeds: Set[NodeKey] = set(changed_keys)
    for net in dirty_nets:
        seeds.update(state.consumers.get(net, ()))
        driver = state.driver_node.get(net)
        if driver is not None:
            seeds.add(driver)
    seeds = {key for key in seeds if key in state.nodes}

    # 3. Forward closure of the seeds over the consumer graph.
    cone: Set[NodeKey] = set(seeds)
    frontier = [state.nodes[key].out_net for key in seeds]
    seen_nets: Set[str] = set()
    while frontier:
        net = frontier.pop()
        if net in seen_nets:
            continue
        seen_nets.add(net)
        for key in state.consumers.get(net, ()):
            if key not in cone:
                cone.add(key)
                frontier.append(state.nodes[key].out_net)

    # 4. Topological order *within* the cone (inputs from outside the
    # cone are final stored arrivals, so only intra-cone edges order).
    indegree: Dict[NodeKey, int] = {}
    dependents: Dict[NodeKey, List[NodeKey]] = {}
    for key in cone:
        count = 0
        for net in state.node_inputs[key]:
            up = state.driver_node.get(net)
            if up is not None and up != key and up in cone:
                count += 1
                dependents.setdefault(up, []).append(key)
        indegree[key] = count
    ready = [key for key in cone if indegree[key] == 0]
    ordered: List[NodeKey] = []
    while ready:
        key = ready.pop()
        ordered.append(key)
        for dep in dependents.get(key, ()):
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)
    if len(ordered) != len(cone):  # pragma: no cover - malformed edit
        raise ValueError("incremental STA: cycle in the affected cone")

    # 5. Re-evaluate, cutting off where stored arrivals reproduce.
    # ``touched`` holds every net whose arrival or parasitics changed.
    touched: Set[str] = set(dirty_nets)
    cone_size = 0
    for key in ordered:
        node = state.nodes[key]
        out = node.out_net
        if (
            key not in changed_keys
            and out not in dirty_nets
            and not (state.node_inputs[key] & touched)
        ):
            continue
        cone_size += 1
        best, extrapolated = _eval_node(
            circuit, node, state.arrivals, parasitics, config, worst=True
        )
        min_best, _ = _eval_node(
            circuit, node, state.min_arrivals, parasitics, config,
            worst=False,
        )
        state.node_slow[key] = extrapolated
        old = state.arrivals.get(out)
        old_min = state.min_arrivals.get(out)
        if best is None:
            state.arrivals.pop(out, None)
        else:
            state.arrivals[out] = best
        if min_best is None:
            state.min_arrivals.pop(out, None)
        else:
            state.min_arrivals[out] = min_best
        if not (_same_arrival(old, best)
                and _same_arrival(old_min, min_best)):
            touched.add(out)

    # 6. Re-examine endpoints seeing a touched net (or edited flop).
    state.periods = {dom.net: dom.period_ps for dom in circuit.clocks}
    rechecked = 0
    for name, inst in circuit.instances.items():
        seq = inst.cell.sequential
        if seq is None:
            continue
        if name not in dirty_instances:
            d_net = inst.conns.get(seq.data_pin)
            clk_net = inst.conns.get(seq.clock_pin)
            if not (
                (d_net is not None and d_net in touched)
                or (clk_net is not None and clk_net in touched)
            ):
                continue
        rechecked += 1
        path, hold = _endpoint_record(
            circuit, inst, state.arrivals, state.min_arrivals,
            parasitics, config, state.periods,
        )
        if path is None:
            state.endpoint_paths.pop(name, None)
        else:
            state.endpoint_paths[name] = path
        if hold is None:
            state.endpoint_holds.pop(name, None)
        else:
            state.endpoint_holds[name] = hold

    state.cone_size = cone_size
    state.endpoints_rechecked = rechecked
    return _assemble(circuit, state), state
