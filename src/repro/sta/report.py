"""Human-readable timing reports (the ``report_timing`` equivalent).

Formats :class:`repro.sta.analysis.TimingPath` objects the way timing
engineers read them: startpoint/endpoint header, the eq. (3) term
breakdown, and a per-domain summary table with F_max — the exact
quantities of the paper's Table 3, one path at a time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sta.analysis import StaResult, TimingPath


def format_path(path: TimingPath, period_ps: Optional[float] = None) -> str:
    """Render one path as a report block."""
    lines = [
        f"Startpoint: {path.startpoint}",
        f"Endpoint:   {path.endpoint} (domain {path.domain})",
        "",
        f"  {'T_wires':<14}{path.t_wires_ps:>10.1f} ps",
        f"  {'T_intrinsic':<14}{path.t_intrinsic_ps:>10.1f} ps",
        f"  {'T_load-dep':<14}{path.t_load_dep_ps:>10.1f} ps",
        f"  {'T_setup':<14}{path.t_setup_ps:>10.1f} ps",
        f"  {'T_skew':<14}{path.t_skew_ps:>10.1f} ps",
        f"  {'-' * 26}",
        f"  {'T_cp (eq. 3)':<14}{path.total_ps:>10.1f} ps"
        f"   (F_max {path.fmax_mhz:.1f} MHz)",
    ]
    if period_ps is not None:
        lines.append(
            f"  {'slack':<14}{path.slack_ps:>10.1f} ps"
            f"   (period {period_ps:.0f} ps)"
        )
    if path.n_test_points:
        lines.append(
            f"  test points on this path: {path.n_test_points}"
        )
    return "\n".join(lines)


def format_summary(result: StaResult,
                   periods: Optional[dict] = None) -> str:
    """Per-domain one-line summary of an STA run."""
    lines = [
        f"{'domain':<10}{'T_cp(ps)':>10}{'F_max(MHz)':>12}"
        f"{'slack(ps)':>11}{'#TP_cp':>7}{'paths':>7}",
    ]
    for domain in sorted(result.paths):
        critical = result.critical(domain)
        if critical is None:
            continue
        lines.append(
            f"{domain:<10}{critical.total_ps:>10.0f}"
            f"{critical.fmax_mhz:>12.1f}"
            f"{critical.slack_ps:>11.0f}"
            f"{critical.n_test_points:>7}"
            f"{len(result.paths[domain]):>7}"
        )
    lines.append(
        f"slow nodes: {len(result.slow_nodes)}, "
        f"hold violations: {result.hold_violations}"
    )
    return "\n".join(lines)


def worst_paths_report(result: StaResult, count: int = 3) -> str:
    """The ``count`` most critical paths across all domains."""
    ranked: List[TimingPath] = sorted(
        result.all_paths(), key=lambda p: p.slack_ps
    )[:count]
    blocks = [format_path(p) for p in ranked]
    return ("\n" + "=" * 40 + "\n").join(blocks)
