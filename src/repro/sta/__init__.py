"""Static timing analysis: NLDM delays, Elmore wires, eq. (3) paths."""

from repro.sta.analysis import (
    StaConfig,
    StaResult,
    StaState,
    TimingPath,
    run_sta,
    run_sta_incremental,
    run_sta_with_state,
)
from repro.sta.delay import ArcDelay, evaluate_arc, wire_degraded_slew
from repro.sta.report import format_path, format_summary, worst_paths_report
from repro.sta.graph import (
    TimingNode,
    app_mode_arcs,
    build_timing_nodes,
    nodes_for_instance,
)

__all__ = [
    "ArcDelay",
    "format_path",
    "format_summary",
    "worst_paths_report",
    "StaConfig",
    "StaResult",
    "TimingNode",
    "TimingPath",
    "app_mode_arcs",
    "build_timing_nodes",
    "evaluate_arc",
    "run_sta",
    "wire_degraded_slew",
]
