"""Cell-arc delay evaluation on NLDM tables.

Splits every evaluated arc into the paper's decomposition terms:
*intrinsic* delay (table extrapolated to zero slew, zero load — exactly
the paper's "input signal with near-zero slew ... without load") and
*load-dependent* delay (everything above intrinsic, i.e. the slew- and
load-driven part).  Lookups outside the table range are flagged — those
cells are the paper's "slow nodes" (Section 4.4), evaluated by less
accurate extrapolation and reported, not fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.cell import TimingArc


@dataclass(frozen=True)
class ArcDelay:
    """One evaluated timing arc.

    Attributes:
        delay_ps: Total arc delay.
        out_slew_ps: Output transition time.
        intrinsic_ps: Zero-slew zero-load component.
        load_dependent_ps: delay - intrinsic.
        extrapolated: True when the lookup left the table range
            (a "slow node" evaluation).
    """

    delay_ps: float
    out_slew_ps: float
    intrinsic_ps: float
    load_dependent_ps: float
    extrapolated: bool


def evaluate_arc(arc: TimingArc, input_slew_ps: float, load_ff: float,
                 derate: float = 1.0) -> ArcDelay:
    """Evaluate one arc at the given slew and load.

    Args:
        arc: Library timing arc.
        input_slew_ps: Transition time at the arc's input pin.
        load_ff: Effective capacitive load on the output.
        derate: Multiplicative worst-case PVT derating.

    Returns:
        The evaluated delay with the paper's intrinsic / load-dependent
        split and the slow-node flag.
    """
    delay = arc.delay.lookup(input_slew_ps, load_ff)
    slew = arc.slew.lookup(input_slew_ps, load_ff)
    intrinsic = arc.delay.intrinsic_ps() * derate
    total = max(0.0, delay.value) * derate
    return ArcDelay(
        delay_ps=total,
        out_slew_ps=max(1.0, slew.value),
        intrinsic_ps=min(intrinsic, total),
        load_dependent_ps=max(0.0, total - intrinsic),
        extrapolated=delay.extrapolated or slew.extrapolated,
    )


def wire_degraded_slew(slew_ps: float, elmore_ps: float) -> float:
    """Slew at a sink after an RC wire (PERI-style degradation)."""
    return (slew_ps ** 2 + (2.2 * elmore_ps) ** 2) ** 0.5
