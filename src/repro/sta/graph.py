"""Application-mode timing graph construction.

The timing view of a netlist in application mode (TE = TR = 0):

* combinational cells contribute all their input->output arcs;
* plain and scan flip-flops contribute only the CLK->Q launch arc —
  their D/TI pins are path endpoints, not through-pins;
* TSFFs are *transparent*: they contribute only the D->Q pass-through
  arc (two mux hops).  Their TI->Q flush arc and the capture of D into
  the internal flop exist only in test modes, so they are exactly the
  false paths the paper blocks before analysis (Section 4.4: "we
  blocked all false paths that are only active in test mode").

Clock-tree buffers are ordinary combinational cells here, so clock
insertion delays and skew come out of the same propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.library.cell import LibraryCell, TimingArc
from repro.netlist.circuit import Circuit
from repro.netlist.instance import Instance


@dataclass(eq=False)
class TimingNode:
    """One evaluable element of the timing graph.

    Attributes:
        inst: The underlying instance.
        out_pin: Output pin of the node.
        out_net: Net driven by the node.
        arcs: Application-mode arcs ending at ``out_pin``.
        is_launch: True for sequential CLK->Q launch nodes (path
            accumulators restart here).
    """

    inst: Instance
    out_pin: str
    out_net: str
    arcs: List[TimingArc] = field(default_factory=list)
    is_launch: bool = False


def app_mode_arcs(cell: LibraryCell) -> List[TimingArc]:
    """Arcs active in application mode for one cell."""
    seq = cell.sequential
    if seq is None:
        return list(cell.arcs)
    if cell.is_tsff:
        # Transparent pass-through only; flush (TI->Q) and launch
        # (CLK->Q) are test-mode paths.
        return [a for a in cell.arcs if a.from_pin == seq.data_pin]
    return [a for a in cell.arcs if a.from_pin == seq.clock_pin]


def nodes_for_instance(inst: Instance) -> List[TimingNode]:
    """Application-mode timing nodes contributed by one instance.

    One node per driven output pin carrying at least one connected
    app-mode arc; fillers and arc-less cells contribute nothing.  This
    is the per-instance unit the incremental STA engine uses to
    rebuild exactly the nodes of netlist-dirty instances.
    """
    cell = inst.cell
    if cell.is_filler:
        return []
    arcs = app_mode_arcs(cell)
    if not arcs:
        return []
    by_out: Dict[str, List[TimingArc]] = {}
    for arc in arcs:
        if arc.from_pin in inst.conns and arc.to_pin in inst.conns:
            by_out.setdefault(arc.to_pin, []).append(arc)
    return [
        TimingNode(
            inst=inst,
            out_pin=out_pin,
            out_net=inst.conns[out_pin],
            arcs=out_arcs,
            is_launch=(cell.is_sequential and not cell.is_tsff),
        )
        for out_pin, out_arcs in by_out.items()
    ]


def build_timing_nodes(circuit: Circuit) -> List[TimingNode]:
    """Topologically ordered timing nodes of the application view.

    Raises:
        ValueError: The application-mode view has a combinational cycle
            (possible only through malformed TSFF insertion).
    """
    pending: List[TimingNode] = []
    for inst in circuit.instances.values():
        pending.extend(nodes_for_instance(inst))

    # Kahn sort on net dependencies.
    known = set(circuit.inputs)
    waiting: Dict[str, List[TimingNode]] = {}
    missing: Dict[int, int] = {}
    for i, node in enumerate(pending):
        needs = {
            node.inst.conns[a.from_pin]
            for a in node.arcs
        } - known
        missing[i] = len(needs)
        for net in needs:
            waiting.setdefault(net, []).append(node)
    index_of = {id(n): i for i, n in enumerate(pending)}
    ready = [n for n in pending if missing[index_of[id(n)]] == 0]
    ordered: List[TimingNode] = []
    while ready:
        node = ready.pop()
        ordered.append(node)
        out = node.out_net
        if out in known:
            continue
        known.add(out)
        for waiter in waiting.get(out, ()):
            i = index_of[id(waiter)]
            missing[i] -= 1
            if missing[i] == 0:
                ready.append(waiter)
    if len(ordered) != len(pending):
        done = {id(n) for n in ordered}
        stuck = [n.inst.name for n in pending if id(n) not in done][:8]
        raise ValueError(
            f"timing graph has a cycle or undriven input; stuck at {stuck}"
        )
    return ordered
