"""Structural statistics of netlists.

Profiles a circuit the way a DFT or physical-design audit would:
cell-type histogram, fanout distribution, logic-depth histogram and the
structural-origin census of generated circuits.  DESIGN.md's claim that
the synthetic benchmarks match the paper circuits' *aggregate*
structure is checked against exactly these numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.netlist.circuit import Circuit
from repro.netlist.levelize import extract_comb_view


@dataclass
class CircuitStats:
    """Structural profile of one circuit.

    Attributes:
        name: Circuit name.
        n_cells: Instances (fillers excluded).
        n_flip_flops: Sequential instances.
        n_nets: Net count.
        cell_histogram: Instances per library cell.
        fanout_histogram: Net count per fanout value (capped at 16+).
        max_depth: Combinational depth of the test view.
        mean_depth: Mean node level.
        tag_histogram: Nets per structural origin (generated circuits).
    """

    name: str
    n_cells: int = 0
    n_flip_flops: int = 0
    n_nets: int = 0
    cell_histogram: Dict[str, int] = field(default_factory=dict)
    fanout_histogram: Dict[int, int] = field(default_factory=dict)
    max_depth: int = 0
    mean_depth: float = 0.0
    tag_histogram: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        """Render the profile as a report block."""
        lines = [
            f"circuit {self.name}: {self.n_cells} cells "
            f"({self.n_flip_flops} FFs), {self.n_nets} nets, "
            f"depth max {self.max_depth} / mean {self.mean_depth:.1f}",
            "  top cells: " + ", ".join(
                f"{name} x{count}"
                for name, count in sorted(
                    self.cell_histogram.items(), key=lambda kv: -kv[1]
                )[:8]
            ),
            "  fanout:   " + ", ".join(
                f"{fo}:{count}"
                for fo, count in sorted(self.fanout_histogram.items())
            ),
        ]
        if self.tag_histogram:
            lines.append("  origins:  " + ", ".join(
                f"{tag}:{count}"
                for tag, count in sorted(self.tag_histogram.items())
            ))
        return "\n".join(lines)


def profile_circuit(circuit: Circuit) -> CircuitStats:
    """Compute the structural profile of ``circuit``."""
    stats = CircuitStats(name=circuit.name)
    cells = Counter()
    for inst in circuit.instances.values():
        if inst.cell.is_filler:
            continue
        cells[inst.cell.name] += 1
        stats.n_cells += 1
        if inst.is_sequential:
            stats.n_flip_flops += 1
    stats.cell_histogram = dict(cells)
    stats.n_nets = len(circuit.nets)

    fanouts = Counter()
    for net in circuit.nets.values():
        fanouts[min(16, net.fanout)] += 1
    stats.fanout_histogram = dict(fanouts)

    view = extract_comb_view(circuit, "test")
    if view.nodes:
        levels = [node.level for node in view.nodes]
        stats.max_depth = max(levels)
        stats.mean_depth = sum(levels) / len(levels)

    tags = getattr(circuit, "net_tags", None)
    if tags:
        stats.tag_histogram = dict(Counter(tags.values()))
    return stats


def compare_profiles(a: CircuitStats, b: CircuitStats) -> List[str]:
    """Human-readable structural differences between two circuits."""
    diffs: List[str] = []
    if abs(a.n_cells - b.n_cells) > 0.1 * max(a.n_cells, b.n_cells):
        diffs.append(f"cell count {a.n_cells} vs {b.n_cells}")
    if abs(a.n_flip_flops - b.n_flip_flops) > 0.1 * max(
        a.n_flip_flops, b.n_flip_flops, 1
    ):
        diffs.append(
            f"flip-flop count {a.n_flip_flops} vs {b.n_flip_flops}"
        )
    if abs(a.max_depth - b.max_depth) > 0.5 * max(a.max_depth,
                                                  b.max_depth, 1):
        diffs.append(f"depth {a.max_depth} vs {b.max_depth}")
    return diffs
