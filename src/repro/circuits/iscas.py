"""ISCAS'89 s38417 structural equivalent.

The paper maps s38417 onto the Philips 130 nm library by replacing each
primitive gate with the minimum-drive standard cell.  The original
benchmark netlist is distributed separately from this repository, so we
generate a structural clone to the published profile instead: 28 data
inputs, 106 outputs, 1 636 flip-flops and ~21 900 combinational gates
in a single clock domain — the numbers the paper's experiments actually
depend on (test-point percentages are defined against the FF count, and
the test/area/timing trends follow from the aggregate structure).
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.generators import CircuitProfile, ClockSpec, generate
from repro.library.cell import Library
from repro.library.cmos130 import cmos130

#: Published interface/size profile of s38417 (Brglez et al., ISCAS'89).
S38417_PROFILE = CircuitProfile(
    name="s38417",
    n_inputs=28,
    n_outputs=106,
    n_flip_flops=1636,
    n_gates=21900,
    clocks=(ClockSpec("clk", 10000.0, 1.0),),
    datapath_fraction=0.05,
    hard_fraction=0.18,
    locality=0.58,
    locality_window=128,
    hard_block_width=16,
)


def s38417_like(scale: float = 1.0, seed: int = 38417,
                library: Optional[Library] = None):
    """Generate the s38417 structural clone.

    Args:
        scale: Linear size factor; 1.0 reproduces the published profile
            (1 636 FFs), smaller values give proportionally smaller
            circuits for fast experiments.
        seed: Generation seed.
        library: Cell library; defaults to the shared 130 nm library.
    """
    return generate(S38417_PROFILE.scaled(scale), library or cmos130(),
                    seed=seed)
