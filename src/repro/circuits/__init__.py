"""Benchmark circuits: profile-driven synthetic equivalents of the
paper's three designs plus the generic generator."""

from repro.circuits.generators import CircuitProfile, ClockSpec, generate
from repro.circuits.iscas import S38417_PROFILE, s38417_like
from repro.circuits.stats import CircuitStats, compare_profiles, profile_circuit
from repro.circuits.philips import (
    CONTROL_CORE_PROFILE,
    P26909_PROFILE,
    control_core,
    dsp_core_p26909,
)

__all__ = [
    "CONTROL_CORE_PROFILE",
    "CircuitStats",
    "compare_profiles",
    "profile_circuit",
    "CircuitProfile",
    "ClockSpec",
    "P26909_PROFILE",
    "S38417_PROFILE",
    "control_core",
    "dsp_core_p26909",
    "generate",
    "s38417_like",
]
