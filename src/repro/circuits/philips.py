"""Synthetic equivalents of the two Philips SoC cores of the paper.

The paper's industrial circuits are proprietary; their netlists were
never released.  The experiments, however, only exploit their aggregate
structure, which the paper states explicitly:

* **circuit 1** — "a digital control core in a wireless communication
  IC", two clock domains with application requirements of 8 MHz and
  64 MHz (both met with large margin), laid out at 97% row utilisation.
* **p26909** — "a 24-bit DSP core", 32 scan chains, 50% row utilisation
  (routing-congestion limited), 140 MHz target frequency that TPI puts
  at risk.

The profiles below encode exactly those facts: the control core is
random-logic heavy with a small datapath share and two clock domains;
the DSP core is datapath-dominated (adder slices and mux trees around a
24-bit word) with a single fast clock and a larger flip-flop population.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.generators import CircuitProfile, ClockSpec, generate
from repro.library.cell import Library
from repro.library.cmos130 import cmos130

#: Profile of the wireless digital-control core ("circuit 1").
CONTROL_CORE_PROFILE = CircuitProfile(
    name="control_core",
    n_inputs=96,
    n_outputs=80,
    n_flip_flops=2912,
    n_gates=29000,
    clocks=(
        ClockSpec("clk8", 125000.0, 0.4),   # 8 MHz requirement
        ClockSpec("clk64", 15625.0, 0.6),   # 64 MHz requirement
    ),
    datapath_fraction=0.10,
    hard_fraction=0.12,
    locality=0.58,
    locality_window=128,
    hard_block_width=14,
)

#: Profile of the 24-bit DSP core p26909.
P26909_PROFILE = CircuitProfile(
    name="p26909",
    n_inputs=64,
    n_outputs=48,
    n_flip_flops=11168,
    n_gates=47000,
    clocks=(ClockSpec("clk", 7143.0, 1.0),),  # 140 MHz target
    datapath_fraction=0.45,
    hard_fraction=0.28,
    locality=0.55,
    locality_window=160,
    hard_block_width=16,
)


def control_core(scale: float = 1.0, seed: int = 2210,
                 library: Optional[Library] = None):
    """Generate the wireless digital-control core equivalent.

    Args:
        scale: Linear size factor (1.0 = full profile, 2 912 FFs).
        seed: Generation seed.
        library: Cell library; defaults to the shared 130 nm library.
    """
    return generate(CONTROL_CORE_PROFILE.scaled(scale), library or cmos130(),
                    seed=seed)


def dsp_core_p26909(scale: float = 1.0, seed: int = 26909,
                    library: Optional[Library] = None):
    """Generate the 24-bit DSP core (p26909) equivalent.

    Args:
        scale: Linear size factor (1.0 = full profile, 11 168 FFs).
        seed: Generation seed.
        library: Cell library; defaults to the shared 130 nm library.
    """
    return generate(P26909_PROFILE.scaled(scale), library or cmos130(),
                    seed=seed)
