"""Profile-driven generation of synthetic benchmark circuits.

The paper evaluates on ISCAS'89 s38417 and two proprietary Philips
cores.  The netlists of the Philips cores were never published, and the
paper only relies on their aggregate structure: flip-flop count, gate
count, clock domains, datapath-vs-control mix, and the presence of
hard-to-test (random-pattern-resistant) logic that test points cure.

This module builds circuits to such a profile.  Generation is seeded
and fully deterministic.  Three structural ingredients are mixed:

* **random control logic** — a levelised random DAG over a growing
  signal pool with locality bias (controls logic depth) and a long-tail
  fanout distribution;
* **datapath blocks** — ripple-carry adder slices and mux trees, giving
  the regular XOR/MUX-heavy structure of a DSP core;
* **hard blocks** — wide AND-reduction trees, deep parity chains and
  equality comparators: the classic random-pattern-resistant structures
  that motivate test-point insertion in the first place.

Every generated net is observable (dangling signals are folded into a
reduction tree feeding an extra output), so fault coverage reflects the
logic itself rather than generator artefacts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.library.cell import Library, LibraryCell
from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class ClockSpec:
    """One clock domain of a profile.

    Attributes:
        name: Clock port name.
        period_ps: Target period in ps.
        ff_fraction: Fraction of the circuit's flip-flops in the domain.
    """

    name: str
    period_ps: float
    ff_fraction: float


@dataclass
class CircuitProfile:
    """Structural recipe for a synthetic benchmark circuit.

    Attributes:
        name: Circuit name.
        n_inputs: Primary data inputs (clocks excluded).
        n_outputs: Primary outputs.
        n_flip_flops: Flip-flop count (the paper's test-point percentages
            are relative to this number).
        n_gates: Combinational gate count.
        clocks: Clock domains; fractions must sum to 1.
        datapath_fraction: Share of gates built as datapath blocks.
        hard_fraction: Share of gates built as random-pattern-resistant
            blocks.
        locality: Probability that a gate input is drawn from the most
            recently created signals; higher values create deeper logic.
        locality_window: Size of the "recent signals" window.
        hard_block_width: Input width of each AND-reduction hard block.
        target_depth: Soft cap on combinational logic depth (levels from
            a register/input to a register/output).  Gate inputs deeper
            than the per-gate budget are redrawn from shallower signals,
            yielding realistic 20-40-level register-to-register paths.
    """

    name: str
    n_inputs: int
    n_outputs: int
    n_flip_flops: int
    n_gates: int
    clocks: Sequence[ClockSpec] = field(
        default_factory=lambda: (ClockSpec("clk", 5000.0, 1.0),)
    )
    datapath_fraction: float = 0.0
    hard_fraction: float = 0.12
    locality: float = 0.58
    locality_window: int = 128
    hard_block_width: int = 14
    target_depth: int = 30

    def scaled(self, scale: float) -> "CircuitProfile":
        """A proportionally smaller (or larger) copy of the profile.

        Counts scale linearly with floors that keep tiny circuits
        well-formed; clock structure and logic mix are preserved.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return CircuitProfile(
            name=self.name if scale == 1.0 else f"{self.name}_s{scale:g}",
            n_inputs=max(4, round(self.n_inputs * scale)),
            n_outputs=max(4, round(self.n_outputs * scale)),
            n_flip_flops=max(8, round(self.n_flip_flops * scale)),
            n_gates=max(32, round(self.n_gates * scale)),
            clocks=self.clocks,
            datapath_fraction=self.datapath_fraction,
            hard_fraction=self.hard_fraction,
            locality=self.locality,
            locality_window=self.locality_window,
            hard_block_width=self.hard_block_width,
            target_depth=self.target_depth,
        )


#: Cell mix of the random control logic, as (cell base name, weight).
#: The mix is inverter/XOR/MUX-rich: heavily NAND/NOR-skewed random
#: DAGs drift to extreme signal probabilities under reconvergence and
#: manufacture accidentally untestable logic that synthesised netlists
#: do not exhibit; this mix keeps COP profiles realistic so that the
#: *deliberate* hard blocks dominate the random-resistant population.
_CONTROL_MIX: Tuple[Tuple[str, float], ...] = (
    ("NAND2_X1", 0.20),
    ("NOR2_X1", 0.10),
    ("INV_X1", 0.18),
    ("NAND3_X1", 0.05),
    ("NAND4_X1", 0.02),
    ("NOR3_X1", 0.03),
    ("AND2_X1", 0.07),
    ("OR2_X1", 0.07),
    ("AOI21_X1", 0.04),
    ("OAI21_X1", 0.04),
    ("XOR2_X1", 0.10),
    ("MUX2_X1", 0.10),
)


class _Builder:
    """Stateful helper that grows one circuit to a profile."""

    def __init__(self, profile: CircuitProfile, library: Library,
                 rng: random.Random):
        self.profile = profile
        self.lib = library
        self.rng = rng
        self.circuit = Circuit(profile.name)
        self.signals: List[str] = []       # all driven data nets, in order
        self.level: Dict[str, int] = {}    # logic depth of each signal
        self.shallow: List[str] = []       # level-0 signals (PIs, FF Qs)
        self.hard_roots: List[str] = []    # roots of hard blocks
        self.capture_nets: List[str] = []  # shadow exits needing FFs
        self.tag = "control"               # structural tag of new nets
        self.tags: Dict[str, str] = {}     # net -> structural origin
        self.gate_count = 0
        self._mix_cells = [self.lib[name] for name, _ in _CONTROL_MIX]
        self._mix_weights = [w for _, w in _CONTROL_MIX]

    # -- signal pool ---------------------------------------------------
    def pick_signal(self, max_level: Optional[int] = None,
                    exclude: Sequence[str] = ()) -> str:
        """Draw a gate input: recent with probability ``locality``.

        When ``max_level`` is given, candidates deeper than it are
        rejected (a few retries, then fall back to a level-0 signal) so
        logic depth stays near the profile's ``target_depth``.  Signals
        in ``exclude`` are avoided — real netlists do not feed the same
        net into two pins of one gate (that would synthesise away).
        """
        rng, prof = self.rng, self.profile
        for _ in range(8):
            if self.signals and rng.random() < prof.locality:
                window = self.signals[-prof.locality_window:]
                pick = rng.choice(window)
            else:
                pick = rng.choice(self.signals)
            if pick in exclude:
                continue
            if max_level is None or self.level[pick] <= max_level:
                return pick
        for pick in self.rng.sample(self.shallow, min(8, len(self.shallow))):
            if pick not in exclude:
                return pick
        return rng.choice(self.shallow)

    def pick_distinct(self, count: int,
                      max_level: Optional[int] = None) -> List[str]:
        """Draw ``count`` pairwise-distinct gate inputs."""
        picks: List[str] = []
        for _ in range(count):
            picks.append(self.pick_signal(max_level, exclude=picks))
        return picks

    def depth_budget(self) -> int:
        """Per-gate input depth budget, sampled around ``target_depth``."""
        target = self.profile.target_depth
        return self.rng.randint(max(2, target // 3), max(3, target - 1))

    def emit(self, net: str, level: int = 0) -> str:
        """Register a freshly driven net in the signal pool."""
        self.signals.append(net)
        self.level[net] = level
        self.tags[net] = self.tag
        if level == 0:
            self.shallow.append(net)
        return net

    # -- gate creation -------------------------------------------------
    def add_gate(self, cell: LibraryCell,
                 inputs: Optional[Sequence[str]] = None,
                 max_level: Optional[int] = None) -> str:
        """Instantiate ``cell`` with the given (or random) inputs.

        Returns the output net name.
        """
        in_pins = cell.input_pins
        if inputs is None:
            budget = max_level if max_level is not None else self.depth_budget()
            inputs = self.pick_distinct(len(in_pins), budget)
        if len(inputs) != len(in_pins):
            raise ValueError(
                f"{cell.name} needs {len(in_pins)} inputs, got {len(inputs)}"
            )
        out_pin = cell.output_pins[0]
        net = self.circuit.new_net(prefix="w")
        name = self.circuit.new_instance_name("g")
        conns = dict(zip(in_pins, inputs))
        conns[out_pin] = net.name
        self.circuit.add_instance(name, cell, conns)
        self.gate_count += 1
        out_level = 1 + max(self.level[i] for i in inputs)
        return self.emit(net.name, out_level)

    def random_gate(self) -> str:
        """One gate drawn from the control-logic cell mix."""
        cell = self.rng.choices(self._mix_cells, self._mix_weights)[0]
        return self.add_gate(cell)

    # -- structured blocks ----------------------------------------------
    def reduction_tree(self, leaves: Sequence[str], base: str) -> str:
        """Balanced 2-input reduction of ``leaves`` with ``base`` gates.

        ``base`` alternates NAND/NOR per level for AND-like reduction
        semantics, or uses XOR2 for parity.
        """
        level = list(leaves)
        use_nand = base == "AND"
        while len(level) > 1:
            nxt: List[str] = []
            if base == "XOR":
                cell = self.lib["XOR2_X1"]
            else:
                cell = self.lib["NAND2_X1" if use_nand else "NOR2_X1"]
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add_gate(cell, [level[i], level[i + 1]]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
            use_nand = not use_nand
        return level[0]

    def hard_block(self, width: int) -> str:
        """A random-pattern-resistant cone: comparator into AND tree.

        Half the leaves are XNOR equality bits (detection requires two
        signals to match), reduced through a wide AND tree — the kind of
        logic whose faults pseudo-random patterns essentially never
        reach, and where a single observation/control point collapses
        the required pattern count.

        Leaves are anchored on shallow (register-output) signals and the
        root is registered by a flip-flop (see :func:`generate`): the
        cone is *random-resistant* (detection probability about
        2^-width for its internal faults) yet deterministically
        tractable — the textbook pseudo-random-persistent structure
        that motivates TPI in the paper's LBIST references, where an
        observation point halfway up the tree collapses 2^-width into
        two easily detected halves.
        """
        xnor = self.lib["XNOR2_X1"]
        leaves = []
        for _ in range(width):
            if self.rng.random() < 0.5:
                leaves.append(self.add_gate(xnor, self.pick_distinct(2, 1)))
            else:
                leaves.append(self.pick_signal(1, exclude=leaves))
        root = self.reduction_tree(leaves, "AND")
        self.hard_roots.append(root)
        return root

    def shadow_region(self, n_gates: int, gate_width: int) -> List[str]:
        """A poorly observable logic region behind a comparator gate.

        Builds a self-contained random sub-network whose every exit is
        ANDed with a wide-comparator "region enable" before rejoining
        the circuit.  With the enable true only ~2^-gate_width of the
        time under random patterns, the whole region is essentially
        invisible to pseudo-random testing — the structural signature
        of the random-pattern-resistant industrial logic (bus-compare
        shadows, address-decoded blocks) that makes TPI pay off.  One
        *control* point on the enable restores full observability of
        the region, which is how a single TSFF rescues dozens of
        patterns.

        Returns the gated exit nets (already in the global pool).
        """
        # Seed the region with a spread of shallow global signals; a
        # wide seed set keeps the local logic justifiable (less
        # pathological reconvergence onto two or three signals).
        seeds = self.pick_distinct(min(24, max(8, n_gates // 6)), 1)
        local: List[str] = list(seeds)
        used: set = set()
        start_gates = self.gate_count
        global_signals = self.signals  # stash: region nets stay local
        rng = self.rng
        mix_cells, mix_weights = self._mix_cells, self._mix_weights

        self.signals = local
        try:
            while self.gate_count < start_gates + n_gates:
                if rng.random() < 0.30 and len(local) >= 8:
                    # Mini comparator: a narrow AND reduction over
                    # local signals.  Even with the region enable open,
                    # each mini-cone's faults need a specific local
                    # justification (~2^-width serendipity), so the
                    # region costs real *patterns* instead of being
                    # swept up by the first open-gate fill — yet the
                    # constraints stay shallow enough for PODEM.
                    width = rng.randint(5, 7)
                    leaves: List[str] = []
                    for _ in range(width):
                        pick = rng.choice(
                            [s for s in local if s not in leaves] or local
                        )
                        leaves.append(pick)
                        used.add(pick)
                    self.reduction_tree(leaves, "AND")
                    continue
                cell = rng.choices(mix_cells, mix_weights)[0]
                inputs = []
                for _ in cell.input_pins:
                    # Uniform draws over the local pool: the comparator
                    # gate alone provides random-pattern resistance,
                    # while shallow well-seeded internals keep every
                    # region fault within deterministic ATPG's reach —
                    # so the region's cost shows up as *patterns*, not
                    # as aborted faults.
                    candidates = [s for s in local if s not in inputs]
                    pick = rng.choice(candidates or local)
                    inputs.append(pick)
                    used.add(pick)
                self.add_gate(cell, inputs)
        finally:
            self.signals = global_signals

        # The comparator enable, built from globally shallow signals.
        enable = self.hard_block(gate_width)

        # Compress the locally unobserved nets through a few parity
        # trees, gate the tree roots with the enable, and hand the
        # gated exits straight to capture registers (via
        # ``capture_nets``).  Keeping region outputs out of the global
        # signal pool matters: gated signals are near-constant under
        # random patterns, and letting them feed general logic would
        # poison the testability of everything downstream — region
        # hardness must stay *inside* the region.
        unobserved = [
            net for net in local if net not in used and net not in seeds
        ]
        and2 = self.lib["AND2_X1"]
        exits: List[str] = []
        n_trees = max(2, min(4, len(unobserved) // 8)) or 1
        chunk = max(1, (len(unobserved) + n_trees - 1) // n_trees)
        self.signals = local  # parity trees stay region-local
        try:
            for i in range(0, len(unobserved), chunk):
                group = unobserved[i:i + chunk]
                root = (
                    group[0] if len(group) == 1
                    else self.reduction_tree(group, "XOR")
                )
                exits.append(self.add_gate(and2, [root, enable]))
        finally:
            self.signals = global_signals
        self.capture_nets.extend(exits)
        return exits

    def parity_chain(self, length: int) -> str:
        """A serial XOR chain (deep, poorly observable mid-points)."""
        xor = self.lib["XOR2_X1"]
        length = min(length, max(3, self.profile.target_depth - 4))
        out = self.pick_signal(3)
        for _ in range(length):
            out = self.add_gate(
                xor, [out, self.pick_signal(3, exclude=(out,))]
            )
        return out

    def adder_slice(self, width: int) -> List[str]:
        """A ``width``-bit ripple-carry adder over random operands."""
        xor, and2, or2 = (
            self.lib["XOR2_X1"], self.lib["AND2_X1"], self.lib["OR2_X1"]
        )
        operand_budget = max(2, self.profile.target_depth // 6)
        carry = self.pick_signal(operand_budget)
        sums: List[str] = []
        for _ in range(width):
            a, b = self.pick_distinct(2, operand_budget)
            p = self.add_gate(xor, [a, b])
            g = self.add_gate(and2, [a, b])
            sums.append(self.add_gate(xor, [p, carry]))
            t = self.add_gate(and2, [p, carry])
            carry = self.add_gate(or2, [g, t])
        sums.append(carry)
        return sums

    def mux_tree(self, depth: int) -> str:
        """A ``depth``-level mux selection tree (datapath steering)."""
        mux = self.lib["MUX2_X1"]
        budget = self.depth_budget()
        level = self.pick_distinct(1 << depth, budget)
        sel = self.pick_distinct(depth, budget)
        for d in range(depth):
            level = [
                self.add_gate(mux, [sel[d], level[i], level[i + 1]])
                for i in range(0, len(level), 2)
            ]
        return level[0]


def generate(profile: CircuitProfile, library: Library,
             seed: int = 2004) -> Circuit:
    """Generate a circuit matching ``profile``.

    Args:
        profile: Structural recipe.
        library: Cell library (needs the standard gate/DFF names of
            :func:`repro.library.cmos130`).
        seed: RNG seed; identical seeds yield identical netlists.

    Returns:
        A validated, flat, acyclic-combinational sequential circuit with
        all flip-flops as plain (non-scan) DFFs.
    """
    rng = random.Random(seed)
    b = _Builder(profile, library, rng)
    c = b.circuit

    fractions = sum(spec.ff_fraction for spec in profile.clocks)
    if abs(fractions - 1.0) > 1e-6:
        raise ValueError("clock ff_fractions must sum to 1")
    for spec in profile.clocks:
        c.add_clock(spec.name, spec.period_ps)
    for i in range(profile.n_inputs):
        b.emit(c.add_input(f"pi{i}").name)

    # Flip-flops first: their outputs seed the signal pool so that the
    # combinational logic spans register-to-register paths.
    dff = library["DFF_X1"]
    ff_names: List[str] = []
    domain_of: Dict[str, str] = {}
    remaining = profile.n_flip_flops
    for idx, spec in enumerate(profile.clocks):
        count = (
            remaining
            if idx == len(profile.clocks) - 1
            else round(profile.n_flip_flops * spec.ff_fraction)
        )
        remaining -= count
        for _ in range(count):
            q = c.new_net(prefix="q")
            name = c.new_instance_name("ff")
            c.add_instance(name, dff, {"CLK": spec.name, "Q": q.name})
            ff_names.append(name)
            domain_of[name] = spec.name
            b.emit(q.name)

    # Grow combinational logic to the gate budget.  The hard budget is
    # split between classic comparator/parity blocks and larger
    # comparator-shadowed regions (the structures that dominate the
    # pattern-count payoff of TPI).
    n_hard = int(profile.n_gates * profile.hard_fraction)
    n_datapath = int(profile.n_gates * profile.datapath_fraction)
    classic_budget = int(n_hard * 0.3)
    b.tag = "hard_block"
    while b.gate_count < classic_budget:
        if rng.random() < 0.7:
            b.hard_block(profile.hard_block_width)
        else:
            b.parity_chain(max(4, profile.hard_block_width // 2))
    b.tag = "shadow"
    while b.gate_count < n_hard:
        remaining = n_hard - b.gate_count
        region_gates = min(rng.randint(80, 150), max(30, remaining))
        b.shadow_region(region_gates, profile.hard_block_width)
    b.tag = "datapath"
    while b.gate_count < n_hard + n_datapath:
        if rng.random() < 0.6:
            b.adder_slice(8)
        else:
            b.mux_tree(3)
    b.tag = "control"
    while b.gate_count < profile.n_gates:
        b.random_gate()

    # Close the sequential loop: every FF D input reads a late signal.
    # Hard-block roots and shadow-region exits are registered first —
    # comparator outputs are state in real designs, and a directly
    # captured root keeps the cone deterministically testable while
    # random-resistant inside.
    recent = b.signals[-max(64, len(b.signals) // 4):]
    must_capture = b.hard_roots + b.capture_nets
    for i, name in enumerate(ff_names):
        if i < len(must_capture):
            c.connect(name, "D", must_capture[i])
        else:
            c.connect(name, "D", rng.choice(recent))
    # Any capture nets beyond the FF budget get their own outputs.
    for j, net in enumerate(must_capture[len(ff_names):]):
        c.add_output(f"po_cap{j}", net)

    # Primary outputs observe late signals too.
    po_nets = rng.sample(recent, min(profile.n_outputs, len(recent)))
    while len(po_nets) < profile.n_outputs:
        po_nets.append(rng.choice(recent))
    for i, net in enumerate(po_nets):
        c.add_output(f"po{i}", net)

    b.tag = "absorb"
    _absorb_dangling(b)
    c.net_tags = dict(b.tags)
    return c


def _absorb_dangling(b: _Builder, tree_width: int = 8) -> None:
    """Fold sink-less nets into small parity trees on extra outputs.

    Without this pass, randomly generated logic can leave cones that no
    output or flip-flop observes; their faults would be structurally
    undetectable and would depress fault coverage for reasons unrelated
    to testability.

    The dangling nets are shuffled and split across many *small* XOR
    trees (one observation output each).  One big tree would let a
    fault cone reach several leaves of the same tree and cancel itself
    (D xor D = 0), manufacturing pathologically masked faults that real
    netlists do not exhibit; scattering correlated nets across separate
    trees keeps every cone observable along an odd number of paths.
    """
    c = b.circuit
    dangling = [
        net.name
        for net in c.nets.values()
        if not net.sinks and net.driver is not None
    ]
    if not dangling:
        return
    b.rng.shuffle(dangling)
    for i in range(0, len(dangling), tree_width):
        chunk = dangling[i:i + tree_width]
        root = chunk[0] if len(chunk) == 1 else b.reduction_tree(chunk, "XOR")
        c.add_output(f"po_sink{i // tree_width}", root)
