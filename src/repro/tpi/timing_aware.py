"""Timing-aware test-point exclusion (paper Section 5 ablation).

The paper discusses the standard mitigation for TPI-induced timing
violations: run timing analysis first, identify all paths whose slack
falls below a threshold, and exclude their nets from test-point
insertion.  This module turns a post-layout STA result into the
``exclude_nets`` set consumed by :class:`repro.tpi.insertion.TpiConfig`,
enabling the paper's "exclude test points from critical paths" flow and
the ablation benchmark that quantifies its cost in testability.
"""

from __future__ import annotations

from typing import Iterable, Set


def critical_nets(paths: Iterable, slack_threshold_ps: float) -> Set[str]:
    """Nets on paths with slack below ``slack_threshold_ps``.

    Args:
        paths: Timing paths exposing ``slack_ps`` and ``nets``
            attributes (see :class:`repro.sta.analysis.TimingPath`).
        slack_threshold_ps: Paths with less slack than this contribute
            their nets to the exclusion set.

    Returns:
        The union of nets on all near-critical paths.
    """
    excluded: Set[str] = set()
    for path in paths:
        if path.slack_ps < slack_threshold_ps:
            excluded.update(path.nets)
    return excluded


def exclusion_report(excluded: Set[str], all_nets: int) -> str:
    """One-line summary used by the ablation benchmark output."""
    pct = 100.0 * len(excluded) / all_nets if all_nets else 0.0
    return (
        f"{len(excluded)} nets ({pct:.1f}% of {all_nets}) excluded "
        f"from test-point insertion"
    )
