"""Iterative test-point insertion (the paper's Section 3.1 method).

Each iteration recomputes the testability analyses (COP detection
probabilities, fanout-free regions; SCOAP is computed once for ATPG
guidance), derives the hard-fault population, ranks candidate nets with
:class:`repro.tpi.cost.CandidateScorer`, and inserts one TSFF at the
winner.  Insertion follows the paper's three steps:

1. calculate the netlist location (the candidate net),
2. determine the appropriate clock for the TSFF (clock-domain
   assignment by nearest-register majority),
3. insert the TSFF and connect its input and output signals: the
   original driver keeps the net and feeds the TSFF's ``D``; a fresh
   net driven by the TSFF's ``Q`` takes over all original sinks.

TPI stops when the requested number of test points has been inserted,
when the hard-fault population is exhausted (remaining budget falls
back to the largest poorly observable fanout-free regions), or when a
user constraint (iteration cap) is met — mirroring the stop criteria
listed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.library.cell import Library
from repro.netlist.circuit import Circuit
from repro.netlist.levelize import extract_comb_view
from repro.netlist.net import PORT
from repro.testability.cop import compute_cop
from repro.testability.regions import find_regions, region_of_net
from repro.tpi.clockdomain import assign_clock
from repro.tpi.cost import CandidateScorer, collect_hard_faults


@dataclass
class TpiConfig:
    """Knobs of a TPI run.

    Attributes:
        n_test_points: Number of TSFFs to insert (callers derive this
            from the paper's percentage of the flip-flop count).
        pd_threshold: COP detection probability below which a fault
            counts as hard (default targets ~4k-pattern random tests).
        max_candidates: Candidate nets scored per iteration.
        cone_depth: Forward-cone bound of the control-side scoring.
        exclude_nets: Nets that must not receive test points (the
            timing-aware exclusion of paper Section 5).
    """

    n_test_points: int
    pd_threshold: float = 1.0 / 4096.0
    max_candidates: int = 96
    cone_depth: int = 8
    exclude_nets: Set[str] = field(default_factory=set)


@dataclass
class InsertedTestPoint:
    """Record of one inserted TSFF.

    Attributes:
        instance: TSFF instance name.
        net: Net the TSFF observes (its ``D`` input).
        new_net: Net the TSFF drives (its ``Q`` output).
        clock: Clock domain assigned to the TSFF.
        iteration: TPI iteration that placed it.
        score: Candidate score at insertion time.
    """

    instance: str
    net: str
    new_net: str
    clock: str
    iteration: int
    score: float


@dataclass
class TpiReport:
    """Outcome of a TPI run.

    Attributes:
        inserted: Every inserted test point, in insertion order.
        hard_faults_before: Hard-fault count before the first insertion.
        hard_faults_after: Hard-fault count after the last insertion.
    """

    inserted: List[InsertedTestPoint] = field(default_factory=list)
    hard_faults_before: int = 0
    hard_faults_after: int = 0

    @property
    def count(self) -> int:
        """Number of inserted test points."""
        return len(self.inserted)


def _insertable(circuit: Circuit, net_name: str,
                forbidden: Set[str]) -> bool:
    """True when a TSFF may be inserted on ``net_name``."""
    if net_name in forbidden:
        return False
    net = circuit.nets[net_name]
    if net.driver is None or not net.sinks:
        return False
    driver_inst, _ = net.driver
    if driver_inst != PORT and circuit.instances[driver_inst].cell.is_tsff:
        return False  # never stack test points back to back
    for inst_name, pin in net.sinks:
        if inst_name == PORT:
            continue
        sink_cell = circuit.instances[inst_name].cell
        if sink_cell.is_tsff and sink_cell.sequential.data_pin == pin:
            return False  # the net already has an observation point
    # Nets that feed only sequential-control pins are off limits; data
    # sinks make a net eligible.
    for inst_name, pin in net.sinks:
        if inst_name == PORT:
            return True
        inst = circuit.instances[inst_name]
        pin_def = inst.cell.pins[pin]
        if not pin_def.is_clock:
            return True
    return False


def _forbidden_nets(circuit: Circuit, config: TpiConfig) -> Set[str]:
    """Clock nets, scan-control nets and user exclusions."""
    forbidden = set(config.exclude_nets)
    for dom in circuit.clocks:
        forbidden.add(dom.net)
    for inst in circuit.instances.values():
        seq = inst.cell.sequential
        if seq is None:
            continue
        for pin in (seq.scan_enable, seq.test_point_enable, seq.scan_in):
            if pin is not None and pin in inst.conns:
                forbidden.add(inst.conns[pin])
    return forbidden


def insert_test_points(circuit: Circuit, library: Library,
                       config: TpiConfig) -> TpiReport:
    """Insert ``config.n_test_points`` TSFFs into ``circuit``, in place.

    The TSFFs' scan pins (TI/TE/TR) are left unconnected; scan insertion
    (:func:`repro.scan.insertion.insert_scan`) stitches them, matching
    the combined "TPI & scan insertion" step of the paper's flow.

    Returns:
        A report of every insertion with its analysis context.
    """
    report = TpiReport()
    tsff_cell = library["TSFF_X1"]

    for iteration in range(config.n_test_points):
        view = extract_comb_view(circuit, "test")
        cop = compute_cop(view)
        hard = collect_hard_faults(cop, config.pd_threshold)
        if iteration == 0:
            report.hard_faults_before = len(hard)
        forbidden = _forbidden_nets(circuit, config)

        candidate_nets = _candidates(
            circuit, view, cop, hard, forbidden, config
        )
        if not candidate_nets:
            break
        scorer = CandidateScorer(
            view, cop, hard, cone_depth=config.cone_depth
        )
        scored = [(scorer.score(net), net) for net in candidate_nets]
        score, best = max(scored)
        record = _insert_tsff(
            circuit, tsff_cell, best, iteration, score
        )
        report.inserted.append(record)

    view = extract_comb_view(circuit, "test")
    cop = compute_cop(view)
    report.hard_faults_after = len(
        collect_hard_faults(cop, config.pd_threshold)
    )
    return report


def _candidates(circuit, view, cop, hard, forbidden: Set[str],
                config: TpiConfig) -> List[str]:
    """Shortlist of insertable nets worth scoring this iteration.

    Hard-fault sites, their fanout-free-region roots and *gating
    side-inputs* come first; when the hard population is exhausted the
    remaining budget falls back to roots of the largest badly
    observable regions.

    Gating side-inputs are the near-constant (extreme signal
    probability) signals feeding the same gates as a hard net: when a
    comparator output gates a whole region, that enable signal is where
    a single control point rescues every fault behind it, so it must be
    scored even though the enable itself may not carry the very hardest
    faults.
    """
    seen: Set[str] = set()
    ordered: List[str] = []

    def consider(net: Optional[str]) -> None:
        if (
            net is not None
            and net not in seen
            and net in circuit.nets
            and _insertable(circuit, net, forbidden)
        ):
            seen.add(net)
            ordered.append(net)

    regions = find_regions(view)
    root_of = region_of_net(regions)
    readers = view.fanout_index()

    def gating_side_inputs(net: str, hops: int = 12) -> None:
        """Walk the best observation path downstream from ``net`` and
        offer every near-constant side input met on the way.

        A hard fault deep inside a gated region observes the world
        through a chain ending at the gating AND; the gate's enable is
        the single most valuable control-point site and is only
        discoverable by following the path, not by looking at the
        fault's immediate neighbours.
        """
        current = net
        for _ in range(hops):
            nodes = readers.get(current, ())
            if not nodes:
                return
            best = max(
                nodes,
                key=lambda n: max(
                    (cop.branch_obs.get((current, n.inst.name, pin), 0.0)
                     for pin, pn in n.pin_nets.items() if pn == current),
                    default=0.0,
                ),
            )
            for pin_net in best.pin_nets.values():
                if pin_net == current:
                    continue
                p1 = cop.p1.get(pin_net, 0.5)
                if p1 < 0.05 or p1 > 0.95:
                    consider(pin_net)
            current = best.out_net

    for fault in sorted(hard, key=lambda f: f.pd):
        gating_side_inputs(fault.net)
        consider(fault.net)
        consider(root_of.get(fault.net))
        if len(ordered) >= config.max_candidates:
            return ordered

    # Fallback: largest regions with the worst root observability.
    by_benefit = sorted(
        regions.values(),
        key=lambda r: r.size * (1.0 - cop.obs.get(r.root, 0.0)),
        reverse=True,
    )
    for region in by_benefit:
        consider(region.root)
        if len(ordered) >= config.max_candidates:
            break
    return ordered


def _insert_tsff(circuit: Circuit, tsff_cell, net: str,
                 iteration: int, score: float) -> InsertedTestPoint:
    """Steps 2+3 of the paper: clock assignment and netlist rewrite."""
    clock = assign_clock(circuit, net)
    sinks = list(circuit.nets[net].sinks)
    new_net = circuit.split_net_before_sinks(net, sinks, new_prefix="tpq")
    name = circuit.new_instance_name("tp")
    circuit.add_instance(name, tsff_cell, {
        "D": net,
        "Q": new_net.name,
        "CLK": clock,
    })
    return InsertedTestPoint(
        instance=name,
        net=net,
        new_net=new_net.name,
        clock=clock,
        iteration=iteration,
        score=score,
    )
