"""Test-point insertion: the TSFF cell model and the iterative engine."""

from repro.tpi.clockdomain import assign_clock, nearest_domains
from repro.tpi.cost import CandidateScorer, HardFault, collect_hard_faults
from repro.tpi.insertion import (
    InsertedTestPoint,
    TpiConfig,
    TpiReport,
    insert_test_points,
)
from repro.tpi.timing_aware import critical_nets, exclusion_report
from repro.tpi.tsff import (
    ALL_MODES,
    APPLICATION,
    SCAN_CAPTURE,
    SCAN_FLUSH,
    SCAN_SHIFT,
    TsffMode,
    mode_table,
    tsff_next_state,
    tsff_output,
)

__all__ = [
    "ALL_MODES",
    "APPLICATION",
    "CandidateScorer",
    "HardFault",
    "InsertedTestPoint",
    "SCAN_CAPTURE",
    "SCAN_FLUSH",
    "SCAN_SHIFT",
    "TpiConfig",
    "TpiReport",
    "TsffMode",
    "assign_clock",
    "collect_hard_faults",
    "critical_nets",
    "exclusion_report",
    "insert_test_points",
    "mode_table",
    "nearest_domains",
    "tsff_next_state",
    "tsff_output",
]
