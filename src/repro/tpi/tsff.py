r"""The transparent scan flip-flop (TSFF) of the paper's Figure 1.

A TSFF is a scan flip-flop with an additional multiplexer at the
output.  The two muxes form the chain::

    D  --+                         +-- 0 \
         |                         |      mux --> Q
         +-- 0 \                   |  +-- 1 /
    TI ------- mux --> [FF] --> state |
         +-- 1 /  (TE)                +---- (TR)

Operating modes (paper Section 3.1):

=============  ====  ====  =====================================
mode            TE    TR   behaviour
=============  ====  ====  =====================================
application      0     0   Q = D (pass-through, two mux delays)
scan shift       1     1   FF shifts TI; Q driven from the FF
scan capture     0     1   FF captures D; Q driven from the FF —
                           the TSFF acts as observation point
                           (D captured) and control point
                           (Q forced from scan) at once
scan flush       1     0   Q = TI: tests the mux-to-mux path
=============  ====  ====  =====================================

This module is the single behavioural reference for the cell: the
library cell's ``next_state``/``bypass`` expressions are tested against
these functions, and the Figure 1 benchmark exercises them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class TsffMode:
    """One operating mode: the TE/TR control values."""

    name: str
    te: int
    tr: int


#: The four operating modes of Fig. 1.
APPLICATION = TsffMode("application", te=0, tr=0)
SCAN_SHIFT = TsffMode("scan_shift", te=1, tr=1)
SCAN_CAPTURE = TsffMode("scan_capture", te=0, tr=1)
SCAN_FLUSH = TsffMode("scan_flush", te=1, tr=0)

ALL_MODES = (APPLICATION, SCAN_SHIFT, SCAN_CAPTURE, SCAN_FLUSH)


def tsff_output(d: int, ti: int, te: int, tr: int, state: int) -> int:
    """Combinational output of the TSFF.

    ``Q = TR ? state : (TE ? TI : D)`` — the reference behaviour the
    library cell's ``bypass`` expression must match.
    """
    if tr:
        return state
    return ti if te else d


def tsff_next_state(d: int, ti: int, te: int) -> int:
    """Value captured by the internal flip-flop at a clock edge."""
    return ti if te else d


def mode_table() -> Dict[str, Dict[str, int]]:
    """Q per mode for every (D, TI, state) combination.

    Used by tests and by the Figure 1 benchmark to print the cell's
    behavioural table.
    """
    table: Dict[str, Dict[str, int]] = {}
    for mode in ALL_MODES:
        rows: Dict[str, int] = {}
        for d in (0, 1):
            for ti in (0, 1):
                for state in (0, 1):
                    key = f"d{d}_ti{ti}_s{state}"
                    rows[key] = tsff_output(d, ti, mode.te, mode.tr, state)
        table[mode.name] = rows
    return table
