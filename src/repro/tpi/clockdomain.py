"""Clock-domain assignment for inserted test points.

Step 2 of the paper's three TPI steps (Section 3.1): "determine the
appropriate clock signal for each TSFF, which is required for circuits
with multiple clock domains".  A TSFF inserted into combinational logic
must be clocked by the domain whose registers launch/capture through
that logic, otherwise scan capture would race the functional clocks.

The assignment walks the netlist breadth-first from the insertion net,
both backwards and forwards, until it meets sequential cells; the
majority domain among the nearest flip-flops wins.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Set

from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT


def nearest_domains(circuit: Circuit, net: str,
                    max_radius: int = 12) -> Counter:
    """Count clock domains of the flip-flops nearest to ``net``.

    Args:
        circuit: The netlist.
        net: Net where the test point will be inserted.
        max_radius: BFS depth bound (nets).

    Returns:
        Counter of clock-net names, weighted by 1/(1+distance) so that
        closer registers dominate.
    """
    counts: Counter = Counter()
    seen: Set[str] = {net}
    queue = deque([(net, 0)])
    while queue:
        current, dist = queue.popleft()
        if dist > max_radius:
            continue
        cnet = circuit.nets[current]
        neighbours = []
        # Backwards through the driver.
        if cnet.driver is not None and cnet.driver[0] != PORT:
            neighbours.append(cnet.driver[0])
        # Forwards through the sinks.
        neighbours.extend(
            inst for inst, _ in cnet.sinks if inst != PORT
        )
        for inst_name in neighbours:
            inst = circuit.instances[inst_name]
            if inst.is_sequential:
                clock = circuit.clock_of(inst_name)
                if clock is not None:
                    counts[clock] += 1.0 / (1 + dist)
                continue
            for _, nxt in list(inst.input_conns()) + list(inst.output_conns()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, dist + 1))
    return counts


def assign_clock(circuit: Circuit, net: str) -> str:
    """Clock domain for a test point on ``net``.

    Falls back to the circuit's first declared clock when no register
    is reachable (isolated logic).
    """
    counts = nearest_domains(circuit, net)
    if counts:
        return counts.most_common(1)[0][0]
    if not circuit.clocks:
        raise ValueError("circuit has no clock domains")
    return circuit.clocks[0].net
