"""Test-point candidate scoring.

The TPI method of the paper (Geuzebroek et al., ITC'00/'02) recomputes
testability measures at the start of every iteration and ranks insertion
candidates with a cost function over the measures.  This module is that
cost function: a TSFF at net *n* simultaneously

* makes *n* perfectly observable (``obs(n) = 1``) — every hard fault in
  the fan-in cone of *n* whose detection was limited by propagation
  beyond *n* is upgraded to ``pd' = drive * obs_to_n``;
* makes *n* a pseudo-random source (``p1(n) = 0.5``) for its fanout —
  hard faults downstream whose activation was starved by a skewed
  signal probability regain drive.

Scores are expected *log-gain* in detection probability summed over the
hard faults each candidate rescues; both effects are computed with
cone-local COP passes, so one iteration costs O(candidates x cone).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.netlist.levelize import CombView
from repro.testability.cop import CopResult, _sens_prob


@dataclass(frozen=True)
class HardFault:
    """A random-pattern-resistant fault site.

    Attributes:
        net: Faulted net.
        stuck: Stuck value.
        pd: Current COP detection probability.
    """

    net: str
    stuck: int
    pd: float


def collect_hard_faults(cop: CopResult, threshold: float) -> List[HardFault]:
    """All stem faults with detection probability below ``threshold``."""
    hard = []
    for net in cop.p1:
        for stuck in (0, 1):
            pd = cop.detection_probability(net, stuck)
            if pd < threshold:
                hard.append(HardFault(net=net, stuck=stuck, pd=pd))
    return hard


def _log_gain(old_pd: float, new_pd: float, floor: float = 1e-12) -> float:
    """log10 improvement of detection probability, clipped at zero."""
    if new_pd <= old_pd:
        return 0.0
    return math.log10(max(new_pd, floor) / max(old_pd, floor))


class CandidateScorer:
    """Scores test-point candidates against the current COP state.

    Args:
        view: Test-mode combinational view.
        cop: COP measures of the current netlist.
        hard: Hard-fault population to rescue.
        cone_depth: Bound (in logic levels) for the control-side
            forward pass; the observation-side pass walks the full
            fan-in cone, which is cheap because it stops at inputs.
    """

    def __init__(self, view: CombView, cop: CopResult,
                 hard: List[HardFault], cone_depth: int = 8,
                 max_cone: int = 1500):
        self.view = view
        self.cop = cop
        self.cone_depth = cone_depth
        self.max_cone = max_cone
        self.node_of = view.node_by_output()
        self.readers = view.fanout_index()
        self.hard_by_net: Dict[str, List[HardFault]] = {}
        for fault in hard:
            self.hard_by_net.setdefault(fault.net, []).append(fault)

    # ------------------------------------------------------------------
    def observation_gain(self, candidate: str) -> float:
        """Gain from making ``candidate`` perfectly observable.

        Runs a backward sensitisation pass rooted at the candidate
        (observability 1) over its fan-in cone and sums the log-gain of
        every hard fault found inside.
        """
        return self._backward_gain({candidate: 1.0})

    def _backward_gain(self, seeds: Dict[str, float]) -> float:
        """Hard-fault log-gain of improved observabilities ``seeds``.

        ``seeds`` maps nets to their *new* observability; the pass
        walks the combined fan-in cone distributing sensitisation
        probabilities and credits every hard fault whose detection
        probability improves.
        """
        obs_to: Dict[str, float] = dict(seeds)
        cone: List[str] = []
        seen: Set[str] = set(seeds)
        stack = list(seeds)
        while stack:
            net = stack.pop()
            cone.append(net)
            if len(cone) >= self.max_cone:
                break  # bound the pass; distant faults gain little
            node = self.node_of.get(net)
            if node is None:
                continue
            for pin_net in set(node.pin_nets.values()):
                if pin_net not in seen:
                    seen.add(pin_net)
                    stack.append(pin_net)
        cone.sort(
            key=lambda n: self.node_of[n].level if n in self.node_of else 0,
            reverse=True,
        )
        gain = 0.0
        for net in cone:
            here = obs_to.get(net, 0.0)
            for fault in self.hard_by_net.get(net, ()):
                drive = (
                    self.cop.p1[net] if fault.stuck == 0
                    else 1.0 - self.cop.p1[net]
                )
                gain += _log_gain(fault.pd, drive * here)
            node = self.node_of.get(net)
            if node is None or here == 0.0:
                continue
            pin_p = {
                pin: self.cop.p1[n] for pin, n in node.pin_nets.items()
            }
            acc: Dict[str, float] = {}
            _sens_prob(node.expr, pin_p, here, acc)
            for pin, value in acc.items():
                pin_net = node.pin_nets[pin]
                if value > obs_to.get(pin_net, 0.0):
                    obs_to[pin_net] = value
        return gain

    # ------------------------------------------------------------------
    def control_gain(self, candidate: str) -> float:
        """Gain from re-randomising ``candidate`` (``p1 = 0.5``).

        Two effects are credited:

        * **drive**: hard faults in the bounded forward cone whose
          activation was starved by a skewed signal probability;
        * **side-input observability**: a control point on a gating
          signal (e.g. a comparator "region enable") re-sensitises the
          gates it feeds, restoring observability to everything that
          exits through them.  The improved observabilities seed a
          backward pass identical to the observation-point analysis.
        """
        new_p1: Dict[str, float] = {candidate: 0.5}
        frontier = [(candidate, 0)]
        gain = _local_drive_gain(self.cop, self.hard_by_net, candidate, 0.5)
        visited: Set[str] = {candidate}
        obs_seeds: Dict[str, float] = {}
        while frontier:
            net, depth = frontier.pop()
            if depth >= self.cone_depth:
                continue
            for node in self.readers.get(net, ()):
                out = node.out_net
                # Side-input re-sensitisation at this gate.
                self._seed_side_inputs(node, new_p1, obs_seeds)
                if out in visited:
                    continue
                visited.add(out)
                pin_p = {
                    pin: new_p1.get(n, self.cop.p1[n])
                    for pin, n in node.pin_nets.items()
                }
                p = node.expr.eval_prob(pin_p)
                if abs(p - self.cop.p1[out]) < 1e-6:
                    continue  # probability change damped out
                new_p1[out] = p
                gain += _local_drive_gain(
                    self.cop, self.hard_by_net, out, p
                )
                frontier.append((out, depth + 1))
        if obs_seeds:
            gain += self._backward_gain(obs_seeds)
        return gain

    def _seed_side_inputs(self, node, new_p1: Dict[str, float],
                          obs_seeds: Dict[str, float]) -> None:
        """Record observability improvements on a gate's other inputs."""
        out_obs = self.cop.obs.get(node.out_net, 0.0)
        if out_obs <= 0.0:
            return
        pin_p = {
            pin: new_p1.get(n, self.cop.p1[n])
            for pin, n in node.pin_nets.items()
        }
        acc: Dict[str, float] = {}
        _sens_prob(node.expr, pin_p, out_obs, acc)
        for pin, value in acc.items():
            net = node.pin_nets[pin]
            if net in new_p1:
                continue  # that's the controlled path itself
            old = self.cop.obs.get(net, 0.0)
            if value > 4.0 * max(old, 1e-9) and value > obs_seeds.get(net, 0.0):
                obs_seeds[net] = value

    def score(self, candidate: str) -> float:
        """Combined TSFF benefit at ``candidate``."""
        return self.observation_gain(candidate) + self.control_gain(candidate)


def _local_drive_gain(cop: CopResult,
                      hard_by_net: Dict[str, List[HardFault]],
                      net: str, new_p1: float) -> float:
    """Drive-side log-gain for hard faults sitting on ``net``."""
    gain = 0.0
    for fault in hard_by_net.get(net, ()):
        old_drive = cop.p1[net] if fault.stuck == 0 else 1.0 - cop.p1[net]
        new_drive = new_p1 if fault.stuck == 0 else 1.0 - new_p1
        obs = cop.obs[net]
        gain += _log_gain(old_drive * obs, new_drive * obs)
    return gain
