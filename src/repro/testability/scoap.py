"""SCOAP testability measures (Goldstein's combinational measures).

Computes 0/1-controllability (CC0/CC1) and observability (CO) for every
net of a combinational view.  These are among the testability analysis
measures the paper's TPI engine computes at the start of each iteration
(Section 3.1: "including SCOAP, COP, and TC values").

Complex cells are described by logic-expression trees; every operator
node contributes one level (+1) to the measures, so an AOI21 counts as
two levels — a documented, slightly conservative interpretation of the
classic gate-level rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.library.logic import And, Const, LogicExpr, Mux, Not, Or, Var, Xor
from repro.netlist.levelize import CombView

#: Controllability assigned to unreachable states (e.g. CC1 of a tied-0 net).
INFINITE = math.inf


@dataclass
class ScoapResult:
    """SCOAP measures for one combinational view.

    Attributes:
        cc0: 0-controllability per net (1 at inputs).
        cc1: 1-controllability per net.
        co: Observability per net (0 at observable points); nets from
            which no observable point is reachable get ``INFINITE``.
    """

    cc0: Dict[str, float] = field(default_factory=dict)
    cc1: Dict[str, float] = field(default_factory=dict)
    co: Dict[str, float] = field(default_factory=dict)

    def testability(self, net: str) -> float:
        """Combined hardness of a net: ``min(cc0, cc1) + co``.

        Large values indicate hard-to-test lines; used as one of the
        TPI candidate-ranking signals.
        """
        return min(self.cc0[net], self.cc1[net]) + self.co[net]


def _expr_cc(expr: LogicExpr, pin_cc: Dict[str, Tuple[float, float]]
             ) -> Tuple[float, float]:
    """(cc0, cc1) of an expression tree; each operator adds one level."""
    if isinstance(expr, Var):
        return pin_cc[expr.pin]
    if isinstance(expr, Const):
        return (0.0, INFINITE) if expr.value == 0 else (INFINITE, 0.0)
    if isinstance(expr, Not):
        cc0, cc1 = _expr_cc(expr.arg, pin_cc)
        return cc1 + 1, cc0 + 1
    if isinstance(expr, And):
        children = [_expr_cc(a, pin_cc) for a in expr.args]
        return (
            min(c0 for c0, _ in children) + 1,
            sum(c1 for _, c1 in children) + 1,
        )
    if isinstance(expr, Or):
        children = [_expr_cc(a, pin_cc) for a in expr.args]
        return (
            sum(c0 for c0, _ in children) + 1,
            min(c1 for _, c1 in children) + 1,
        )
    if isinstance(expr, Xor):
        a0, a1 = _expr_cc(expr.a, pin_cc)
        b0, b1 = _expr_cc(expr.b, pin_cc)
        return min(a0 + b0, a1 + b1) + 1, min(a0 + b1, a1 + b0) + 1
    if isinstance(expr, Mux):
        s0, s1 = _expr_cc(expr.sel, pin_cc)
        a0, a1 = _expr_cc(expr.a, pin_cc)
        b0, b1 = _expr_cc(expr.b, pin_cc)
        return (
            min(s0 + a0, s1 + b0, a0 + b0) + 1,
            min(s0 + a1, s1 + b1, a1 + b1) + 1,
        )
    raise TypeError(f"unsupported expression node {type(expr).__name__}")


def _expr_obs(
    expr: LogicExpr,
    obs_out: float,
    pin_cc: Dict[str, Tuple[float, float]],
    acc: Dict[str, float],
) -> None:
    """Propagate observability ``obs_out`` down to the expression's pins.

    ``acc`` collects the best (minimum) observability per pin.
    """
    if isinstance(expr, Var):
        acc[expr.pin] = min(acc.get(expr.pin, INFINITE), obs_out)
        return
    if isinstance(expr, Const):
        return
    if isinstance(expr, Not):
        _expr_obs(expr.arg, obs_out + 1, pin_cc, acc)
        return
    if isinstance(expr, (And, Or)):
        one_controlled = isinstance(expr, And)
        ccs = [_expr_cc(a, pin_cc) for a in expr.args]
        side = [cc[1] if one_controlled else cc[0] for cc in ccs]
        total = sum(side)
        for arg, own in zip(expr.args, side):
            _expr_obs(arg, obs_out + (total - own) + 1, pin_cc, acc)
        return
    if isinstance(expr, Xor):
        a0, a1 = _expr_cc(expr.a, pin_cc)
        b0, b1 = _expr_cc(expr.b, pin_cc)
        _expr_obs(expr.a, obs_out + min(b0, b1) + 1, pin_cc, acc)
        _expr_obs(expr.b, obs_out + min(a0, a1) + 1, pin_cc, acc)
        return
    if isinstance(expr, Mux):
        s0, s1 = _expr_cc(expr.sel, pin_cc)
        a0, a1 = _expr_cc(expr.a, pin_cc)
        b0, b1 = _expr_cc(expr.b, pin_cc)
        _expr_obs(expr.a, obs_out + s0 + 1, pin_cc, acc)
        _expr_obs(expr.b, obs_out + s1 + 1, pin_cc, acc)
        # Select is observable when the two data inputs differ.
        differ = min(a0 + b1, a1 + b0)
        _expr_obs(expr.sel, obs_out + differ + 1, pin_cc, acc)
        return
    raise TypeError(f"unsupported expression node {type(expr).__name__}")


def compute_scoap(view: CombView) -> ScoapResult:
    """Compute SCOAP CC0/CC1/CO for every net of ``view``.

    Controllable inputs get CC = 1; constant-held nets get the exact
    controllability of their pinned value; observable points get CO = 0.
    """
    result = ScoapResult()
    cc0, cc1 = result.cc0, result.cc1

    for net in view.input_nets:
        cc0[net], cc1[net] = 1.0, 1.0
    for net, value in view.constants.items():
        cc0[net], cc1[net] = (
            (0.0, INFINITE) if value == 0 else (INFINITE, 0.0)
        )
    for node in view.nodes:
        pin_cc = {
            pin: (cc0[n], cc1[n]) for pin, n in node.pin_nets.items()
        }
        cc0[node.out_net], cc1[node.out_net] = _expr_cc(node.expr, pin_cc)

    co = result.co
    for net in cc0:
        co[net] = INFINITE
    for net, _ in view.output_refs:
        co[net] = 0.0
    for node in reversed(view.nodes):
        obs_out = co[node.out_net]
        if obs_out == INFINITE:
            continue
        pin_cc = {
            pin: (cc0[n], cc1[n]) for pin, n in node.pin_nets.items()
        }
        acc: Dict[str, float] = {}
        _expr_obs(node.expr, obs_out, pin_cc, acc)
        for pin, value in acc.items():
            net = node.pin_nets[pin]
            if value < co[net]:
                co[net] = value
    return result
