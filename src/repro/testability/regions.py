"""Fanout-free region (FFR) decomposition.

A fanout-free region is a maximal tree of gates in which every internal
net has exactly one sink; its root is a *stem* (a net with fanout > 1)
or an observable point.  The paper's TPI engine uses FFR sizes as one
of its per-iteration analysis measures: faults inside a large FFR all
funnel through one root, so an observation point at the root of a large,
poorly observable FFR pays for many faults at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.netlist.levelize import CombView


@dataclass
class FanoutFreeRegion:
    """One fanout-free region.

    Attributes:
        root: Net at the region's root (a stem or observable point).
        nets: All nets inside the region, root included.
        size: Number of gates (view nodes) inside the region.
    """

    root: str
    nets: List[str]
    size: int


def find_regions(view: CombView) -> Dict[str, FanoutFreeRegion]:
    """Decompose ``view`` into fanout-free regions, keyed by root net.

    Every node's output net belongs to exactly one region.  Inputs of
    the view are not members of any region.
    """
    observable = set(view.output_nets)
    fanout: Dict[str, int] = {}
    for node in view.nodes:
        for net in node.pin_nets.values():
            fanout[net] = fanout.get(net, 0) + 1
    for net in observable:
        fanout[net] = fanout.get(net, 0) + 1

    node_of = view.node_by_output()
    is_root = {
        net: (fanout.get(net, 0) != 1 or net in observable)
        for net in node_of
    }

    # Union-find-free approach: walk from each root down its tree.
    regions: Dict[str, FanoutFreeRegion] = {}
    for net, root_flag in is_root.items():
        if not root_flag:
            continue
        nets: List[str] = []
        stack = [net]
        gates = 0
        while stack:
            current = stack.pop()
            nets.append(current)
            node = node_of.get(current)
            if node is None:
                continue
            gates += 1
            for pin_net in set(node.pin_nets.values()):
                if pin_net in node_of and not is_root[pin_net]:
                    stack.append(pin_net)
        regions[net] = FanoutFreeRegion(root=net, nets=nets, size=gates)
    return regions


def region_of_net(regions: Dict[str, FanoutFreeRegion]) -> Dict[str, str]:
    """Invert a region map: net name -> root net of its region."""
    inverse: Dict[str, str] = {}
    for root, region in regions.items():
        for net in region.nets:
            inverse[net] = root
    return inverse
