"""COP: probabilistic controllability/observability analysis.

COP (Brglez) estimates, under an input-independence assumption, the
probability that a random pattern sets a net to 1 (``p1``) and the
probability that a value change on the net propagates to an observable
point (``obs``).  Their product gives per-fault *detection
probabilities* — the quantity the paper's TPI method uses to find
pseudo-random-resistant logic and to rank test-point candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.library.logic import And, Const, LogicExpr, Mux, Not, Or, Var, Xor
from repro.netlist.levelize import CombView


@dataclass
class CopResult:
    """COP measures for one combinational view.

    Attributes:
        p1: Probability that a uniform random input pattern sets the
            net to 1.
        obs: Probability that the net's value is observed at some
            observable point (union bound over fanout branches).
        branch_obs: Observability per fanout branch, keyed by
            ``(net, instance, pin)``.
    """

    p1: Dict[str, float] = field(default_factory=dict)
    obs: Dict[str, float] = field(default_factory=dict)
    branch_obs: Dict[Tuple[str, str, str], float] = field(default_factory=dict)

    def detection_probability(self, net: str, stuck_value: int) -> float:
        """P(a random pattern detects net stuck-at ``stuck_value``).

        Detection needs the fault site driven to the opposite value and
        the site observable: ``pd = p(opposite) * obs``.
        """
        drive = self.p1[net] if stuck_value == 0 else 1.0 - self.p1[net]
        return drive * self.obs[net]

    def hardest_faults(self, threshold: float):
        """Yield ``(net, stuck_value, pd)`` for faults with pd < threshold."""
        for net in self.p1:
            for sv in (0, 1):
                pd = self.detection_probability(net, sv)
                if pd < threshold:
                    yield net, sv, pd


def _sens_prob(expr: LogicExpr, pin_p: Dict[str, float],
               obs_out: float, acc: Dict[str, float]) -> None:
    """Distribute output observability ``obs_out`` to the input pins.

    At each operator the probability that the operator is *sensitized*
    to one operand multiplies the observability passed to that operand.
    """
    if isinstance(expr, Var):
        prev = acc.get(expr.pin, 0.0)
        # Union bound when a pin reaches the output along several paths.
        acc[expr.pin] = 1.0 - (1.0 - prev) * (1.0 - obs_out)
        return
    if isinstance(expr, Const):
        return
    if isinstance(expr, Not):
        _sens_prob(expr.arg, pin_p, obs_out, acc)
        return
    if isinstance(expr, And):
        probs = [a.eval_prob(pin_p) for a in expr.args]
        for i, arg in enumerate(expr.args):
            others = 1.0
            for j, p in enumerate(probs):
                if j != i:
                    others *= p
            _sens_prob(arg, pin_p, obs_out * others, acc)
        return
    if isinstance(expr, Or):
        probs = [a.eval_prob(pin_p) for a in expr.args]
        for i, arg in enumerate(expr.args):
            others = 1.0
            for j, p in enumerate(probs):
                if j != i:
                    others *= 1.0 - p
            _sens_prob(arg, pin_p, obs_out * others, acc)
        return
    if isinstance(expr, Xor):
        _sens_prob(expr.a, pin_p, obs_out, acc)
        _sens_prob(expr.b, pin_p, obs_out, acc)
        return
    if isinstance(expr, Mux):
        ps = expr.sel.eval_prob(pin_p)
        pa = expr.a.eval_prob(pin_p)
        pb = expr.b.eval_prob(pin_p)
        _sens_prob(expr.a, pin_p, obs_out * (1.0 - ps), acc)
        _sens_prob(expr.b, pin_p, obs_out * ps, acc)
        differ = pa * (1.0 - pb) + pb * (1.0 - pa)
        _sens_prob(expr.sel, pin_p, obs_out * differ, acc)
        return
    raise TypeError(f"unsupported expression node {type(expr).__name__}")


def compute_cop(view: CombView) -> CopResult:
    """Compute COP p1/obs for every net of ``view``.

    Controllable inputs get ``p1 = 0.5``; constant nets get their pinned
    probability; observable points get ``obs = 1``.
    """
    result = CopResult()
    p1 = result.p1

    for net in view.input_nets:
        p1[net] = 0.5
    for net, value in view.constants.items():
        p1[net] = float(value)
    for node in view.nodes:
        pin_p = {pin: p1[n] for pin, n in node.pin_nets.items()}
        p1[node.out_net] = node.expr.eval_prob(pin_p)

    obs = result.obs
    for net in p1:
        obs[net] = 0.0
    for net, _ in view.output_refs:
        obs[net] = 1.0
    for node in reversed(view.nodes):
        obs_out = obs[node.out_net]
        if obs_out == 0.0:
            continue
        pin_p = {pin: p1[n] for pin, n in node.pin_nets.items()}
        acc: Dict[str, float] = {}
        _sens_prob(node.expr, pin_p, obs_out, acc)
        for pin, value in acc.items():
            net = node.pin_nets[pin]
            result.branch_obs[(net, node.inst.name, pin)] = value
            # Stem observability: union bound over branches.
            obs[net] = 1.0 - (1.0 - obs[net]) * (1.0 - value)
    return result
