"""Testability analysis: SCOAP, COP and fanout-free regions."""

from repro.testability.cop import CopResult, compute_cop
from repro.testability.regions import (
    FanoutFreeRegion,
    find_regions,
    region_of_net,
)
from repro.testability.scoap import INFINITE, ScoapResult, compute_scoap

__all__ = [
    "CopResult",
    "FanoutFreeRegion",
    "INFINITE",
    "ScoapResult",
    "compute_cop",
    "compute_scoap",
    "find_regions",
    "region_of_net",
]
