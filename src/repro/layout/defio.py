"""DEF (Design Exchange Format) export of layouts.

Writes the subset of DEF 5.8 that downstream physical tools consume for
a placed-and-routed standard-cell block: DIEAREA, ROW statements,
COMPONENTS with placement status and orientation, PINS at the pad ring,
and NETS with regular-wiring segments.  Units are DEF database units
(1000 per micron, the conventional value).

The writer exists for interoperability checks — a layout produced by
this flow can be loaded into external viewers — and as the precise,
diffable record of a run's physical state.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.layout.floorplan import Floorplan
from repro.layout.placement import Placement
from repro.layout.routing import RoutedNet
from repro.library.cell import SITE_WIDTH_UM
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT

#: DEF database units per micron.
DBU_PER_UM = 1000


def _dbu(value_um: float) -> int:
    return int(round(value_um * DBU_PER_UM))


def to_def(
    circuit: Circuit,
    plan: Floorplan,
    placement: Placement,
    routed: Optional[Dict[str, RoutedNet]] = None,
    max_nets: Optional[int] = None,
) -> str:
    """Render the layout as DEF text.

    Args:
        circuit: The laid-out netlist.
        plan: Floorplan (die area, rows, pad positions).
        placement: Cell locations.
        routed: Optional routed nets (emitted as REGULARWIRING).
        max_nets: Optional cap on emitted nets (huge designs).

    Returns:
        The DEF document as a string.
    """
    lines: List[str] = [
        "VERSION 5.8 ;",
        'DIVIDERCHAR "/" ;',
        'BUSBITCHARS "[]" ;',
        f"DESIGN {circuit.name} ;",
        f"UNITS DISTANCE MICRONS {DBU_PER_UM} ;",
        (
            f"DIEAREA ( {_dbu(plan.chip.x0)} {_dbu(plan.chip.y0)} ) "
            f"( {_dbu(plan.chip.x1)} {_dbu(plan.chip.y1)} ) ;"
        ),
    ]

    for row in plan.rows:
        orient = "FS" if row.flipped else "N"
        lines.append(
            f"ROW row_{row.index} CoreSite {_dbu(row.x0)} {_dbu(row.y)} "
            f"{orient} DO {row.n_sites} BY 1 "
            f"STEP {_dbu(SITE_WIDTH_UM)} 0 ;"
        )

    placed = [
        (name, inst) for name, inst in circuit.instances.items()
        if name in placement.positions
    ]
    lines.append(f"COMPONENTS {len(placed)} ;")
    for name, inst in placed:
        x, y = placement.positions[name]
        row_index = placement.row_of.get(name, 0)
        flipped = plan.rows[row_index].flipped if plan.rows else False
        orient = "FS" if flipped else "N"
        llx = x - inst.cell.width_um / 2
        lly = y - inst.cell.height_um / 2
        lines.append(
            f"- {name} {inst.cell.name} + PLACED "
            f"( {_dbu(llx)} {_dbu(lly)} ) {orient} ;"
        )
    lines.append("END COMPONENTS")

    ports = list(circuit.inputs) + list(circuit.outputs)
    lines.append(f"PINS {len(ports)} ;")
    for port in ports:
        direction = "INPUT" if port in circuit.inputs else "OUTPUT"
        pos = plan.pad_positions.get(port, plan.chip.center)
        lines.append(
            f"- {port} + NET {port} + DIRECTION {direction} "
            f"+ FIXED ( {_dbu(pos[0])} {_dbu(pos[1])} ) N ;"
        )
    lines.append("END PINS")

    net_names = sorted(circuit.nets)
    if max_nets is not None:
        net_names = net_names[:max_nets]
    lines.append(f"NETS {len(net_names)} ;")
    for net_name in net_names:
        net = circuit.nets[net_name]
        refs = list(net.sinks)
        if net.driver is not None:
            refs.append(net.driver)
        conn = " ".join(
            f"( PIN {pin} )" if inst == PORT else f"( {inst} {pin} )"
            for inst, pin in refs
        )
        line = f"- {net_name} {conn}"
        segments = (routed or {}).get(net_name)
        if segments is not None and segments.segments:
            wires = []
            for i, seg in enumerate(segments.segments):
                keyword = "+ ROUTED" if i == 0 else "NEW"
                wires.append(
                    f"{keyword} M{seg.layer} "
                    f"( {_dbu(seg.x0)} {_dbu(seg.y0)} ) "
                    f"( {_dbu(seg.x1)} {_dbu(seg.y1)} )"
                )
            line += " " + " ".join(wires)
        lines.append(line + " ;")
    lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def def_statistics(def_text: str) -> Dict[str, int]:
    """Quick structural census of a DEF document (used in tests)."""
    stats = {"rows": 0, "components": 0, "pins": 0, "nets": 0}
    for line in def_text.splitlines():
        token = line.strip().split(" ", 1)[0]
        if token == "ROW":
            stats["rows"] += 1
        elif token == "COMPONENTS":
            stats["components"] = int(line.split()[1])
        elif token == "PINS":
            stats["pins"] = int(line.split()[1])
        elif token == "NETS":
            stats["nets"] = int(line.split()[1])
    return stats
