"""Basic planar geometry shared by the layout engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (um).

    Attributes:
        x0: Left edge.
        y0: Bottom edge.
        x1: Right edge.
        y1: Top edge.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Area in um^2."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point."""
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        x, y = point
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def inset(self, margin: float) -> "Rect":
        """Rectangle shrunk by ``margin`` on every side."""
        return Rect(
            self.x0 + margin, self.y0 + margin,
            self.x1 - margin, self.y1 - margin,
        )


def manhattan(a: Point, b: Point) -> float:
    """Manhattan distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def hpwl(points) -> float:
    """Half-perimeter wirelength of a point set (standard net estimate)."""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if not xs:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
