"""Detailed placement: greedy wirelength refinement.

After global placement and legalisation, a classic cleanup pass walks
every row and swaps adjacent cells whenever the swap shortens the
half-perimeter wirelength of the nets they touch.  The pass preserves
legality by construction (cells exchange their site spans within the
row) and converges in a few sweeps; it is the cheap tail of what
Silicon Ensemble's detailed placer did after its global stage.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.layout.geometry import Point
from repro.layout.placement import Placement, _pack_row
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT


class _HpwlCache:
    """Incremental HPWL bookkeeping for swap evaluation."""

    def __init__(self, circuit: Circuit, placement: Placement):
        self.circuit = circuit
        self.placement = placement
        # Nets incident to each instance (data nets only).
        self.nets_of: Dict[str, List[str]] = {}
        for name, inst in circuit.instances.items():
            if inst.cell.is_filler:
                continue
            self.nets_of[name] = list(set(inst.conns.values()))

    def _net_points(self, net_name: str) -> List[Point]:
        net = self.circuit.nets[net_name]
        refs = list(net.sinks)
        if net.driver is not None:
            refs.append(net.driver)
        points = []
        for inst, pin in refs:
            if inst == PORT:
                pos = self.placement.plan.pad_positions.get(pin)
            else:
                pos = self.placement.positions.get(inst)
            if pos is not None:
                points.append(pos)
        return points

    def hpwl(self, net_name: str) -> float:
        points = self._net_points(net_name)
        if not points:
            return 0.0
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def cost_around(self, cells: Tuple[str, ...]) -> float:
        nets: Set[str] = set()
        for cell in cells:
            nets.update(self.nets_of.get(cell, ()))
        return sum(self.hpwl(net) for net in nets)


def refine_placement(circuit: Circuit, placement: Placement,
                     passes: int = 2) -> float:
    """Swap-adjacent detailed placement, in place.

    Args:
        circuit: The placed netlist.
        placement: Placement to refine (positions are updated).
        passes: Full row sweeps to run.

    Returns:
        Total HPWL improvement in um (>= 0).
    """
    cache = _HpwlCache(circuit, placement)
    improvement = 0.0
    for _ in range(max(0, passes)):
        swapped_any = False
        for row_index, cells in enumerate(placement.rows_cells):
            for i in range(len(cells) - 1):
                a, b = cells[i], cells[i + 1]
                if (circuit.instances[a].cell.is_filler
                        or circuit.instances[b].cell.is_filler):
                    continue
                before = cache.cost_around((a, b))
                pos_a = placement.positions[a]
                pos_b = placement.positions[b]
                wa = circuit.instances[a].cell.width_um
                wb = circuit.instances[b].cell.width_um
                # Swap: b takes a's left edge, a follows b.
                left = min(pos_a[0] - wa / 2, pos_b[0] - wb / 2)
                placement.positions[b] = (left + wb / 2, pos_b[1])
                placement.positions[a] = (left + wb + wa / 2, pos_a[1])
                after = cache.cost_around((a, b))
                if after < before - 1e-9:
                    cells[i], cells[i + 1] = b, a
                    improvement += before - after
                    swapped_any = True
                else:
                    placement.positions[a] = pos_a
                    placement.positions[b] = pos_b
        if not swapped_any:
            break
    return improvement
