"""Filler-cell insertion.

After ECO and before routing, the flow fills every remaining gap in
the rows with filler cells (paper Section 3.2: "filler cells prevent
discontinuities in the power and ground strips at the top and bottom of
the rows").  Fillers are real instances with area but no pins; their
share of the core area is the "filler cells area" column of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.library.cell import Library, SITE_WIDTH_UM
from repro.layout.placement import Placement
from repro.netlist.circuit import Circuit


@dataclass
class FillerReport:
    """Outcome of filler insertion.

    Attributes:
        n_fillers: Filler instances added.
        filler_sites: Total sites covered by fillers.
        filler_area_um2: Filler area.
        filler_fraction: Filler area / core row area (Table 2 column).
    """

    n_fillers: int
    filler_sites: int
    filler_area_um2: float
    filler_fraction: float


def insert_fillers(circuit: Circuit, placement: Placement,
                   library: Library) -> FillerReport:
    """Fill every row gap with the widest fitting filler cells.

    Filler instances are added to the netlist (pin-less) and placed;
    they participate in area accounting but not in logic or timing.
    """
    fillers = library.fillers()
    if not fillers:
        raise ValueError("library has no filler cells")
    widths = sorted((f.width_sites for f in fillers), reverse=True)
    by_width = {f.width_sites: f for f in fillers}
    smallest = min(widths)

    plan = placement.plan
    n_fillers = 0
    filler_sites = 0
    from repro.library.cell import ROW_HEIGHT_UM

    for row_index, row in enumerate(plan.rows):
        cells = placement.rows_cells[row_index]
        # Gaps between placed cells (and the row ends).
        occupied: List[tuple] = []
        for name in cells:
            x_center, _ = placement.positions[name]
            w = circuit.instances[name].cell.width_sites
            start = int(round((x_center - w * SITE_WIDTH_UM / 2 - row.x0)
                              / SITE_WIDTH_UM))
            occupied.append((start, start + w, name))
        occupied.sort()
        cursor = 0
        gaps: List[tuple] = []
        for start, end, _ in occupied:
            if start > cursor:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if cursor < row.n_sites:
            gaps.append((cursor, row.n_sites))

        for gap_start, gap_end in gaps:
            pos = gap_start
            remaining = gap_end - gap_start
            while remaining >= smallest:
                for w in widths:
                    if w <= remaining:
                        cell = by_width[w]
                        name = circuit.new_instance_name("fill")
                        circuit.add_instance(name, cell, {})
                        x_center = row.site_x(pos) + w * SITE_WIDTH_UM / 2
                        placement.positions[name] = (
                            x_center, row.y + ROW_HEIGHT_UM / 2
                        )
                        placement.row_of[name] = row_index
                        placement.rows_cells[row_index].append(name)
                        n_fillers += 1
                        filler_sites += w
                        pos += w
                        remaining -= w
                        break

    core_area = plan.core_area_um2
    filler_area = filler_sites * SITE_WIDTH_UM * ROW_HEIGHT_UM
    return FillerReport(
        n_fillers=n_fillers,
        filler_sites=filler_sites,
        filler_area_um2=filler_area,
        filler_fraction=filler_area / core_area if core_area else 0.0,
    )
