"""Clock-tree synthesis (the flow's CT-GEN substitute).

Builds one buffered clock tree per clock domain using recursive
geometric clustering: sinks (flip-flop CLK pins) are clustered
bottom-up into groups of bounded size and span, each cluster gets a
clock buffer at its centroid, and the process repeats on the buffers
until a single root remains, which is driven from the clock pad.

The tree is real netlist: CLKBUF instances are inserted and every FF's
CLK pin is rewired to its leaf buffer's net.  Per-sink insertion delays
(and hence the skew term of the paper's eq. 3) fall out of ordinary RC
extraction and STA over these nets — no idealised clock modelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.library.cell import Library
from repro.layout.geometry import Point
from repro.netlist.circuit import Circuit

#: Maximum sinks per clock buffer.
MAX_CLUSTER_SINKS = 18


@dataclass
class ClockTree:
    """One synthesised clock tree.

    Attributes:
        domain: Clock domain net (the tree's source).
        buffers: Inserted buffer instance names, leaves first.
        levels: Number of buffer levels.
        buffer_positions: Desired position per inserted buffer (the ECO
            placer legalises these).
        sink_leaf: Leaf buffer net per sink instance.
        level_sizes: Buffer count per tree level, leaves (level 0)
            first; sums to ``len(buffers)``.
    """

    domain: str
    buffers: List[str] = field(default_factory=list)
    levels: int = 0
    buffer_positions: Dict[str, Point] = field(default_factory=dict)
    sink_leaf: Dict[str, str] = field(default_factory=dict)
    level_sizes: List[int] = field(default_factory=list)


def _cluster(points: List[Tuple[str, Point]],
             max_size: int) -> List[List[Tuple[str, Point]]]:
    """Recursively split sinks along the wider axis until small enough."""
    if len(points) <= max_size:
        return [points]
    xs = [p[1][0] for p in points]
    ys = [p[1][1] for p in points]
    horizontal = (max(xs) - min(xs)) >= (max(ys) - min(ys))
    axis = 0 if horizontal else 1
    ordered = sorted(points, key=lambda item: item[1][axis])
    mid = len(ordered) // 2
    return _cluster(ordered[:mid], max_size) + _cluster(ordered[mid:], max_size)


def _centroid(points: Sequence[Point]) -> Point:
    return (
        sum(p[0] for p in points) / len(points),
        sum(p[1] for p in points) / len(points),
    )


def synthesize_clock_tree(
    circuit: Circuit,
    library: Library,
    domain: str,
    sink_positions: Dict[str, Point],
    max_cluster: int = MAX_CLUSTER_SINKS,
) -> ClockTree:
    """Build the buffered tree for one clock domain, in place.

    Args:
        circuit: Netlist (rewired in place).
        library: Library providing clock buffers.
        domain: Clock net name (must be a declared clock).
        sink_positions: Placement location per sequential instance in
            the domain.
        max_cluster: Maximum sinks per leaf buffer.

    Returns:
        The tree description (buffers, levels, desired positions).
    """
    with obs.span(f"clock_tree:{domain}") as sp:
        tree = _build_clock_tree(circuit, library, domain,
                                 sink_positions, max_cluster)
        sp.counter("buffers", len(tree.buffers))
        sp.gauge("levels", tree.levels)
        for level, size in enumerate(tree.level_sizes):
            sp.gauge(f"level{level}_buffers", size)
    return tree


def _build_clock_tree(
    circuit: Circuit,
    library: Library,
    domain: str,
    sink_positions: Dict[str, Point],
    max_cluster: int,
) -> ClockTree:
    """The construction behind :func:`synthesize_clock_tree`."""
    tree = ClockTree(domain=domain)
    sinks = [
        (inst.name, sink_positions[inst.name])
        for inst in circuit.instances.values()
        if inst.is_sequential
        and circuit.clock_of(inst.name) == domain
        and inst.name in sink_positions
    ]
    if not sinks:
        return tree

    buffers = library.clock_buffers()
    if not buffers:
        raise ValueError("library has no clock buffers")
    leaf_cell = buffers[-1]

    # Detach every sink from the domain net; they reattach to leaves.
    detached: List[Tuple[str, str]] = []
    for name, _ in sinks:
        inst = circuit.instances[name]
        clk_pin = inst.cell.clock_pin
        circuit.disconnect(name, clk_pin)
        detached.append((name, clk_pin))

    # Level 0: cluster the sinks, one leaf buffer per cluster.
    current: List[Tuple[str, Point]] = []  # (driving net, position)
    for cluster in _cluster(sinks, max_cluster):
        centre = _centroid([p for _, p in cluster])
        net = circuit.new_net(prefix=f"ck_{domain}")
        buf = circuit.new_instance_name(f"ckbuf_{domain}")
        circuit.add_instance(buf, leaf_cell, {"Z": net.name})
        tree.buffers.append(buf)
        tree.buffer_positions[buf] = centre
        for name, _ in cluster:
            inst = circuit.instances[name]
            clk_pin = inst.cell.clock_pin
            circuit.connect(name, clk_pin, net.name)
            tree.sink_leaf[name] = net.name
        current.append((buf, centre))
    tree.levels = 1
    tree.level_sizes.append(len(current))

    # Upper levels: cluster buffers until one remains.
    while len(current) > 1:
        nxt: List[Tuple[str, Point]] = []
        clusters = _cluster(
            [(name, pos) for name, pos in current], max_cluster
        )
        for cluster in clusters:
            centre = _centroid([p for _, p in cluster])
            net = circuit.new_net(prefix=f"ck_{domain}")
            buf = circuit.new_instance_name(f"ckbuf_{domain}")
            circuit.add_instance(buf, leaf_cell, {"Z": net.name})
            tree.buffers.append(buf)
            tree.buffer_positions[buf] = centre
            for child, _ in cluster:
                circuit.connect(child, "A", net.name)
            nxt.append((buf, centre))
        current = nxt
        tree.levels += 1
        tree.level_sizes.append(len(current))

    # Root buffer's input comes from the clock pad net.
    root = current[0][0]
    circuit.connect(root, "A", domain)
    return tree


def synthesize_all_clock_trees(
    circuit: Circuit,
    library: Library,
    sink_positions: Dict[str, Point],
    max_cluster: int = MAX_CLUSTER_SINKS,
) -> List[ClockTree]:
    """Build trees for every declared clock domain."""
    return [
        synthesize_clock_tree(
            circuit, library, dom.net, sink_positions, max_cluster
        )
        for dom in circuit.clocks
    ]
