"""Simulated-annealing detailed placement (the ``"sa"`` engine).

The engine keeps the quadratic analytic solve for global placement —
annealing from a random start would be both slow and worse — and
replaces the greedy adjacent-swap cleanup with a Metropolis search
over two legality-preserving move classes:

* **adjacent swap** — two neighbouring cells in a row exchange their
  site span (the same move the greedy refiner uses, but accepted
  probabilistically so the search can climb out of local minima);
* **global swap** — two cells of *equal site width* anywhere in the
  core exchange positions and rows outright.  Equal widths make the
  exchange exactly legal: every other cell keeps its sites, so no
  re-packing (and no position drift) is ever needed.

The cost is half-perimeter wirelength over the nets incident to the
swapped pair, evaluated in sorted-net order so float accumulation is
identical in every process.  The temperature starts at a fixed
fraction of the mean incident-net HPWL and cools geometrically to
1e-3 of that over the move budget; the budget scales linearly with
the cell count and the caller's ``passes``.

Determinism: the *only* source of randomness is the ``seed`` handed to
:meth:`SimulatedAnnealingPlacer.refine` (the flow derives it from the
netlist's structural content via ``placement_seed``), consumed through
a private ``random.Random`` — never the process-global RNG.  The same
(circuit, placement, passes, seed) inputs therefore replay the exact
accept/reject sequence on any machine and under any ``--jobs`` count.

A final greedy pass (the quadratic engine's refiner) polishes what the
annealer leaves, so ``"sa"`` results are never worse than untouched
global placement by more than the annealer's own uphill moves allow.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from repro import obs
from repro.layout.placement import Placement, QuadraticPlacer
from repro.netlist.circuit import Circuit

#: Move budget per cell per ``passes`` unit.
_MOVES_PER_CELL = 6

#: Starting temperature as a fraction of the mean incident-net HPWL.
_T0_FRACTION = 0.2

#: Final temperature as a fraction of the starting one.
_COOL_TO = 1e-3


class _SaCost:
    """Deterministic incremental HPWL bookkeeping for swap moves.

    Unlike the greedy refiner's cache this iterates nets in *sorted*
    order, so the float sums — and therefore every accept/reject
    decision — are bitwise identical across processes.
    """

    def __init__(self, circuit: Circuit, placement: Placement):
        self.circuit = circuit
        self.placement = placement
        self.nets_of: Dict[str, List[str]] = {}
        for name, inst in circuit.instances.items():
            if inst.cell.is_filler:
                continue
            self.nets_of[name] = sorted(set(inst.conns.values()))

    def pair_cost(self, a: str, b: str) -> float:
        nets = self.nets_of.get(a, [])
        nets_b = self.nets_of.get(b, [])
        seen = sorted(set(nets) | set(nets_b))
        placement = self.placement
        circuit = self.circuit
        total = 0.0
        for net in seen:
            points = placement.net_pins(circuit, net)
            if not points:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


class SimulatedAnnealingPlacer(QuadraticPlacer):
    """Quadratic global placement + annealed detailed placement."""

    name = "sa"

    def refine(self, circuit: Circuit, placement: Placement, *,
               passes: int = 2, seed: int = 0) -> float:
        """Anneal, then greedy-polish; returns total HPWL gain in um."""
        start_hpwl = placement.total_hpwl_um(circuit)
        with obs.span("sa_anneal") as sp:
            moves, accepted = _anneal(circuit, placement,
                                      passes=passes, seed=seed)
            sp.counter("sa_moves", moves)
            sp.counter("sa_accepted", accepted)
        gain = start_hpwl - placement.total_hpwl_um(circuit)
        gain += super().refine(circuit, placement,
                               passes=passes, seed=seed)
        return gain


def _anneal(circuit: Circuit, placement: Placement, *,
            passes: int, seed: int) -> tuple:
    """Run the Metropolis search in place; returns (moves, accepted)."""
    rng = random.Random(seed)
    cost = _SaCost(circuit, placement)

    # Deterministic move pools, in row-major placement order.
    movable: List[str] = [
        name
        for cells in placement.rows_cells
        for name in cells
        if not circuit.instances[name].cell.is_filler
    ]
    if len(movable) < 2:
        return 0, 0
    width_class: Dict[int, List[str]] = {}
    for name in movable:
        w = circuit.instances[name].cell.width_sites
        width_class.setdefault(w, []).append(name)
    swap_rows = [
        i for i, cells in enumerate(placement.rows_cells)
        if len(cells) >= 2
    ]
    pos_in_row = {
        name: i
        for cells in placement.rows_cells
        for i, name in enumerate(cells)
    }

    # Temperature from the mean incident-net span: scale-free across
    # circuit sizes, deterministic because total_hpwl_um iterates the
    # net dict in insertion order.
    n_nets = max(1, len(circuit.nets))
    mean_hpwl = placement.total_hpwl_um(circuit) / n_nets
    t0 = max(1e-9, _T0_FRACTION * mean_hpwl)
    budget = max(0, passes) * _MOVES_PER_CELL * len(movable)
    if budget == 0:
        return 0, 0
    alpha = _COOL_TO ** (1.0 / budget)

    temperature = t0
    accepted = 0
    for _ in range(budget):
        if rng.random() < 0.5 and swap_rows:
            accepted += _try_adjacent_swap(
                circuit, placement, cost, rng, swap_rows,
                pos_in_row, temperature)
        else:
            accepted += _try_global_swap(
                circuit, placement, cost, rng, movable, width_class,
                pos_in_row, temperature)
        temperature *= alpha
    return budget, accepted


def _metropolis(delta: float, temperature: float,
                rng: random.Random) -> bool:
    """Standard acceptance rule (downhill always, uphill by Boltzmann)."""
    if delta < 0.0:
        return True
    scaled = delta / temperature
    if scaled > 700.0:  # exp underflow guard
        return False
    return rng.random() < math.exp(-scaled)


def _try_adjacent_swap(circuit, placement, cost, rng, swap_rows,
                       pos_in_row, temperature) -> int:
    cells = placement.rows_cells[rng.choice(swap_rows)]
    i = rng.randrange(len(cells) - 1)
    a, b = cells[i], cells[i + 1]
    if (circuit.instances[a].cell.is_filler
            or circuit.instances[b].cell.is_filler):
        return 0
    before = cost.pair_cost(a, b)
    pos_a = placement.positions[a]
    pos_b = placement.positions[b]
    wa = circuit.instances[a].cell.width_um
    wb = circuit.instances[b].cell.width_um
    left = min(pos_a[0] - wa / 2, pos_b[0] - wb / 2)
    placement.positions[b] = (left + wb / 2, pos_b[1])
    placement.positions[a] = (left + wb + wa / 2, pos_a[1])
    after = cost.pair_cost(a, b)
    if _metropolis(after - before, temperature, rng):
        cells[i], cells[i + 1] = b, a
        pos_in_row[a], pos_in_row[b] = i + 1, i
        return 1
    placement.positions[a] = pos_a
    placement.positions[b] = pos_b
    return 0


def _try_global_swap(circuit, placement, cost, rng, movable,
                     width_class, pos_in_row, temperature) -> int:
    a = rng.choice(movable)
    peers = width_class[circuit.instances[a].cell.width_sites]
    if len(peers) < 2:
        return 0
    b = rng.choice(peers)
    if a == b:
        return 0
    before = cost.pair_cost(a, b)
    placement.positions[a], placement.positions[b] = (
        placement.positions[b], placement.positions[a])
    after = cost.pair_cost(a, b)
    if _metropolis(after - before, temperature, rng):
        row_a, row_b = placement.row_of[a], placement.row_of[b]
        ia, ib = pos_in_row[a], pos_in_row[b]
        placement.rows_cells[row_a][ia] = b
        placement.rows_cells[row_b][ib] = a
        placement.row_of[a], placement.row_of[b] = row_b, row_a
        pos_in_row[a], pos_in_row[b] = ib, ia
        return 1
    placement.positions[a], placement.positions[b] = (
        placement.positions[b], placement.positions[a])
    return 0
