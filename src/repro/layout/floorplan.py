"""Floorplanning: square core, cell rows, power/ground/IO rings.

Reproduces the floorplan style of the paper (Section 3.2 and Fig. 3):

* a square core area sized from total cell area and a target row
  utilisation;
* standard cells placed on horizontal rows, each cell carrying a power
  strip at its top and a ground strip at its bottom; rows are *abutted*
  so that the power/ground strips of consecutive rows are adjacent
  (rows alternate orientation);
* an IO ring, a power ring and a ground ring around the core;
* the chip outline forced square even when the core drifts slightly
  rectangular (paper Section 4.3 exploits exactly this: the leftover
  space is unusable for placement but helps routing).

Port (pad) locations are assigned evenly around the IO ring so that
placement and routing see realistic boundary anchors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.library.cell import ROW_HEIGHT_UM, SITE_WIDTH_UM
from repro.layout.geometry import Point, Rect
from repro.netlist.circuit import Circuit

#: Width of the power ring, in um.
POWER_RING_UM = 12.0

#: Width of the ground ring, in um.
GROUND_RING_UM = 12.0

#: Width of the IO ring (pad frame), in um.
IO_RING_UM = 55.0

#: Spacing between core and the innermost ring, in um.
CORE_MARGIN_UM = 8.0


@dataclass
class Row:
    """One placement row.

    Attributes:
        index: Row number, bottom row is 0.
        y: Bottom edge of the row (um).
        x0: Left edge (um).
        n_sites: Number of placement sites.
        flipped: Alternating row orientation (power strip down) so that
            abutted rows share power/ground strips.
    """

    index: int
    y: float
    x0: float
    n_sites: int
    flipped: bool

    @property
    def length_um(self) -> float:
        """Row length in um."""
        return self.n_sites * SITE_WIDTH_UM

    @property
    def x1(self) -> float:
        """Right edge (um)."""
        return self.x0 + self.length_um

    def site_x(self, site: int) -> float:
        """X coordinate of a site's left edge."""
        return self.x0 + site * SITE_WIDTH_UM


@dataclass
class Floorplan:
    """The physical frame of one layout.

    Attributes:
        core: Core placement area.
        chip: Full die outline (always square).
        rows: Placement rows, bottom-up.
        target_utilization: Requested row utilisation.
        pad_positions: Port name -> pad location on the IO ring.
    """

    core: Rect
    chip: Rect
    rows: List[Row]
    target_utilization: float
    pad_positions: Dict[str, Point] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        """Number of placement rows."""
        return len(self.rows)

    @property
    def total_row_length_um(self) -> float:
        """Summed row length (paper Table 2, column L_rows)."""
        return sum(row.length_um for row in self.rows)

    @property
    def core_area_um2(self) -> float:
        """Area of the rows (paper's core area)."""
        return self.total_row_length_um * ROW_HEIGHT_UM

    @property
    def chip_area_um2(self) -> float:
        """Chip area including rings (paper Table 2)."""
        return self.chip.area

    @property
    def aspect_ratio(self) -> float:
        """Core height / width (paper keeps it within 0.9 .. 1.1)."""
        return self.core.height / self.core.width


def build_floorplan(circuit: Circuit, target_utilization: float,
                    aspect_ratio: float = 1.0,
                    reserve_area_um2: float = 0.0) -> Floorplan:
    """Create the floorplan for ``circuit``.

    Args:
        circuit: Netlist to floorplan (cell areas are read from it).
        target_utilization: Fraction of row area to fill with cells
            (0.97 for the paper's s38417/circuit 1; 0.50 for p26909).
        aspect_ratio: Requested core height/width.
        reserve_area_um2: Extra cell area budgeted for later ECO
            insertions (clock-tree buffers, scan-enable buffers, hold
            fixes) so high-utilisation floorplans keep room for them.

    Returns:
        A floorplan with rows sized for the requested utilisation and a
        square chip outline.
    """
    if not 0.05 <= target_utilization <= 1.0:
        raise ValueError("target utilisation out of range")
    cell_area = sum(
        inst.cell.area_um2
        for inst in circuit.instances.values()
        if not inst.cell.is_filler
    ) + max(0.0, reserve_area_um2)
    core_area = cell_area / target_utilization
    width = math.sqrt(core_area / aspect_ratio)
    n_rows = max(1, math.ceil(width * aspect_ratio / ROW_HEIGHT_UM))
    # Row length chosen so n_rows * length ~= required core area; this
    # is where the core drifts slightly rectangular (paper 4.3).
    row_sites = max(1, math.ceil(core_area / n_rows / ROW_HEIGHT_UM
                                 / SITE_WIDTH_UM))
    row_length = row_sites * SITE_WIDTH_UM

    ring = CORE_MARGIN_UM + GROUND_RING_UM + POWER_RING_UM + IO_RING_UM
    core_x0 = ring
    core_y0 = ring
    core = Rect(core_x0, core_y0,
                core_x0 + row_length,
                core_y0 + n_rows * ROW_HEIGHT_UM)
    # The chip is forced square around the larger core dimension.
    side = max(core.width, core.height) + 2 * ring
    chip = Rect(0.0, 0.0, side, side)

    rows = [
        Row(index=i,
            y=core_y0 + i * ROW_HEIGHT_UM,
            x0=core_x0,
            n_sites=row_sites,
            flipped=bool(i % 2))
        for i in range(n_rows)
    ]
    plan = Floorplan(
        core=core,
        chip=chip,
        rows=rows,
        target_utilization=target_utilization,
    )
    _assign_pads(plan, circuit)
    return plan


def _assign_pads(plan: Floorplan, circuit: Circuit) -> None:
    """Distribute port pads evenly around the IO ring."""
    ports = list(circuit.inputs) + list(circuit.outputs)
    if not ports:
        return
    side = plan.chip.width
    inner = IO_RING_UM / 2.0  # pads sit mid IO ring
    perimeter = 4 * (side - 2 * inner)
    step = perimeter / len(ports)
    for i, port in enumerate(ports):
        d = i * step
        edge_len = side - 2 * inner
        if d < edge_len:                      # bottom, left to right
            pos = (inner + d, inner)
        elif d < 2 * edge_len:                # right, bottom to top
            pos = (side - inner, inner + (d - edge_len))
        elif d < 3 * edge_len:                # top, right to left
            pos = (side - inner - (d - 2 * edge_len), side - inner)
        else:                                 # left, top to bottom
            pos = (inner, side - inner - (d - 3 * edge_len))
        plan.pad_positions[port] = pos
