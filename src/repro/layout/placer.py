"""Pluggable global-placement engines: the ``Placer`` strategy API.

The paper's area/timing claims (Tables 2/3) are measured *through* one
layout engine.  To test whether those conclusions survive a change of
placer, global placement is a strategy: every engine implements the
:class:`Placer` protocol and registers itself in :data:`PLACERS` (the
same registry idiom as ``repro.api.CIRCUITS``), and the flow selects
one by name via ``FlowConfig.placer``.

Two engines ship:

* ``"quadratic"`` — the default Gordian-style analytic placer
  (:class:`repro.layout.placement.QuadraticPlacer`); its results are
  bit-identical to the historical ``global_place`` path.
* ``"sa"`` — quadratic global placement followed by HPWL-driven
  simulated-annealing detailed placement
  (:class:`repro.layout.sa.SimulatedAnnealingPlacer`), deterministic
  under a content-derived seed.

Seeds are threaded deterministically: :func:`placement_seed` derives a
63-bit seed from the netlist's structural content plus the engine
name, so the same (circuit, config) pair always places identically —
in-process, across worker processes, and across machines.  No engine
may touch process-global randomness or the wall clock (the
determinism self-lint enforces this).

Back-compat: ``global_place(circuit, plan)`` keeps working and now
routes through the registered ``"quadratic"`` engine.
"""

from __future__ import annotations

import difflib
import hashlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.layout.floorplan import Floorplan
from repro.layout.geometry import Point
from repro.layout.placement import Placement
from repro.netlist.circuit import Circuit


@runtime_checkable
class Placer(Protocol):
    """The strategy interface every placement engine implements.

    The method signatures below are a frozen API contract — they are
    snapshotted in ``tests/golden/api_surface.json`` and CI fails any
    change that does not deliberately refresh the snapshot.

    Engines must be deterministic functions of their arguments: the
    ``seed`` (derived from the flow's content hash, see
    :func:`placement_seed`) is the *only* admissible source of
    randomness, so a given (circuit, plan, seed) triple always yields
    the same placement regardless of process, job count or machine.
    """

    #: Registry name of the engine (``"quadratic"``, ``"sa"``, ...).
    name: str

    def place(self, circuit: Circuit, plan: Floorplan, *,
              seed: int = 0) -> Placement:
        """Globally place and legalise ``circuit`` into ``plan``."""
        ...

    def refine(self, circuit: Circuit, placement: Placement, *,
               passes: int = 2, seed: int = 0) -> float:
        """Detailed-placement cleanup in place; returns HPWL gain."""
        ...

    def eco_place(self, circuit: Circuit, placement: Placement,
                  new_cells: Iterable[str],
                  hints: Optional[Dict[str, Point]] = None) -> List[str]:
        """Insert post-placement ECO cells into the existing layout."""
        ...


@dataclass(frozen=True)
class PlacerSpec:
    """One registered placement engine.

    Attributes:
        factory: Builds a fresh engine instance (engines may carry
            tuning state, so the registry stores factories, not
            instances — mirroring ``CircuitSpec.factory``).
        description: One-line summary shown by ``--placer`` helpers.
    """

    factory: Callable[[], Placer]
    description: str


#: Registered placement engines, keyed by ``FlowConfig.placer`` name.
PLACERS: Dict[str, PlacerSpec] = {}


def register_placer(name: str, factory: Callable[[], Placer],
                    description: str) -> None:
    """Register (or replace) an engine under ``name``."""
    PLACERS[name] = PlacerSpec(factory=factory, description=description)


def _unknown_placer_message(name: str) -> str:
    choices = sorted(PLACERS)
    close = difflib.get_close_matches(str(name), choices, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return (f"unknown placer {name!r}{hint}; choose from "
            + ", ".join(choices))


def get_placer(name: str) -> Placer:
    """A fresh instance of the engine registered under ``name``.

    Raises:
        KeyError: Unknown engine name (message lists the choices and
            suggests the closest registered name).
    """
    spec = PLACERS.get(name)
    if spec is None:
        raise KeyError(_unknown_placer_message(name))
    return spec.factory()


def require_placer(name: str) -> None:
    """Validate an engine name for config machinery.

    Same did-you-mean message as :func:`get_placer`, raised as
    ``ValueError`` so ``FlowConfig`` rejection reads like its other
    unknown-key errors.
    """
    if name not in PLACERS:
        raise ValueError(_unknown_placer_message(name))


def placement_seed(circuit: Circuit, engine: str = "") -> int:
    """Deterministic 63-bit seed from the netlist's structural content.

    The digest covers the circuit name and the sorted instance/net
    name-and-cell structure — exactly the inputs that shape a
    placement — plus the engine name, so two engines never share a
    random stream.  Positions and other derived state never enter the
    hash.  Equal (circuit, engine) pairs seed equally in every
    process, which is what makes the SA backend bit-identical across
    ``--jobs 1`` and ``--jobs N``.
    """
    h = hashlib.sha256()
    h.update(engine.encode("utf-8"))
    h.update(b"\x00")
    h.update(circuit.name.encode("utf-8"))
    for name in sorted(circuit.instances):
        inst = circuit.instances[name]
        h.update(b"\x00i")
        h.update(name.encode("utf-8"))
        h.update(inst.cell.name.encode("utf-8"))
    for name in sorted(circuit.nets):
        net = circuit.nets[name]
        h.update(b"\x00n")
        h.update(name.encode("utf-8"))
        h.update(repr(net.driver).encode("utf-8"))
    return int(h.hexdigest()[:16], 16) & 0x7FFFFFFFFFFFFFFF


def global_place(circuit: Circuit, plan: Floorplan,
                 seed: int = 0) -> Placement:
    """Back-compat shim: the historical one-call entry point.

    Routes through the registered ``"quadratic"`` engine, so code that
    imported ``global_place`` directly keeps the exact pre-strategy
    behaviour.
    """
    return get_placer("quadratic").place(circuit, plan, seed=seed)


def _register_builtin_engines() -> None:
    """Populate :data:`PLACERS` with the shipped engines."""
    from repro.layout.placement import QuadraticPlacer
    from repro.layout.sa import SimulatedAnnealingPlacer

    register_placer(
        "quadratic", QuadraticPlacer,
        "Gordian-style analytic placement (clique/star springs, "
        "numpy-accelerated linear solve, row legalisation)",
    )
    register_placer(
        "sa", SimulatedAnnealingPlacer,
        "quadratic global placement + HPWL-driven simulated-annealing "
        "detailed placement (deterministic content-derived seed)",
    )


_register_builtin_engines()
