"""Global placement and row legalisation.

Placement runs in two stages, the classic analytic recipe:

1. **Quadratic global placement** — every net becomes a clique of
   springs (weight 1/(pins-1)); pad positions are fixed anchors.  The
   resulting sparse Laplacian systems (one for x, one for y) are solved
   with conjugate gradients, giving a wirelength-driven but overlapping
   spread of cells over the core.
2. **Capacity-driven legalisation** — cells are distributed to rows in
   y-order against per-row site quotas, then packed in x-order with the
   remaining whitespace spread uniformly.  This fills every row to the
   floorplan's target utilisation, which is exactly the quantity the
   paper tracks (97% for s38417/circuit 1, 50% for p26909).

The paper optimises for area only (no timing-driven placement), and so
does this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import cg

from repro.library.cell import SITE_WIDTH_UM
from repro.layout.floorplan import Floorplan
from repro.layout.geometry import Point, hpwl
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT

#: Nets larger than this are connected via a star to reduce fill-in.
_CLIQUE_LIMIT = 8


@dataclass
class Placement:
    """Cell locations of one layout.

    Attributes:
        plan: The floorplan the placement lives in.
        positions: Cell-centre location per instance (um).
        row_of: Row index per instance.
        rows_cells: Instance names per row, left to right.
    """

    plan: Floorplan
    positions: Dict[str, Point] = field(default_factory=dict)
    row_of: Dict[str, int] = field(default_factory=dict)
    rows_cells: List[List[str]] = field(default_factory=list)

    def pin_position(self, circuit: Circuit, inst: str) -> Point:
        """Location used for a pin of ``inst`` (cell centre)."""
        if inst == PORT:
            raise ValueError("ports are located via the floorplan pads")
        return self.positions[inst]

    def net_pins(self, circuit: Circuit, net_name: str) -> List[Point]:
        """Locations of every pin on a net (pads included)."""
        net = circuit.nets[net_name]
        points: List[Point] = []
        refs = list(net.sinks)
        if net.driver is not None:
            refs.append(net.driver)
        for inst, pin in refs:
            if inst == PORT:
                pos = self.plan.pad_positions.get(pin)
                if pos is not None:
                    points.append(pos)
            elif inst in self.positions:
                points.append(self.positions[inst])
        return points

    def total_hpwl_um(self, circuit: Circuit) -> float:
        """Half-perimeter wirelength over all nets (pre-route metric)."""
        return sum(
            hpwl(self.net_pins(circuit, net)) for net in circuit.nets
        )

    def row_occupancy_sites(self, circuit: Circuit) -> List[int]:
        """Occupied sites per row."""
        used = [0] * self.plan.n_rows
        for row_index, cells in enumerate(self.rows_cells):
            used[row_index] = sum(
                circuit.instances[name].cell.width_sites for name in cells
            )
        return used

    def utilization(self, circuit: Circuit) -> float:
        """Achieved row utilisation (occupied / available sites)."""
        total = sum(row.n_sites for row in self.plan.rows)
        used = sum(self.row_occupancy_sites(circuit))
        return used / total if total else 0.0


def global_place(circuit: Circuit, plan: Floorplan,
                 seed: int = 0) -> Placement:
    """Place every non-filler cell of ``circuit`` into ``plan``.

    Args:
        circuit: Netlist to place.
        plan: Floorplan with rows and pad positions.
        seed: Tie-break randomisation seed (kept for reproducibility;
            the analytic solve itself is deterministic).

    Returns:
        A legalised placement at the floorplan's utilisation.
    """
    movable = [
        inst.name
        for inst in circuit.instances.values()
        if not inst.cell.is_filler
    ]
    index = {name: i for i, name in enumerate(movable)}
    n = len(movable)
    if n == 0:
        return Placement(plan=plan)

    # Gordian-style iteration: the unconstrained quadratic solution
    # collapses towards the pad centroid, so alternate solving with
    # legalisation, anchoring each re-solve to the previous legalised
    # slots with growing weight.  Three rounds recover most of the
    # spread while keeping connected cells together.
    #
    # The spring system itself is anchor-independent, so it is
    # assembled once (the Python clique/star expansion dominates the
    # stage's runtime) and each round only applies its eps/anchor
    # terms as vectorised numpy adds on copies of the base arrays —
    # byte-identical to re-assembling from scratch every round.
    system = _assemble_springs(circuit, plan, movable, index)
    xs, ys = _solve_quadratic(system, plan)
    placement = _legalize(circuit, plan, movable, xs, ys)
    for anchor_weight in (0.06, 0.25, 0.9):
        ax = np.array([placement.positions[m][0] for m in movable])
        ay = np.array([placement.positions[m][1] for m in movable])
        xs, ys = _solve_quadratic(
            system, plan,
            anchors=(ax, ay), anchor_weight=anchor_weight,
        )
        placement = _legalize(circuit, plan, movable, xs, ys)
    return placement


@dataclass
class _SpringSystem:
    """One assembly of the placement spring system, anchor-free.

    ``rows_i``/``rows_j``/``vals`` hold the off-diagonal COO triplets;
    ``diag``/``bx``/``by`` carry the net-derived diagonal and
    right-hand sides *before* the centre pull and anchor springs,
    which change per Gordian round and are applied on copies.
    """

    n: int
    rows_i: np.ndarray
    rows_j: np.ndarray
    vals: np.ndarray
    diag: np.ndarray
    bx: np.ndarray
    by: np.ndarray


def _assemble_springs(
    circuit: Circuit,
    plan: Floorplan,
    movable: List[str],
    index: Dict[str, int],
) -> _SpringSystem:
    """Expand every net into clique/star springs (the Python-heavy
    part of the quadratic solve, done once per placement)."""
    n = len(movable)
    rows_i: List[int] = []
    rows_j: List[int] = []
    vals: List[float] = []
    diag = np.zeros(n)
    bx = np.zeros(n)
    by = np.zeros(n)

    def add_pair(i: int, j: int, w: float) -> None:
        rows_i.append(i)
        rows_j.append(j)
        vals.append(-w)
        rows_i.append(j)
        rows_j.append(i)
        vals.append(-w)
        diag[i] += w
        diag[j] += w

    def add_fixed(i: int, pos: Point, w: float) -> None:
        diag[i] += w
        bx[i] += w * pos[0]
        by[i] += w * pos[1]

    for net in circuit.nets.values():
        refs = list(net.sinks)
        if net.driver is not None:
            refs.append(net.driver)
        cells = [index[i] for i, _ in refs if i != PORT and i in index]
        pads = [
            plan.pad_positions[p]
            for i, p in refs
            if i == PORT and p in plan.pad_positions
        ]
        p = len(cells) + len(pads)
        if p < 2:
            continue
        if p <= _CLIQUE_LIMIT:
            w = 1.0 / (p - 1)
            for a in range(len(cells)):
                for b in range(a + 1, len(cells)):
                    add_pair(cells[a], cells[b], w)
                for pad in pads:
                    add_fixed(cells[a], pad, w)
        else:
            # Star model: connect pins to the net's virtual centre,
            # approximated by anchoring everything pairwise to the
            # first pin (cheap, adequate for huge clock/scan nets).
            w = 2.0 / p
            hub = cells[0] if cells else None
            if hub is None:
                continue
            for other in cells[1:]:
                add_pair(hub, other, w)
            for pad in pads:
                add_fixed(hub, pad, w)

    return _SpringSystem(
        n=n,
        rows_i=np.asarray(rows_i, dtype=np.int64),
        rows_j=np.asarray(rows_j, dtype=np.int64),
        vals=np.asarray(vals, dtype=np.float64),
        diag=diag,
        bx=bx,
        by=by,
    )


def _solve_quadratic(
    system: _SpringSystem,
    plan: Floorplan,
    anchors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    anchor_weight: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the two spring systems; returns raw (x, y) coordinates.

    Args:
        system: Pre-assembled springs (:func:`_assemble_springs`).
        anchors: Per-cell anchor positions (previous legalised slots).
        anchor_weight: Spring weight to the anchors, relative to an
            average net weight of ~1.

    The eps/anchor terms are added to *copies* of the base arrays in
    the same order the historical single-pass assembly used, so the CG
    inputs — and therefore its iterates — are bitwise identical to a
    from-scratch rebuild.
    """
    diag = system.diag.copy()
    bx = system.bx.copy()
    by = system.by.copy()

    # Weak pull to the core centre keeps disconnected cells bounded.
    cx, cy = plan.core.center
    eps = 1e-4
    diag += eps
    bx += eps * cx
    by += eps * cy
    if anchors is not None and anchor_weight > 0.0:
        ax, ay = anchors
        diag += anchor_weight
        bx += anchor_weight * ax
        by += anchor_weight * ay

    return _solve_cg(system.n, system.rows_i, system.rows_j,
                     system.vals, diag, bx, by, cx, cy)


def _solve_cg(n, rows_i, rows_j, vals, diag, bx, by, cx, cy):
    """Sparse conjugate-gradient solve for large systems."""
    a = coo_matrix(
        (
            np.concatenate([np.asarray(vals), diag]),
            (
                np.concatenate([np.asarray(rows_i), np.arange(n)]),
                np.concatenate([np.asarray(rows_j), np.arange(n)]),
            ),
        ),
        shape=(n, n),
    ).tocsr()

    x0 = np.full(n, cx)
    y0 = np.full(n, cy)
    xs, _ = cg(a, bx, x0=x0, rtol=1e-6, maxiter=600)
    ys, _ = cg(a, by, x0=y0, rtol=1e-6, maxiter=600)
    return xs, ys


def _legalize(
    circuit: Circuit,
    plan: Floorplan,
    movable: List[str],
    xs: np.ndarray,
    ys: np.ndarray,
) -> Placement:
    """Distribute cells to rows by quota and pack them on sites."""
    placement = Placement(plan=plan)
    n_rows = plan.n_rows
    widths = {
        name: circuit.instances[name].cell.width_sites for name in movable
    }
    total_cell_sites = sum(widths.values())
    total_sites = sum(row.n_sites for row in plan.rows)
    if total_cell_sites > total_sites:
        raise ValueError(
            f"core overflow: {total_cell_sites} cell sites > "
            f"{total_sites} available"
        )

    order = sorted(range(len(movable)), key=lambda i: (ys[i], xs[i]))
    placement.rows_cells = [[] for _ in range(n_rows)]
    # Cumulative targeting: cell k's row follows the running share of
    # placed sites, so rounding shortfalls never accumulate into the
    # last row.  Capacity is still enforced with forward spill.
    fill_per_row = total_cell_sites / n_rows
    occupancy = [0] * n_rows
    row_index = 0
    cum = 0
    for i in order:
        name = movable[i]
        w = widths[name]
        target = min(n_rows - 1, int(cum / fill_per_row))
        row_index = max(row_index, target)
        while (
            row_index < n_rows - 1
            and occupancy[row_index] + w > plan.rows[row_index].n_sites
        ):
            row_index += 1
        placement.rows_cells[row_index].append(name)
        placement.row_of[name] = row_index
        occupancy[row_index] += w
        cum += w

    for row_index, cells in enumerate(placement.rows_cells):
        cells.sort(key=lambda name: xs[index_of(movable, name)])
        _pack_row(circuit, plan, placement, row_index)
    return placement


def index_of(movable: List[str], name: str) -> int:
    """Index helper kept separate for reuse in tests."""
    # movable lists are in insertion order; build a cache lazily.
    cache = getattr(index_of, "_cache", None)
    if cache is None or cache[0] is not movable:
        cache = (movable, {n: i for i, n in enumerate(movable)})
        index_of._cache = cache  # type: ignore[attr-defined]
    return cache[1][name]


def _pack_row(circuit: Circuit, plan: Floorplan,
              placement: Placement, row_index: int) -> None:
    """Pack one row's cells onto sites, spreading whitespace evenly."""
    from repro.library.cell import ROW_HEIGHT_UM

    row = plan.rows[row_index]
    cells = placement.rows_cells[row_index]
    if not cells:
        return
    used = sum(circuit.instances[c].cell.width_sites for c in cells)
    free = max(0, row.n_sites - used)
    gap = free / (len(cells) + 1)
    y_center = row.y + 0.5 * ROW_HEIGHT_UM
    # Absolute ideal start per cell (cumulative widths plus its share
    # of the whitespace): rounding never drifts, so the last cell ends
    # inside the row by construction.
    next_free = 0  # first unoccupied site
    cum_width = 0
    for i, name in enumerate(cells):
        w = circuit.instances[name].cell.width_sites
        ideal = cum_width + gap * (i + 1)
        site = int(round(ideal))
        site = max(next_free, min(site, row.n_sites - w))
        site = max(0, site)
        x_center = row.site_x(site) + w * SITE_WIDTH_UM / 2.0
        placement.positions[name] = (x_center, y_center)
        next_free = site + w
        cum_width += w


def repack_row(circuit: Circuit, placement: Placement,
               row_index: int) -> None:
    """Re-pack one row after ECO insertions (order preserved)."""
    _pack_row(circuit, placement.plan, placement, row_index)


class QuadraticPlacer:
    """The default engine: analytic quadratic placement + greedy refine.

    This is the historical ``global_place`` / ``refine_placement``
    pipeline ported onto the :class:`repro.layout.placer.Placer`
    strategy protocol — results are bit-identical to the pre-strategy
    flow.  The analytic solve is deterministic, so the threaded
    ``seed`` is accepted (protocol contract) but never consumed.
    """

    name = "quadratic"

    def place(self, circuit: Circuit, plan: Floorplan, *,
              seed: int = 0) -> Placement:
        """Quadratic global placement with capacity legalisation."""
        return global_place(circuit, plan, seed=seed)

    def refine(self, circuit: Circuit, placement: Placement, *,
               passes: int = 2, seed: int = 0) -> float:
        """Greedy adjacent-swap detailed placement (in place)."""
        from repro.layout.detailed import refine_placement

        return refine_placement(circuit, placement, passes=passes)

    def eco_place(self, circuit: Circuit, placement: Placement,
                  new_cells: Iterable[str],
                  hints: Optional[Dict[str, Point]] = None) -> List[str]:
        """Capacity-aware row insertion of post-placement ECO cells."""
        from repro.layout.eco import eco_place as _eco_place

        return _eco_place(circuit, placement, new_cells, hints=hints)
